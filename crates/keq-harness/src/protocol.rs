//! The `keq-server` wire protocol: length-framed JSON over a byte stream.
//!
//! Framing is four bytes of little-endian payload length followed by that
//! many bytes of UTF-8 JSON (one request or response per frame). JSON is
//! produced and parsed with [`keq_trace::Json`] — the same hermetic,
//! hand-rolled writer/parser the run reports use, so the daemon adds no
//! dependency and speaks the repo's one JSON idiom.
//!
//! Requests (client → server):
//!
//! ```json
//! {"op":"validate","tag":7,"unit":3,"deadline_ms":2000,"max_attempts":2,"ir":"define ..."}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! `ir` is the textual LLVM fragment ([`keq_llvm::parser::parse_module`]
//! round-trips with the printer). `unit` keys the server's deterministic
//! fault plan exactly like a batch corpus index does, so a fault campaign
//! lands on the same units regardless of front end; function `i` of the
//! module gets `unit + i`. `deadline_ms`/`max_attempts` are optional
//! per-request overrides (quota-clamped by the server).
//!
//! Responses (server → client):
//!
//! ```json
//! {"ok":true,"tag":7,"results":[{"name":"f0","index":0,"result":"succeeded",
//!   "attempts":1,"queue_us":120,"wall_us":5150}]}
//! {"ok":false,"tag":7,"rejected":"queue_full"}
//! {"ok":false,"error":"parse: ..."}
//! {"ok":true,"stats":{...}}
//! {"ok":true,"metrics":{...}}
//! {"ok":true,"draining":true}
//! ```
//!
//! The `metrics` response carries the full telemetry snapshot: live
//! gauges and counters, the sampled time series (the `keq_top` dashboard
//! plots these), the slow-obligation table, and the same registry rendered
//! as Prometheus text exposition (`prometheus` field) so a scrape bridge
//! is one field access away.

use std::io::{self, Read, Write};

use keq_trace::json::{self, Json};

/// Upper bound on one frame's payload (anything larger is treated as a
/// corrupt or hostile stream, not buffered).
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Writes one frame: `u32` little-endian length, then the payload.
///
/// # Errors
///
/// Propagates stream errors; rejects payloads over [`MAX_FRAME_LEN`] with
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// Propagates stream errors; an EOF mid-frame, an oversized length, or
/// non-UTF-8 payload is [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    let mut at = 0;
    while at < len_buf.len() {
        match r.read(&mut len_buf[at..]) {
            Ok(0) if at == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "EOF mid frame header"))
            }
            Ok(k) => at += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length over bound"));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientRequest {
    /// Validate every function of a textual IR module.
    Validate {
        /// Opaque tag echoed in the response.
        tag: u64,
        /// Fault/backoff unit of the module's first function (function `i`
        /// gets `unit + i`).
        unit: u64,
        /// Which validated pass to run (wire field `pass`, optional — a
        /// request without one gets the classic ISel validation, so v6
        /// clients keep working unchanged).
        pass: keq_isel::PassId,
        /// Textual IR module.
        ir: String,
        /// Optional per-request deadline override, milliseconds.
        deadline_ms: Option<u64>,
        /// Optional per-request retry-ladder cap.
        max_attempts: Option<u32>,
    },
    /// Fetch live server counters.
    Stats,
    /// Fetch the full telemetry snapshot: registry values, sampled time
    /// series, the slow-obligation table, and a Prometheus rendering.
    Metrics,
    /// Drain and exit.
    Shutdown,
}

impl ClientRequest {
    /// Serializes the request as one compact JSON payload.
    pub fn to_json_string(&self) -> String {
        let doc = match self {
            ClientRequest::Validate { tag, unit, pass, ir, deadline_ms, max_attempts } => {
                let mut fields = vec![
                    ("op", Json::Str("validate".into())),
                    ("tag", json::num(*tag)),
                    ("unit", json::num(*unit)),
                    ("pass", Json::Str(pass.name().into())),
                ];
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms", json::num(*ms)));
                }
                if let Some(n) = max_attempts {
                    fields.push(("max_attempts", json::num(u64::from(*n))));
                }
                fields.push(("ir", Json::Str(ir.clone())));
                json::obj(fields)
            }
            ClientRequest::Stats => json::obj(vec![("op", Json::Str("stats".into()))]),
            ClientRequest::Metrics => json::obj(vec![("op", Json::Str("metrics".into()))]),
            ClientRequest::Shutdown => json::obj(vec![("op", Json::Str("shutdown".into()))]),
        };
        let mut out = String::new();
        doc.write_compact(&mut out);
        out
    }

    /// Parses one request payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of what is malformed (sent back to the
    /// client as an error response).
    pub fn parse(text: &str) -> Result<ClientRequest, String> {
        let doc = Json::parse(text).map_err(|e| format!("json: {e:?}"))?;
        let op = doc.get("op").and_then(Json::as_str).ok_or("missing \"op\"")?;
        match op {
            "validate" => {
                let tag = doc.get("tag").and_then(Json::as_u64).ok_or("validate: missing tag")?;
                let unit = doc.get("unit").and_then(Json::as_u64).unwrap_or(0);
                let ir = doc
                    .get("ir")
                    .and_then(Json::as_str)
                    .ok_or("validate: missing ir")?
                    .to_string();
                let pass = match doc.get("pass").and_then(Json::as_str) {
                    None => keq_isel::PassId::Isel,
                    Some(name) => keq_isel::PassId::parse(name)
                        .ok_or_else(|| format!("validate: unknown pass \"{name}\""))?,
                };
                let deadline_ms = doc.get("deadline_ms").and_then(Json::as_u64);
                let max_attempts = doc
                    .get("max_attempts")
                    .and_then(Json::as_u64)
                    .map(|n| u32::try_from(n).unwrap_or(u32::MAX));
                Ok(ClientRequest::Validate { tag, unit, pass, ir, deadline_ms, max_attempts })
            }
            "stats" => Ok(ClientRequest::Stats),
            "metrics" => Ok(ClientRequest::Metrics),
            "shutdown" => Ok(ClientRequest::Shutdown),
            other => Err(format!("unknown op \"{other}\"")),
        }
    }
}

/// One per-function verdict inside a validate response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionVerdict {
    /// Function name.
    pub name: String,
    /// Index within the submitted module.
    pub index: u64,
    /// Validated pass (stable wire name, e.g. `"isel"`).
    pub pass: String,
    /// Final result category (stable wire name).
    pub result: String,
    /// Attempts consumed.
    pub attempts: u64,
    /// Submit → first worker pickup, µs.
    pub queue_us: u64,
    /// Submit → verdict, µs.
    pub wall_us: u64,
}

impl FunctionVerdict {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("index", json::num(self.index)),
            ("pass", Json::Str(self.pass.clone())),
            ("result", Json::Str(self.result.clone())),
            ("attempts", json::num(self.attempts)),
            ("queue_us", json::num(self.queue_us)),
            ("wall_us", json::num(self.wall_us)),
        ])
    }

    fn from_json(doc: &Json) -> Option<FunctionVerdict> {
        Some(FunctionVerdict {
            name: doc.get("name")?.as_str()?.to_string(),
            index: doc.get("index")?.as_u64()?,
            // Absent on v6 wires: those rows are ISel verdicts.
            pass: doc
                .get("pass")
                .and_then(Json::as_str)
                .unwrap_or(keq_isel::PassId::Isel.name())
                .to_string(),
            result: doc.get("result")?.as_str()?.to_string(),
            attempts: doc.get("attempts")?.as_u64()?,
            queue_us: doc.get("queue_us")?.as_u64()?,
            wall_us: doc.get("wall_us")?.as_u64()?,
        })
    }
}

/// Live counters returned by the `stats` op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Submissions accepted since boot.
    pub requests: u64,
    /// Submissions finalized since boot.
    pub completed: u64,
    /// Backpressure rejections.
    pub rejected_queue_full: u64,
    /// Quota rejections.
    pub rejected_quota: u64,
    /// Verdicts whose client was gone.
    pub disconnects: u64,
    /// Accepted-but-unfinalized submissions right now.
    pub depth: u64,
    /// Shared obligation-cache lookups answered.
    pub cache_hits: u64,
    /// Shared obligation-cache lookups missed.
    pub cache_misses: u64,
    /// Live cache entries.
    pub cache_entries: u64,
    /// Median request latency (submit → verdict), µs. Maintained live by
    /// the scheduler even with the metrics registry off.
    pub p50_us: u64,
    /// 90th-percentile request latency, µs.
    pub p90_us: u64,
    /// 99th-percentile request latency, µs.
    pub p99_us: u64,
}

impl StatsSnapshot {
    const FIELDS: [&'static str; 12] = [
        "requests",
        "completed",
        "rejected_queue_full",
        "rejected_quota",
        "disconnects",
        "depth",
        "cache_hits",
        "cache_misses",
        "cache_entries",
        "p50_us",
        "p90_us",
        "p99_us",
    ];

    fn values(&self) -> [u64; 12] {
        [
            self.requests,
            self.completed,
            self.rejected_queue_full,
            self.rejected_quota,
            self.disconnects,
            self.depth,
            self.cache_hits,
            self.cache_misses,
            self.cache_entries,
            self.p50_us,
            self.p90_us,
            self.p99_us,
        ]
    }

    fn to_json(self) -> Json {
        let values = self.values();
        json::obj(
            Self::FIELDS.iter().zip(values).map(|(&k, v)| (k, json::num(v))).collect(),
        )
    }

    fn from_json(doc: &Json) -> Option<StatsSnapshot> {
        let mut values = [0u64; 12];
        for (slot, key) in values.iter_mut().zip(Self::FIELDS) {
            *slot = doc.get(key)?.as_u64()?;
        }
        let [requests, completed, rejected_queue_full, rejected_quota, disconnects, depth, cache_hits, cache_misses, cache_entries, p50_us, p90_us, p99_us] =
            values;
        Some(StatsSnapshot {
            requests,
            completed,
            rejected_queue_full,
            rejected_quota,
            disconnects,
            depth,
            cache_hits,
            cache_misses,
            cache_entries,
            p50_us,
            p90_us,
            p99_us,
        })
    }
}

/// The full telemetry snapshot returned by the `metrics` op.
///
/// Everything the `keq_top` dashboard renders in one frame: headline
/// gauges, completion rate and latency quantiles, the sampled time series
/// (shape of [`keq_trace::metrics::Collector::to_json`]), obligation-cache
/// shard occupancy, the slow-obligation table, and the same registry
/// rendered as Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Whether the server's metrics registry is live (`--metrics`). The
    /// gauges and quantiles below are maintained either way; the series,
    /// registry counters, and Prometheus text are all-zero when off.
    pub enabled: bool,
    /// Milliseconds since the scheduler started.
    pub uptime_ms: u64,
    /// Accepted-but-unfinalized submissions right now.
    pub queue_depth: u64,
    /// Workers running an attempt right now.
    pub workers_busy: u64,
    /// Workers waiting for work right now.
    pub workers_idle: u64,
    /// Submissions accepted since boot.
    pub requests: u64,
    /// Submissions finalized since boot.
    pub completed: u64,
    /// Shared obligation-cache lookups answered.
    pub cache_hits: u64,
    /// Shared obligation-cache lookups missed.
    pub cache_misses: u64,
    /// Live cache entries.
    pub cache_entries: u64,
    /// Completions per second over the most recent sample window.
    pub rate_per_sec: f64,
    /// Median request latency (submit → verdict), µs.
    pub p50_us: u64,
    /// 90th-percentile request latency, µs.
    pub p90_us: u64,
    /// 99th-percentile request latency, µs.
    pub p99_us: u64,
    /// Collector samples taken so far.
    pub samples: u64,
    /// Live entry count of each obligation-cache shard, in shard order.
    pub shard_entries: Vec<u64>,
    /// The sampled time series:
    /// `[{"name":..., "points":[[t_ms, v], ...]}, ...]`.
    pub series: Json,
    /// Top-K slowest obligations, descending wall time.
    pub slow: Vec<keq_trace::SlowObligation>,
    /// The registry plus the slow table in Prometheus text exposition.
    pub prometheus: String,
}

impl Default for MetricsReport {
    fn default() -> Self {
        MetricsReport {
            enabled: false,
            uptime_ms: 0,
            queue_depth: 0,
            workers_busy: 0,
            workers_idle: 0,
            requests: 0,
            completed: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
            rate_per_sec: 0.0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            samples: 0,
            shard_entries: Vec::new(),
            series: Json::Arr(Vec::new()),
            slow: Vec::new(),
            prometheus: String::new(),
        }
    }
}

impl MetricsReport {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("enabled", Json::Bool(self.enabled)),
            ("uptime_ms", json::num(self.uptime_ms)),
            ("queue_depth", json::num(self.queue_depth)),
            ("workers_busy", json::num(self.workers_busy)),
            ("workers_idle", json::num(self.workers_idle)),
            ("requests", json::num(self.requests)),
            ("completed", json::num(self.completed)),
            ("cache_hits", json::num(self.cache_hits)),
            ("cache_misses", json::num(self.cache_misses)),
            ("cache_entries", json::num(self.cache_entries)),
            ("rate_per_sec", Json::Num(self.rate_per_sec)),
            ("p50_us", json::num(self.p50_us)),
            ("p90_us", json::num(self.p90_us)),
            ("p99_us", json::num(self.p99_us)),
            ("samples", json::num(self.samples)),
            (
                "shard_entries",
                Json::Arr(self.shard_entries.iter().map(|&v| json::num(v)).collect()),
            ),
            ("series", self.series.clone()),
            (
                "slow",
                Json::Arr(self.slow.iter().map(keq_trace::SlowObligation::to_json).collect()),
            ),
            ("prometheus", Json::Str(self.prometheus.clone())),
        ])
    }

    fn from_json(doc: &Json) -> Option<MetricsReport> {
        let num = |k: &str| doc.get(k).and_then(Json::as_u64);
        Some(MetricsReport {
            enabled: doc.get("enabled").and_then(Json::as_bool)?,
            uptime_ms: num("uptime_ms")?,
            queue_depth: num("queue_depth")?,
            workers_busy: num("workers_busy")?,
            workers_idle: num("workers_idle")?,
            requests: num("requests")?,
            completed: num("completed")?,
            cache_hits: num("cache_hits")?,
            cache_misses: num("cache_misses")?,
            cache_entries: num("cache_entries")?,
            rate_per_sec: doc.get("rate_per_sec").and_then(Json::as_f64)?,
            p50_us: num("p50_us")?,
            p90_us: num("p90_us")?,
            p99_us: num("p99_us")?,
            samples: num("samples")?,
            shard_entries: doc
                .get("shard_entries")?
                .as_arr()?
                .iter()
                .map(Json::as_u64)
                .collect::<Option<Vec<_>>>()?,
            series: doc.get("series")?.clone(),
            slow: doc
                .get("slow")?
                .as_arr()?
                .iter()
                .map(keq_trace::SlowObligation::from_json)
                .collect::<Option<Vec<_>>>()?,
            prometheus: doc.get("prometheus")?.as_str()?.to_string(),
        })
    }
}

/// One parsed server response.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerResponse {
    /// Every function of the request validated to a verdict.
    Validated {
        /// The request's tag.
        tag: u64,
        /// Per-function verdicts, ordered by index.
        results: Vec<FunctionVerdict>,
    },
    /// The scheduler's gate bounced the request.
    RejectedRequest {
        /// The request's tag.
        tag: u64,
        /// Stable rejection reason (`queue_full` / `quota` / `draining`).
        reason: String,
    },
    /// The request itself was malformed (bad JSON, bad IR).
    Error {
        /// Human-readable description.
        detail: String,
    },
    /// Live counters.
    Stats(StatsSnapshot),
    /// The full telemetry snapshot.
    Metrics(Box<MetricsReport>),
    /// Shutdown acknowledged; the server drains and exits.
    ShuttingDown,
}

impl ServerResponse {
    /// Serializes the response as one compact JSON payload.
    pub fn to_json_string(&self) -> String {
        let doc = match self {
            ServerResponse::Validated { tag, results } => json::obj(vec![
                ("ok", Json::Bool(true)),
                ("tag", json::num(*tag)),
                (
                    "results",
                    Json::Arr(results.iter().map(FunctionVerdict::to_json).collect()),
                ),
            ]),
            ServerResponse::RejectedRequest { tag, reason } => json::obj(vec![
                ("ok", Json::Bool(false)),
                ("tag", json::num(*tag)),
                ("rejected", Json::Str(reason.clone())),
            ]),
            ServerResponse::Error { detail } => json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str(detail.clone())),
            ]),
            ServerResponse::Stats(stats) => {
                json::obj(vec![("ok", Json::Bool(true)), ("stats", stats.to_json())])
            }
            ServerResponse::Metrics(report) => {
                json::obj(vec![("ok", Json::Bool(true)), ("metrics", report.to_json())])
            }
            ServerResponse::ShuttingDown => {
                json::obj(vec![("ok", Json::Bool(true)), ("draining", Json::Bool(true))])
            }
        };
        let mut out = String::new();
        doc.write_compact(&mut out);
        out
    }

    /// Parses one response payload.
    ///
    /// # Errors
    ///
    /// A human-readable description of what is malformed.
    pub fn parse(text: &str) -> Result<ServerResponse, String> {
        let doc = Json::parse(text).map_err(|e| format!("json: {e:?}"))?;
        let ok = doc.get("ok").and_then(Json::as_bool).ok_or("missing \"ok\"")?;
        if !ok {
            if let Some(detail) = doc.get("error").and_then(Json::as_str) {
                return Ok(ServerResponse::Error { detail: detail.to_string() });
            }
            let tag = doc.get("tag").and_then(Json::as_u64).ok_or("rejection: missing tag")?;
            let reason = doc
                .get("rejected")
                .and_then(Json::as_str)
                .ok_or("rejection: missing reason")?
                .to_string();
            return Ok(ServerResponse::RejectedRequest { tag, reason });
        }
        if doc.get("draining").and_then(Json::as_bool) == Some(true) {
            return Ok(ServerResponse::ShuttingDown);
        }
        if let Some(metrics) = doc.get("metrics") {
            let report =
                MetricsReport::from_json(metrics).ok_or("metrics: malformed report")?;
            return Ok(ServerResponse::Metrics(Box::new(report)));
        }
        if let Some(stats) = doc.get("stats") {
            let snapshot =
                StatsSnapshot::from_json(stats).ok_or("stats: malformed counters")?;
            return Ok(ServerResponse::Stats(snapshot));
        }
        let tag = doc.get("tag").and_then(Json::as_u64).ok_or("validated: missing tag")?;
        let results = doc
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("validated: missing results")?
            .iter()
            .map(FunctionVerdict::from_json)
            .collect::<Option<Vec<_>>>()
            .ok_or("validated: malformed result row")?;
        Ok(ServerResponse::Validated { tag, results })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "{\"op\":\"stats\"}").expect("write");
        write_frame(&mut wire, "second ☃ frame").expect("write");
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).expect("frame 1").as_deref(), Some("{\"op\":\"stats\"}"));
        assert_eq!(read_frame(&mut r).expect("frame 2").as_deref(), Some("second ☃ frame"));
        assert_eq!(read_frame(&mut r).expect("clean EOF"), None);
    }

    #[test]
    fn torn_and_oversized_frames_are_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "hello").expect("write");
        wire.truncate(wire.len() - 2); // tear the payload
        let mut r = &wire[..];
        assert!(read_frame(&mut r).is_err(), "torn payload is an error, not a short frame");

        let mut oversized = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        oversized.extend_from_slice(b"xx");
        let mut r = &oversized[..];
        assert!(read_frame(&mut r).is_err(), "oversized length bound rejected");

        let mut header_torn = vec![3u8, 0];
        let mut r = &header_torn[..];
        assert!(read_frame(&mut r).is_err(), "EOF mid header is an error");
        header_torn.clear();
        let mut r = &header_torn[..];
        assert_eq!(read_frame(&mut r).expect("empty stream"), None);
    }

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            ClientRequest::Validate {
                tag: 9,
                unit: 4,
                pass: keq_isel::PassId::Regalloc,
                ir: "define i32 @f() {\nentry:\n  ret i32 0\n}\n".into(),
                deadline_ms: Some(1500),
                max_attempts: Some(2),
            },
            ClientRequest::Validate {
                tag: 0,
                unit: 0,
                pass: keq_isel::PassId::Isel,
                ir: String::new(),
                deadline_ms: None,
                max_attempts: None,
            },
            ClientRequest::Stats,
            ClientRequest::Metrics,
            ClientRequest::Shutdown,
        ];
        for req in reqs {
            let text = req.to_json_string();
            assert_eq!(ClientRequest::parse(&text).expect("parses"), req, "{text}");
        }
        assert!(ClientRequest::parse("{\"op\":\"nope\"}").is_err());
        assert!(ClientRequest::parse("{}").is_err());
        assert!(ClientRequest::parse("not json").is_err());
    }

    #[test]
    fn passless_validate_requests_default_to_isel() {
        // A v6 client that never heard of passes still validates ISel.
        let req = ClientRequest::parse(
            "{\"op\":\"validate\",\"tag\":1,\"ir\":\"\"}",
        )
        .expect("parses");
        assert!(matches!(
            req,
            ClientRequest::Validate { pass: keq_isel::PassId::Isel, .. }
        ));
        assert_eq!(
            ClientRequest::parse("{\"op\":\"validate\",\"tag\":1,\"ir\":\"\",\"pass\":\"warp\"}")
                .unwrap_err(),
            "validate: unknown pass \"warp\""
        );
    }

    #[test]
    fn passless_verdict_rows_decode_as_isel() {
        let resp = ServerResponse::parse(
            "{\"ok\":true,\"tag\":1,\"results\":[{\"name\":\"f\",\"index\":0,\
\"result\":\"succeeded\",\"attempts\":1,\"queue_us\":0,\"wall_us\":5}]}",
        )
        .expect("parses");
        let ServerResponse::Validated { results, .. } = resp else { panic!("wrong variant") };
        assert_eq!(results[0].pass, "isel");
    }

    #[test]
    fn responses_round_trip_through_json() {
        let resps = vec![
            ServerResponse::Validated {
                tag: 3,
                results: vec![FunctionVerdict {
                    name: "f0".into(),
                    index: 0,
                    pass: "gvn".into(),
                    result: "succeeded".into(),
                    attempts: 2,
                    queue_us: 40,
                    wall_us: 9000,
                }],
            },
            ServerResponse::Validated { tag: 8, results: vec![] },
            ServerResponse::RejectedRequest { tag: 5, reason: "queue_full".into() },
            ServerResponse::Error { detail: "parse: bad ir \"x\"".into() },
            ServerResponse::Stats(StatsSnapshot {
                requests: 10,
                completed: 8,
                rejected_queue_full: 1,
                rejected_quota: 1,
                disconnects: 0,
                depth: 2,
                cache_hits: 30,
                cache_misses: 12,
                cache_entries: 12,
                p50_us: 900,
                p90_us: 4_000,
                p99_us: 15_000,
            }),
            ServerResponse::Metrics(Box::new(MetricsReport {
                enabled: true,
                uptime_ms: 12_500,
                queue_depth: 3,
                workers_busy: 2,
                workers_idle: 2,
                requests: 40,
                completed: 37,
                cache_hits: 100,
                cache_misses: 25,
                cache_entries: 25,
                rate_per_sec: 3.5,
                p50_us: 800,
                p90_us: 3_500,
                p99_us: 12_000,
                samples: 50,
                shard_entries: vec![3, 0, 7, 1],
                series: Json::Arr(vec![json::obj(vec![
                    ("name", Json::Str("keq_queue_depth".into())),
                    (
                        "points",
                        Json::Arr(vec![Json::Arr(vec![json::num(250), json::num(3)])]),
                    ),
                ])]),
                slow: vec![keq_trace::SlowObligation {
                    fingerprint: "00000000deadbeef".into(),
                    label: "@hot_loop".into(),
                    wall_us: 1_900_000,
                    result: "succeeded".into(),
                    attempts: 2,
                    retries: 1,
                    phase_us: vec![
                        (keq_trace::Phase::Lower, 200_000),
                        (keq_trace::Phase::Cdcl, 1_500_000),
                    ],
                    solver: Default::default(),
                }],
                prometheus: "# HELP keq_requests_total Submissions accepted since boot.\n"
                    .into(),
            })),
            ServerResponse::Metrics(Box::default()),
            ServerResponse::ShuttingDown,
        ];
        for resp in resps {
            let text = resp.to_json_string();
            assert_eq!(ServerResponse::parse(&text).expect("parses"), resp, "{text}");
        }
    }
}
