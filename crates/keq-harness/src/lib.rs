//! # keq-harness — the fault-isolated corpus validation harness
//!
//! The paper's §5.1 experiment validates thousands of functions in one
//! campaign; a single misbehaving function must not take the campaign
//! down with it. This crate supervises per-function validation so that a
//! corpus run **always** produces one classified row per function:
//!
//! * **Panic isolation** — each function runs on a worker thread under
//!   `catch_unwind`; a panic becomes [`CorpusResult::Crashed`] with the
//!   captured message and location ([`panic_capture`]).
//! * **Watchdog deadlines** — a hard per-attempt wall-clock deadline is
//!   enforced by raising the function's shared
//!   [`CancelToken`](keq_smt::CancelToken), which the checker's frontier
//!   loop, the CDCL search, and the register allocator's liveness fixpoint
//!   all poll. Workers that ignore the cancellation past a grace period
//!   are abandoned and replaced; their function is classified
//!   [`CorpusResult::Timeout`].
//! * **Escalating-budget retry** — budget-class failures are re-queued
//!   with deterministically multiplied budgets ([`RetryPolicy`]), every
//!   attempt recorded in the row.
//! * **Fault injection** — a seeded
//!   [`FaultPlan`](keq_smt::fault::FaultPlan) can inject synthetic panics,
//!   spurious budget exhaustion, and cancellation-ignoring hangs inside
//!   the pipeline, so the guarantees above are tested against real
//!   in-pipeline misbehavior rather than simulated wrappers. Storage
//!   faults (short reads, torn writes, ENOSPC) extend the plan to the
//!   persistence layer.
//! * **Crash safety** — an optional write-ahead verdict journal
//!   ([`journal`]) records every finalized function so a killed run can
//!   resume where it left off; store and journal writers degrade to
//!   memory-only behind a circuit breaker instead of failing the run;
//!   functions that crash through the whole retry ladder are
//!   [`CorpusResult::Quarantined`] rather than retried forever.
//!
//! Entry point: [`run_module`].

pub mod journal;
pub mod panic_capture;
pub mod protocol;
pub mod report;
pub mod result;
pub mod run;
pub mod scheduler;
pub mod server;

pub use journal::{
    corpus_fingerprint, function_fingerprint, JournalLoad, JournalRecord, JournalWriter,
};
pub use panic_capture::PanicInfo;
pub use report::{build_report, outcome_table, pass_sections};
pub use result::{
    AttemptRecord, CacheSummary, CorpusResult, CorpusRow, CorpusSummary, ResultKind, ResumeSummary,
};
pub use run::{run_module, HarnessOptions, RetryPolicy};
pub use protocol::{
    read_frame, write_frame, ClientRequest, FunctionVerdict, MetricsReport, ServerResponse,
    StatsSnapshot,
};
pub use scheduler::{
    ClientQuota, Completion, JournalConfig, MetricsConfig, Rejected, Request, Scheduler,
    SchedulerConfig, SchedulerFinal, ServerCounters, Telemetry,
};
pub use server::{connect, ClientConn, Server, ServerOptions, ServerSummary};
