//! The supervisor: worker pool, watchdog, and escalating-budget retry.
//!
//! [`run_module`] validates every function of a module on a pool of worker
//! threads and guarantees a classified [`CorpusRow`] for each one, no
//! matter how the validation of an individual function misbehaves:
//!
//! * a panic unwinds into the worker's `catch_unwind` and becomes
//!   [`CorpusResult::Crashed`] with the captured message;
//! * a hard wall-clock deadline is enforced by raising the function's
//!   [`CancelToken`]; cooperative code observes it at the next poll site
//!   and reports a timeout-class failure;
//! * a worker that keeps running past the deadline *plus* a grace period
//!   (it is wedged, or an injected fault is eating its cancellation polls)
//!   is **abandoned**: the supervisor retires it, detaches its thread,
//!   spawns a replacement, and classifies the function
//!   [`CorpusResult::Timeout`] — the late thread's eventual result (if
//!   any) is discarded as stale;
//! * budget-class failures are retried up to
//!   [`RetryPolicy::max_attempts`] with deterministically escalated
//!   budgets, each attempt recorded in the row.
//!
//! Results are deterministic in content: rows are ordered by function
//! index and, faults and deadlines aside, classification does not depend
//! on worker count or scheduling.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use keq_core::{FailureReason, KeqOptions, Verdict};
use keq_isel::pipeline::ValidationContext;
use keq_isel::{IselOptions, VcOptions};
use keq_llvm::ast::Module;
use keq_smt::fault::{self, FaultPlan};
use keq_smt::obcache::{StdStoreIo, StoreIo};
use keq_smt::{Budget, CancelToken, FaultyIo, SharedObligationCache, SolverStats};

use crate::journal::{self, JournalRecord, JournalWriter};
use crate::panic_capture;
use crate::result::{
    AttemptRecord, CacheSummary, CorpusResult, CorpusRow, CorpusSummary, ResumeSummary,
};

/// Escalating-budget retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per function (1 = never retry).
    pub max_attempts: u32,
    /// Budget multiplier between consecutive attempts: attempt `k`
    /// (1-based) runs with all resource budgets scaled by
    /// `factor^(k-1)`.
    pub factor: u64,
    /// Whether crash-class outcomes (caught panics) are re-queued like
    /// budget-class ones. A function still crashing on its final attempt is
    /// classified [`CorpusResult::Quarantined`] rather than `Crashed`: the
    /// crash survived retries, so it is reproducible, not transient.
    pub retry_crashes: bool,
    /// Base delay of the decorrelated-jitter backoff inserted before retry
    /// attempts ([`Duration::ZERO`] disables backoff — the default, and
    /// what deterministic tests want). Retries after transient faults
    /// otherwise stampede the same contended resource in lockstep.
    pub backoff_base: Duration,
    /// Upper clamp on the backoff ([`Duration::ZERO`] means `64 × base`).
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            factor: 4,
            retry_crashes: false,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// The budget multiplier of a 1-based attempt number.
    pub fn scale(&self, attempt: u32) -> u64 {
        self.factor.saturating_pow(attempt.saturating_sub(1))
    }

    /// The decorrelated-jitter delay slept before a 1-based retry attempt
    /// (AWS-style: each step draws uniformly from `[base, 3 × previous)`,
    /// clamped to the cap). Deterministic in `(seed, func, attempt)` —
    /// the "randomness" is [`keq_smt::mix64`] — so a replayed run sleeps
    /// identically. Zero for first attempts and when backoff is disabled.
    pub fn backoff_for(&self, seed: u64, func: u64, attempt: u32) -> Duration {
        if attempt <= 1 || self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let base = u64::try_from(self.backoff_base.as_nanos()).unwrap_or(u64::MAX);
        let cap = if self.backoff_cap.is_zero() {
            base.saturating_mul(64)
        } else {
            u64::try_from(self.backoff_cap.as_nanos()).unwrap_or(u64::MAX)
        };
        let mut prev = base.min(cap);
        for k in 2..=attempt {
            let r = keq_smt::mix64(
                seed ^ func.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (u64::from(k) << 32),
            );
            let hi = prev.saturating_mul(3).max(base.saturating_add(1));
            prev = base.saturating_add(r % (hi - base)).min(cap);
        }
        Duration::from_nanos(prev)
    }

    /// The checker options of a 1-based attempt: every resource budget
    /// (step fuel, conflict, term, and wall-clock limits) multiplied by
    /// [`RetryPolicy::scale`].
    pub fn options_for_attempt(&self, base: KeqOptions, attempt: u32) -> KeqOptions {
        let scale = self.scale(attempt);
        let scale32 = u32::try_from(scale).unwrap_or(u32::MAX);
        KeqOptions {
            max_steps: base.max_steps.saturating_mul(scale),
            time_limit: base.time_limit.map(|d| d.saturating_mul(scale32)),
            solver_budget: Budget {
                max_conflicts: base.solver_budget.max_conflicts.saturating_mul(scale),
                max_terms: base
                    .solver_budget
                    .max_terms
                    .saturating_mul(usize::try_from(scale).unwrap_or(usize::MAX)),
                max_time: base.solver_budget.max_time.map(|d| d.saturating_mul(scale32)),
            },
            ..base
        }
    }
}

/// Configuration of a supervised corpus run.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Base checker options of attempt 1 (later attempts scale them by
    /// [`RetryPolicy`]).
    pub keq: KeqOptions,
    /// Instruction-selection options.
    pub isel: IselOptions,
    /// VC-generation options.
    pub vc: VcOptions,
    /// Worker threads; 0 picks the available parallelism.
    pub workers: usize,
    /// Hard per-attempt wall-clock deadline, enforced by cancellation
    /// (`None` disables the watchdog's deadline duty).
    pub deadline: Option<Duration>,
    /// How long past a cancellation a worker may keep running before the
    /// watchdog abandons it.
    pub grace: Duration,
    /// Watchdog sweep interval.
    pub watchdog_tick: Duration,
    /// Retry policy for budget-class failures.
    pub retry: RetryPolicy,
    /// Deterministic fault plan (use [`FaultPlan::quiet`] for none).
    pub fault_plan: FaultPlan,
    /// Carry a [`ValidationContext`] (term bank + solver query cache)
    /// across retries of the same function, so an escalated-budget attempt
    /// warm-starts from the sub-obligations its predecessors already
    /// closed. Budgeted outcomes are never cached, so a starved attempt
    /// cannot poison a richer one; a panicking attempt discards its
    /// context entirely.
    pub warm_start: bool,
    /// Shared trace sink, installed on the supervisor thread and on every
    /// worker so one journal collects a coherent, epoch-aligned event
    /// stream (`None` disables tracing: probe sites cost one flag read).
    pub trace: Option<keq_trace::TraceSink>,
    /// On-disk obligation store for persistent warm starts: loaded into
    /// the run's [`SharedObligationCache`] before the first attempt and
    /// written back (append-only for a store of the current semantics
    /// revision) incrementally during the run and once more at the end.
    /// `None` keeps the cache purely in-memory — it is still shared across
    /// workers within the run.
    pub cache_path: Option<std::path::PathBuf>,
    /// Write-ahead verdict journal: every finalized `(function, verdict)`
    /// is appended (checksummed) as it is decided, so a killed run loses at
    /// most the in-flight functions. `None` disables journaling.
    pub journal_path: Option<std::path::PathBuf>,
    /// Recover finalized verdicts from `journal_path` before scheduling:
    /// functions already decided by a previous (killed) run are skipped and
    /// their journal rows merged into the summary as recovered rows.
    pub resume: bool,
    /// Flush the obligation store to `cache_path` every this many function
    /// finalizations (`0` = only the final shutdown flush). Incremental
    /// flushes are what make a kill lose batches, not the whole store.
    pub store_flush_every: u32,
    /// Circuit breaker: after this many *consecutive* storage-write
    /// failures (store flushes, journal appends — each breaker is
    /// per-target) the target degrades to memory-only for the rest of the
    /// run, with a `StoreDegraded` trace event, instead of hammering a sick
    /// disk once per finalization.
    pub store_breaker_threshold: u32,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            keq: KeqOptions::default(),
            isel: IselOptions::default(),
            vc: VcOptions::default(),
            workers: 0,
            deadline: None,
            grace: Duration::from_millis(500),
            watchdog_tick: Duration::from_millis(10),
            retry: RetryPolicy::default(),
            fault_plan: FaultPlan::quiet(0),
            warm_start: true,
            trace: None,
            cache_path: None,
            journal_path: None,
            resume: false,
            store_flush_every: 8,
            store_breaker_threshold: 3,
        }
    }
}

/// Batched, breaker-guarded persistence of the shared obligation store.
///
/// The supervisor calls [`StoreFlusher::tick`] at every function
/// finalization; every `every`-th tick persists the store's dirty verdicts
/// through the injectable [`StoreIo`] (one append per batch — a mid-batch
/// kill tears at most one batch, which the next load skips fail-soft).
/// After `threshold` consecutive failures the breaker trips and the store
/// degrades to memory-only: verdicts keep accumulating in memory and the
/// run's *results* are unaffected; only the next run's warm start is lost.
struct StoreFlusher {
    shared: Arc<SharedObligationCache>,
    path: Option<std::path::PathBuf>,
    io: Arc<dyn StoreIo>,
    every: u32,
    threshold: u32,
    pending: u32,
    consecutive: u32,
    flushes: u64,
    flush_failures: u64,
    degraded: bool,
    persist_failed: bool,
    disk_persisted: u64,
    disk_bytes: u64,
}

impl StoreFlusher {
    fn new(
        shared: Arc<SharedObligationCache>,
        path: Option<std::path::PathBuf>,
        io: Arc<dyn StoreIo>,
        every: u32,
        threshold: u32,
    ) -> StoreFlusher {
        StoreFlusher {
            shared,
            path,
            io,
            every,
            threshold: threshold.max(1),
            pending: 0,
            consecutive: 0,
            flushes: 0,
            flush_failures: 0,
            degraded: false,
            persist_failed: false,
            disk_persisted: 0,
            disk_bytes: 0,
        }
    }

    /// One function finalized; flush if the batch is full.
    fn tick(&mut self) {
        if self.path.is_none() || self.every == 0 {
            return;
        }
        self.pending += 1;
        if self.pending >= self.every {
            self.flush("flush");
        }
    }

    fn flush(&mut self, op: &'static str) {
        self.pending = 0;
        if self.degraded {
            return;
        }
        let Some(path) = self.path.clone() else { return };
        match self.shared.persist_with(&path, self.io.as_ref()) {
            Ok(persist) => {
                self.flushes += 1;
                self.consecutive = 0;
                self.disk_persisted += persist.written;
                self.disk_bytes = persist.file_bytes;
            }
            Err(err) => {
                self.flush_failures += 1;
                self.consecutive += 1;
                if keq_trace::enabled() {
                    keq_trace::emit(keq_trace::Event::StoreError {
                        target: "store",
                        op,
                        detail: err.to_string(),
                    });
                }
                if self.consecutive >= self.threshold {
                    self.degraded = true;
                    keq_trace::emit(keq_trace::Event::StoreDegraded {
                        target: "store",
                        failures: self.consecutive,
                    });
                }
            }
        }
    }

    /// The shutdown flush. A failure here (or an already-tripped breaker)
    /// means this run's remaining proved verdicts never reached disk — the
    /// summary must say so instead of silently reporting a cold next run.
    fn finish(&mut self) {
        if self.path.is_none() {
            return;
        }
        if self.degraded {
            self.persist_failed = true;
            return;
        }
        let failures_before = self.flush_failures;
        self.flush("persist");
        if self.flush_failures > failures_before {
            self.persist_failed = true;
        }
    }
}

/// Appends the just-finalized verdict of `func` to the write-ahead journal
/// (no-op without one). Called at *both* finalize sites — delivered results
/// and watchdog abandonments — so resume sees every decided function.
fn journal_finalize(
    writer: &mut Option<JournalWriter>,
    func: usize,
    func_fp: u64,
    attempts: &[AttemptRecord],
    result: &CorpusResult,
) {
    let Some(w) = writer else { return };
    let time: Duration = attempts.iter().map(|a| a.time).sum();
    w.append(&JournalRecord {
        func: func as u32,
        func_fp,
        attempts: attempts.len() as u32,
        time_us: u64::try_from(time.as_micros()).unwrap_or(u64::MAX),
        result: result.clone(),
    });
}

/// Per-function warm-start contexts, keyed by function index and guarded
/// by a per-function *generation*. A worker [`WarmStarts::take`]s the
/// entry (and the function's current generation) before an attempt and
/// [`WarmStarts::put`]s it back afterwards, so the map never hands the
/// same context to two threads (the supervisor only ever has one attempt
/// of a function in flight).
///
/// When the supervisor finalizes a function — on a delivered result *or*
/// by abandoning a wedged worker — it [`WarmStarts::retire`]s the entry,
/// which bumps the generation. A detached, watchdog-abandoned thread that
/// eventually finishes still tries to put its context back; its stale
/// generation no longer matches, so the context is dropped on the floor
/// instead of being resurrected into the map (where nothing would ever
/// read it again, pinning a dead function's term bank for the rest of the
/// run).
#[derive(Default)]
struct WarmStarts {
    inner: Mutex<WarmInner>,
}

#[derive(Default)]
struct WarmInner {
    generations: HashMap<usize, u64>,
    ctxs: HashMap<usize, ValidationContext>,
}

impl WarmStarts {
    /// Removes and returns the function's context (if any) together with
    /// the generation the caller must present to [`WarmStarts::put`].
    fn take(&self, func: usize) -> (u64, Option<ValidationContext>) {
        let mut st = self.inner.lock().expect("warm-start map poisoned");
        let generation = st.generations.get(&func).copied().unwrap_or(0);
        (generation, st.ctxs.remove(&func))
    }

    /// Puts a context back for the function's next attempt — unless the
    /// supervisor retired the function since the matching
    /// [`WarmStarts::take`], in which case the stale context is dropped.
    fn put(&self, func: usize, generation: u64, ctx: ValidationContext) {
        let mut st = self.inner.lock().expect("warm-start map poisoned");
        if st.generations.get(&func).copied().unwrap_or(0) == generation {
            st.ctxs.insert(func, ctx);
        }
    }

    /// Finalizes the function: drops its context and bumps its generation
    /// so any in-flight (possibly abandoned) attempt can no longer put one
    /// back.
    fn retire(&self, func: usize) {
        let mut st = self.inner.lock().expect("warm-start map poisoned");
        *st.generations.entry(func).or_insert(0) += 1;
        st.ctxs.remove(&func);
    }

    #[cfg(test)]
    fn contains(&self, func: usize) -> bool {
        self.inner.lock().expect("warm-start map poisoned").ctxs.contains_key(&func)
    }
}

/// One unit of queued work: one attempt at one function.
#[derive(Debug, Clone, Copy)]
struct Job {
    id: u64,
    func: usize,
    attempt: u32,
}

/// Closable blocking job queue (FIFO).
#[derive(Default)]
struct JobQueue {
    state: Mutex<(std::collections::VecDeque<Job>, bool)>,
    ready: Condvar,
}

impl JobQueue {
    fn push(&self, job: Job) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.0.push_back(job);
        self.ready.notify_one();
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.1 = true;
        self.ready.notify_all();
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = st.0.pop_front() {
                return Some(job);
            }
            if st.1 {
                return None;
            }
            st = self.ready.wait(st).expect("queue poisoned");
        }
    }
}

/// What one attempt produced, as reported by the worker.
#[derive(Debug)]
struct AttemptOutcome {
    result: CorpusResult,
    /// Whether the failure is budget-class and bigger budgets could help.
    retryable: bool,
    time: Duration,
    /// Solver-statistics delta of this attempt alone ([`SolverStats::since`]
    /// over the attempt's context; zero for panicked attempts, whose
    /// context died mid-flight).
    solver: SolverStats,
}

enum Msg {
    /// A worker picked up a job and will honor this cancellation token.
    Started { job: u64, worker: usize, cancel: CancelToken },
    /// A worker finished a job.
    Finished { job: u64, outcome: AttemptOutcome },
}

struct Worker {
    /// Raised by the supervisor to make the thread exit after its current
    /// job (used when abandoning it, so a late finisher never picks up
    /// fresh work).
    retired: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Book-keeping for a job between `Started` and `Finished`.
struct Inflight {
    func: usize,
    attempt: u32,
    worker: usize,
    cancel: CancelToken,
    started: Instant,
    deadline: Option<Instant>,
    cancelled_at: Option<Instant>,
}

/// Validates every function of `module` under the harness, returning one
/// classified row per function (ordered by function index). See the
/// module docs for the guarantees.
pub fn run_module(module: &Module, opts: &HarnessOptions) -> CorpusSummary {
    panic_capture::install_hook();
    // The supervisor thread traces too: deadline cancellations and
    // watchdog abandonments are decided here, not on a worker.
    let _trace_guard = opts.trace.as_ref().map(keq_trace::install);
    let n = module.functions.len();
    if n == 0 {
        return CorpusSummary::default();
    }
    let module = Arc::new(module.clone());
    let opts_arc = Arc::new(opts.clone());
    let queue = Arc::new(JobQueue::default());
    let ctxs = Arc::new(WarmStarts::default());
    let (tx, rx) = mpsc::channel::<Msg>();

    // Every byte that reaches disk — store flushes, journal appends,
    // journal/store loads — goes through one injectable backend, so a
    // storage fault plan exercises the same code paths a sick disk would.
    let io: Arc<dyn StoreIo> = if opts.fault_plan.has_storage_faults() {
        Arc::new(FaultyIo::new(opts.fault_plan.storage()))
    } else {
        Arc::new(StdStoreIo)
    };

    // One obligation cache for the whole run, shared by every worker (and
    // every replacement worker), warm-started from the on-disk store when
    // one is configured. A corrupt or stale store degrades to a cold
    // cache, never to a failed run.
    let shared = Arc::new(SharedObligationCache::new());
    let mut disk_loaded = 0u64;
    let mut disk_rejected = 0u64;
    if let Some(path) = &opts.cache_path {
        let load = shared.load_with(path, io.as_ref());
        disk_loaded = load.loaded;
        disk_rejected = load.rejected;
    }
    let mut flusher = StoreFlusher::new(
        Arc::clone(&shared),
        opts.cache_path.clone(),
        Arc::clone(&io),
        opts.store_flush_every,
        opts.store_breaker_threshold,
    );

    // Write-ahead journal: recover what a killed predecessor decided, then
    // open for appending. Resume matches a record by function index *and*
    // per-function fingerprint (and the whole journal by corpus
    // fingerprint), so a changed corpus can never inherit stale verdicts.
    let func_fps: Vec<u64> =
        module.functions.iter().map(journal::function_fingerprint).collect();
    let corpus_fp = journal::fingerprint_of(&func_fps);
    let mut resume = ResumeSummary::default();
    let mut recovered: Vec<Option<JournalRecord>> = vec![None; n];
    let mut journal_writer: Option<JournalWriter> = None;
    if let Some(journal_path) = &opts.journal_path {
        let mut valid_prefix: Option<Vec<u8>> = None;
        if opts.resume {
            resume.enabled = true;
            let load = journal::load(journal_path, corpus_fp, io.as_ref());
            if !load.reset {
                resume.corrupt = load.corrupt;
                resume.recovered = load.records.len() as u64;
                for rec in load.records {
                    let idx = rec.func as usize;
                    if idx < n && func_fps[idx] == rec.func_fp {
                        recovered[idx] = Some(rec);
                    }
                }
                valid_prefix = Some(load.valid_prefix);
            }
        }
        journal_writer = Some(JournalWriter::start(
            journal_path,
            corpus_fp,
            valid_prefix.as_deref(),
            Arc::clone(&io),
            opts.store_breaker_threshold,
        ));
    }

    let mut attempts: Vec<Vec<AttemptRecord>> = vec![Vec::new(); n];
    let mut finals: Vec<Option<CorpusResult>> = vec![None; n];
    let mut inflight: HashMap<u64, Inflight> = HashMap::new();
    let mut completed = 0usize;
    let mut solver_total = SolverStats::default();

    // Pre-finalize recovered functions — they never reach the queue.
    for (func, rec) in recovered.iter().enumerate() {
        if let Some(rec) = rec {
            finals[func] = Some(rec.result.clone());
            completed += 1;
            resume.skipped += 1;
            keq_trace::emit(keq_trace::Event::ResumeSkipped { func: func as u32 });
        }
    }

    let workers = if opts.workers == 0 {
        std::thread::available_parallelism().map_or(4, usize::from).min(n).max(1)
    } else {
        opts.workers
    };
    let mut pool: Vec<Worker> = Vec::new();
    for id in 0..workers {
        pool.push(spawn_worker(&module, &opts_arc, &queue, &ctxs, &shared, &tx, id));
    }

    // Seed one attempt-1 job per not-yet-decided function.
    let mut next_job: u64 = 0;
    let mut job_meta: HashMap<u64, (usize, u32)> = HashMap::new();
    for (func, rec) in recovered.iter().enumerate() {
        if rec.is_some() {
            continue;
        }
        queue.push(Job { id: next_job, func, attempt: 1 });
        job_meta.insert(next_job, (func, 1));
        next_job += 1;
    }

    while completed < n {
        match rx.recv_timeout(opts.watchdog_tick) {
            Ok(Msg::Started { job, worker, cancel }) => {
                let Some(&(func, attempt)) = job_meta.get(&job) else { continue };
                let now = Instant::now();
                inflight.insert(
                    job,
                    Inflight {
                        func,
                        attempt,
                        worker,
                        cancel,
                        started: now,
                        deadline: opts.deadline.map(|d| now + d),
                        cancelled_at: None,
                    },
                );
            }
            Ok(Msg::Finished { job, outcome }) => {
                // A `Finished` with no inflight entry is a stale result
                // from an abandoned worker: its function already has a
                // Timeout row, so the late verdict is discarded.
                let Some(info) = inflight.remove(&job) else { continue };
                job_meta.remove(&job);
                solver_total.merge(&outcome.solver);
                attempts[info.func].push(AttemptRecord {
                    attempt: info.attempt,
                    budget_scale: opts.retry.scale(info.attempt),
                    time: outcome.time,
                    result: outcome.result.clone(),
                    abandoned: false,
                });
                // A supervisor-cancelled attempt hit the *hard* deadline;
                // escalated budgets cannot outrun the wall clock, so it is
                // final regardless of the in-band failure reason.
                let may_retry = outcome.retryable
                    && info.cancelled_at.is_none()
                    && info.attempt < opts.retry.max_attempts;
                if may_retry {
                    queue.push(Job { id: next_job, func: info.func, attempt: info.attempt + 1 });
                    job_meta.insert(next_job, (info.func, info.attempt + 1));
                    next_job += 1;
                } else {
                    // A crash that survived its retries (`retry_crashes`
                    // made it retryable, and this was the last allowed
                    // attempt) is reproducible, not transient: quarantine
                    // it so the summary separates "crashed once" from
                    // "still crashing after N attempts".
                    let result = match outcome.result {
                        CorpusResult::Crashed { message, location }
                            if outcome.retryable
                                && info.attempt >= opts.retry.max_attempts
                                && info.attempt > 1 =>
                        {
                            CorpusResult::Quarantined { message, location }
                        }
                        result => result,
                    };
                    journal_finalize(
                        &mut journal_writer,
                        info.func,
                        func_fps[info.func],
                        &attempts[info.func],
                        &result,
                    );
                    finals[info.func] = Some(result);
                    completed += 1;
                    // No further attempt will run: release the function's
                    // warm-start context.
                    ctxs.retire(info.func);
                    flusher.tick();
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Watchdog sweep: cancel past-deadline jobs, abandon workers that
        // ignore the cancellation past the grace period.
        let now = Instant::now();
        let mut abandon: Vec<u64> = Vec::new();
        for (&job, info) in inflight.iter_mut() {
            if info.cancelled_at.is_none() && info.deadline.is_some_and(|d| now >= d) {
                info.cancel.cancel();
                info.cancelled_at = Some(now);
                keq_trace::emit(keq_trace::Event::DeadlineCancelled {
                    func: info.func as u32,
                    attempt: info.attempt,
                });
            }
            if info.cancelled_at.is_some_and(|t| now >= t + opts.grace) {
                abandon.push(job);
            }
        }
        for job in abandon {
            let info = inflight.remove(&job).expect("selected above");
            job_meta.remove(&job);
            keq_trace::emit(keq_trace::Event::WatchdogAbandoned {
                func: info.func as u32,
                attempt: info.attempt,
            });
            attempts[info.func].push(AttemptRecord {
                attempt: info.attempt,
                budget_scale: opts.retry.scale(info.attempt),
                time: now - info.started,
                result: CorpusResult::Timeout,
                abandoned: true,
            });
            journal_finalize(
                &mut journal_writer,
                info.func,
                func_fps[info.func],
                &attempts[info.func],
                &CorpusResult::Timeout,
            );
            finals[info.func] = Some(CorpusResult::Timeout);
            completed += 1;
            flusher.tick();
            // The abandoned worker still *owns* the function's context (it
            // took it before the attempt) and may try to re-insert it if
            // it ever finishes; retiring bumps the generation so that late
            // insert is dropped instead of resurrecting a dead entry.
            ctxs.retire(info.func);
            // Retire the wedged worker (its thread stays detached) and
            // keep the pool at strength with a fresh replacement.
            retire_worker(&mut pool, info.worker);
            let id = pool.len();
            pool.push(spawn_worker(&module, &opts_arc, &queue, &ctxs, &shared, &tx, id));
        }
    }

    queue.close();
    drop(tx);
    for w in &mut pool {
        if w.retired.load(Ordering::Acquire) {
            // Abandoned (possibly parked forever): detach, never join.
            drop(w.handle.take());
        } else if let Some(h) = w.handle.take() {
            let _ = h.join();
        }
    }

    // The shutdown flush, through the same breaker-guarded path as the
    // incremental ones. Persistence stays best-effort — an I/O error costs
    // next run's warm start, not this run's results — but it is no longer
    // *silent*: a failure lands in the summary (and its `summary_line`
    // warning) and was already traced as a `StoreError` event.
    flusher.finish();
    let cache_stats = shared.stats();
    let cache = CacheSummary {
        evictions: cache_stats.evictions,
        entries: cache_stats.entries,
        disk_loaded,
        disk_rejected,
        disk_persisted: flusher.disk_persisted,
        disk_bytes: flusher.disk_bytes,
        flushes: flusher.flushes,
        flush_failures: flusher.flush_failures,
        degraded: flusher.degraded,
        persist_failed: flusher.persist_failed,
    };
    let mut summary =
        CorpusSummary { solver: solver_total, cache, resume, ..CorpusSummary::default() };
    for (index, f) in module.functions.iter().enumerate() {
        let size: usize = f.blocks.iter().map(|b| b.instrs.len() + 1).sum();
        let rows_attempts = std::mem::take(&mut attempts[index]);
        let (time, is_recovered) = match &recovered[index] {
            // A recovered row carries the killed run's journal-recorded
            // wall time; its per-attempt observations died with the killed
            // process, so `attempts` stays empty.
            Some(rec) => (rec.time(), true),
            None => (rows_attempts.iter().map(|a| a.time).sum(), false),
        };
        summary.rows.push(CorpusRow {
            name: f.name.clone(),
            index,
            size,
            time,
            result: finals[index].take().expect("every function finalized"),
            recovered: is_recovered,
            attempts: rows_attempts,
        });
    }
    summary
}

fn retire_worker(pool: &mut [Worker], worker: usize) {
    if let Some(w) = pool.get_mut(worker) {
        w.retired.store(true, Ordering::Release);
    }
}

fn spawn_worker(
    module: &Arc<Module>,
    opts: &Arc<HarnessOptions>,
    queue: &Arc<JobQueue>,
    ctxs: &Arc<WarmStarts>,
    shared: &Arc<SharedObligationCache>,
    tx: &mpsc::Sender<Msg>,
    id: usize,
) -> Worker {
    let module = Arc::clone(module);
    let opts = Arc::clone(opts);
    let queue = Arc::clone(queue);
    let ctxs = Arc::clone(ctxs);
    let shared = Arc::clone(shared);
    let tx = tx.clone();
    let retired = Arc::new(AtomicBool::new(false));
    let retired_in = Arc::clone(&retired);
    let handle = std::thread::Builder::new()
        .name("keq-harness-worker".into())
        .spawn(move || {
            let _trace_guard = opts.trace.as_ref().map(keq_trace::install);
            while !retired_in.load(Ordering::Acquire) {
                let Some(job) = queue.pop() else { break };
                // Decorrelated-jitter backoff before retries, *before*
                // announcing the job: the sleep must not consume the
                // attempt's deadline.
                let backoff = opts.retry.backoff_for(
                    opts.fault_plan.seed,
                    job.func as u64,
                    job.attempt,
                );
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                let cancel = CancelToken::new();
                let started = Msg::Started { job: job.id, worker: id, cancel: cancel.clone() };
                if tx.send(started).is_err() {
                    break;
                }
                let start = Instant::now();
                let outcome = run_attempt(&module, &opts, &ctxs, &shared, job, &cancel, start);
                if tx.send(Msg::Finished { job: job.id, outcome }).is_err() {
                    break;
                }
            }
        })
        .expect("spawn worker thread");
    Worker { retired, handle: Some(handle) }
}

/// Runs one attempt on the worker thread: arm the unit's injected fault,
/// take the function's warm-start context, validate under `catch_unwind`,
/// put the context back, classify.
fn run_attempt(
    module: &Module,
    opts: &HarnessOptions,
    ctxs: &WarmStarts,
    shared: &Arc<SharedObligationCache>,
    job: Job,
    cancel: &CancelToken,
    start: Instant,
) -> AttemptOutcome {
    let func = &module.functions[job.func];
    let keq = opts.retry.options_for_attempt(opts.keq, job.attempt);
    let _fault = fault::install(&opts.fault_plan, job.func as u64);
    let _trace_ctx = keq_trace::with_attempt(job.func as u32, job.attempt);
    keq_trace::emit(keq_trace::Event::AttemptStart {
        func: job.func as u32,
        attempt: job.attempt,
        budget_scale: opts.retry.scale(job.attempt),
    });
    let (generation, mut ctx) = if opts.warm_start {
        let (generation, ctx) = ctxs.take(job.func);
        (generation, ctx.unwrap_or_default())
    } else {
        (0, ValidationContext::new())
    };
    // (Re-)attach the run's shared obligation cache on every attempt:
    // fresh contexts start detached, and a warm-started context carries
    // whatever was attached last time.
    ctx.attach_obligation_cache(Some(Arc::clone(shared)));
    // The warm-start context carries cumulative solver statistics from
    // earlier attempts; snapshot them so this attempt reports its delta.
    let stats_before = ctx.solver.stats();
    // The context rides inside the closure so a panic mid-validation drops
    // it during unwind: a context of unknown consistency is never reused
    // (and panics are not retryable anyway).
    let outcome = panic_capture::run_caught(move || {
        let r = keq_isel::validate_function_with_context(
            module,
            func,
            opts.isel,
            opts.vc,
            keq,
            Some(cancel),
            &mut ctx,
        );
        (r, ctx)
    });
    let mut solver = SolverStats::default();
    let (result, retryable) = match outcome {
        Ok((Ok(v), ctx)) => {
            solver = ctx.solver.stats().since(&stats_before);
            if opts.warm_start {
                // Dropped, not inserted, if the supervisor retired the
                // function while this attempt ran (watchdog abandonment).
                ctxs.put(job.func, generation, ctx);
            }
            classify(&v.report.verdict)
        }
        // Unsupported functions never get better with bigger budgets.
        Ok((Err(_), ctx)) => {
            solver = ctx.solver.stats().since(&stats_before);
            (CorpusResult::Other, false)
        }
        Err(panic) => {
            if keq_trace::enabled() {
                keq_trace::emit(keq_trace::Event::PanicCaptured {
                    func: job.func as u32,
                    attempt: job.attempt,
                    message: panic.message.clone(),
                    location: panic.location.clone(),
                });
            }
            // Crash-class retryability is opt-in: panics are only worth a
            // second attempt when the fault surface is known to be
            // transient (fault campaigns, flaky external tooling).
            (
                CorpusResult::Crashed { message: panic.message, location: panic.location },
                opts.retry.retry_crashes,
            )
        }
    };
    let time = start.elapsed();
    keq_trace::emit(keq_trace::Event::AttemptEnd {
        func: job.func as u32,
        attempt: job.attempt,
        result: result.kind().name(),
        dur_us: u64::try_from(time.as_micros()).unwrap_or(u64::MAX),
    });
    AttemptOutcome { result, retryable, time, solver }
}

/// Maps a verdict to its Fig. 6 row and decides whether escalated budgets
/// could change it.
fn classify(verdict: &Verdict) -> (CorpusResult, bool) {
    match verdict {
        Verdict::Equivalent | Verdict::Refines => (CorpusResult::Succeeded, false),
        Verdict::NotValidated(fail) => {
            let retryable = matches!(
                fail.reason,
                FailureReason::FuelExhausted { .. }
                    | FailureReason::TimeLimit
                    | FailureReason::SolverBudget(_)
            );
            let result = match fail.reason.failure_class() {
                keq_core::FailureClass::Timeout => CorpusResult::Timeout,
                keq_core::FailureClass::OutOfMemory => CorpusResult::OutOfMemory,
                keq_core::FailureClass::Other => CorpusResult::Other,
            };
            (result, retryable)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The stale-context resurrection regression: a watchdog-abandoned
    /// worker's detached thread finishes *after* the supervisor retired
    /// its function. Its put must be dropped — before the generation
    /// check, the late insert parked a dead function's term bank in the
    /// map for the rest of the run.
    #[test]
    fn late_put_after_retire_is_dropped() {
        let warm = WarmStarts::default();
        warm.put(3, 0, ValidationContext::new());
        let (generation, ctx) = warm.take(3);
        assert!(ctx.is_some());

        // Supervisor abandons the attempt and finalizes the function.
        warm.retire(3);

        // The detached worker eventually finishes and puts "back".
        warm.put(3, generation, ValidationContext::new());
        assert!(!warm.contains(3), "retired function must not resurrect its context");

        // And a *current*-generation put after the retire still works
        // (not relevant to finalized functions, but proves retire only
        // invalidates earlier takes, not the map entry forever).
        let (generation, ctx) = warm.take(3);
        assert!(ctx.is_none());
        warm.put(3, generation, ValidationContext::new());
        assert!(warm.contains(3));
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_for(1, 0, 1), Duration::ZERO, "first attempts never wait");
        for attempt in 2..=5 {
            for func in 0..8 {
                let d = policy.backoff_for(1, func, attempt);
                assert_eq!(d, policy.backoff_for(1, func, attempt), "replays sleep identically");
                assert!(d >= Duration::from_millis(10) && d <= Duration::from_millis(80), "{d:?}");
            }
        }
        // Decorrelated: different functions do not stampede in lockstep.
        assert!(
            (1..16).any(|func| policy.backoff_for(1, func, 3) != policy.backoff_for(1, 0, 3)),
            "jitter must separate concurrent retries"
        );
        // Disabled (the default) and zero-cap configurations stay sane.
        assert_eq!(RetryPolicy::default().backoff_for(1, 0, 4), Duration::ZERO);
        let uncapped = RetryPolicy {
            backoff_base: Duration::from_millis(10),
            ..RetryPolicy::default()
        };
        assert!(uncapped.backoff_for(9, 2, 4) <= Duration::from_millis(640), "64x base clamp");
    }

    #[test]
    fn put_with_matching_generation_round_trips() {
        let warm = WarmStarts::default();
        let (generation, ctx) = warm.take(7);
        assert_eq!(generation, 0);
        assert!(ctx.is_none(), "fresh function has no context yet");
        warm.put(7, generation, ValidationContext::new());
        assert!(warm.contains(7));

        // A take hands the context out exclusively.
        let (generation, ctx) = warm.take(7);
        assert!(ctx.is_some());
        assert!(!warm.contains(7));
        warm.put(7, generation, ctx.unwrap());
        assert!(warm.contains(7));
    }

    #[test]
    fn retire_is_per_function() {
        let warm = WarmStarts::default();
        let (g1, _) = warm.take(1);
        let (g2, _) = warm.take(2);
        warm.retire(1);
        warm.put(1, g1, ValidationContext::new());
        warm.put(2, g2, ValidationContext::new());
        assert!(!warm.contains(1), "retired function dropped");
        assert!(warm.contains(2), "unrelated function unaffected");
    }
}
