//! The batch front end: one corpus in, one classified row per function
//! out.
//!
//! [`run_module`] is a thin wrapper over the [`crate::scheduler`] core: it
//! loads the persistent stores (obligation cache, write-ahead verdict
//! journal) in the fixed storage order crash-safety depends on, starts a
//! [`Scheduler`], submits every not-yet-decided function, awaits every
//! verdict, drains, and assembles the [`CorpusSummary`]. All supervision —
//! panic isolation, watchdog deadlines, abandon-and-replace, the
//! escalating-budget retry ladder, warm starts, incremental store flushes
//! — lives in the scheduler and is shared with the long-lived
//! `keq-server` front end.
//!
//! The guarantees (one row per function, no matter how an individual
//! validation misbehaves) are documented on [`crate`]; results are
//! deterministic in content: rows are ordered by function index and,
//! faults and deadlines aside, classification does not depend on worker
//! count or scheduling.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use keq_core::KeqOptions;
use keq_isel::{GvnOptions, IselOptions, PassId, RaOptions, VcOptions};
use keq_llvm::ast::Module;
use keq_smt::fault::FaultPlan;
use keq_smt::obcache::{StdStoreIo, StoreIo};
use keq_smt::{Budget, FaultyIo, SharedObligationCache};

use crate::journal::{self, JournalRecord};
use crate::panic_capture;
use crate::result::{AttemptRecord, CorpusResult, CorpusRow, CorpusSummary, ResumeSummary};
use crate::scheduler::{
    ClientQuota, JournalConfig, MetricsConfig, Request, Scheduler, SchedulerConfig,
};

/// Escalating-budget retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per function (1 = never retry).
    pub max_attempts: u32,
    /// Budget multiplier between consecutive attempts: attempt `k`
    /// (1-based) runs with all resource budgets scaled by
    /// `factor^(k-1)`.
    pub factor: u64,
    /// Whether crash-class outcomes (caught panics) are re-queued like
    /// budget-class ones. A function still crashing on its final attempt is
    /// classified [`CorpusResult::Quarantined`] rather than `Crashed`: the
    /// crash survived retries, so it is reproducible, not transient.
    pub retry_crashes: bool,
    /// Base delay of the decorrelated-jitter backoff inserted before retry
    /// attempts ([`Duration::ZERO`] disables backoff — the default, and
    /// what deterministic tests want). Retries after transient faults
    /// otherwise stampede the same contended resource in lockstep.
    pub backoff_base: Duration,
    /// Upper clamp on the backoff ([`Duration::ZERO`] means `64 × base`).
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            factor: 4,
            retry_crashes: false,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// The budget multiplier of a 1-based attempt number.
    pub fn scale(&self, attempt: u32) -> u64 {
        self.factor.saturating_pow(attempt.saturating_sub(1))
    }

    /// The decorrelated-jitter delay slept before a 1-based retry attempt
    /// (AWS-style: each step draws uniformly from `[base, 3 × previous)`,
    /// clamped to the cap). Deterministic in `(seed, func, attempt)` —
    /// the "randomness" is [`keq_smt::mix64`] — so a replayed run sleeps
    /// identically. Zero for first attempts and when backoff is disabled.
    pub fn backoff_for(&self, seed: u64, func: u64, attempt: u32) -> Duration {
        if attempt <= 1 || self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let base = u64::try_from(self.backoff_base.as_nanos()).unwrap_or(u64::MAX);
        let cap = if self.backoff_cap.is_zero() {
            base.saturating_mul(64)
        } else {
            u64::try_from(self.backoff_cap.as_nanos()).unwrap_or(u64::MAX)
        };
        let mut prev = base.min(cap);
        for k in 2..=attempt {
            let r = keq_smt::mix64(
                seed ^ func.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (u64::from(k) << 32),
            );
            let hi = prev.saturating_mul(3).max(base.saturating_add(1));
            prev = base.saturating_add(r % (hi - base)).min(cap);
        }
        Duration::from_nanos(prev)
    }

    /// The checker options of a 1-based attempt: every resource budget
    /// (step fuel, conflict, term, and wall-clock limits) multiplied by
    /// [`RetryPolicy::scale`].
    pub fn options_for_attempt(&self, base: KeqOptions, attempt: u32) -> KeqOptions {
        let scale = self.scale(attempt);
        let scale32 = u32::try_from(scale).unwrap_or(u32::MAX);
        KeqOptions {
            max_steps: base.max_steps.saturating_mul(scale),
            time_limit: base.time_limit.map(|d| d.saturating_mul(scale32)),
            solver_budget: Budget {
                max_conflicts: base.solver_budget.max_conflicts.saturating_mul(scale),
                max_terms: base
                    .solver_budget
                    .max_terms
                    .saturating_mul(usize::try_from(scale).unwrap_or(usize::MAX)),
                max_time: base.solver_budget.max_time.map(|d| d.saturating_mul(scale32)),
            },
            ..base
        }
    }
}

/// Configuration of a supervised corpus run.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Base checker options of attempt 1 (later attempts scale them by
    /// [`RetryPolicy`]).
    pub keq: KeqOptions,
    /// Instruction-selection options.
    pub isel: IselOptions,
    /// VC-generation options.
    pub vc: VcOptions,
    /// Register-allocation options (used by [`PassId::Regalloc`] units).
    pub ra: RaOptions,
    /// GVN options (used by [`PassId::Gvn`] units).
    pub gvn: GvnOptions,
    /// Which validated passes to run. Every function is validated under
    /// every listed pass — the corpus fans out to `functions × passes`
    /// units, each classified into its own [`CorpusRow`]. Empty is treated
    /// as the classic single-pass ISel run.
    pub passes: Vec<PassId>,
    /// Worker threads; 0 picks the available parallelism.
    pub workers: usize,
    /// Hard per-attempt wall-clock deadline, enforced by cancellation
    /// (`None` disables the watchdog's deadline duty).
    pub deadline: Option<Duration>,
    /// How long past a cancellation a worker may keep running before the
    /// watchdog abandons it.
    pub grace: Duration,
    /// Watchdog sweep interval.
    pub watchdog_tick: Duration,
    /// Retry policy for budget-class failures.
    pub retry: RetryPolicy,
    /// Deterministic fault plan (use [`FaultPlan::quiet`] for none).
    pub fault_plan: FaultPlan,
    /// Carry a validation context (term bank + solver query cache)
    /// across retries of the same function, so an escalated-budget attempt
    /// warm-starts from the sub-obligations its predecessors already
    /// closed. Budgeted outcomes are never cached, so a starved attempt
    /// cannot poison a richer one; a panicking attempt discards its
    /// context entirely.
    pub warm_start: bool,
    /// Shared trace sink, installed on the supervisor thread and on every
    /// worker so one journal collects a coherent, epoch-aligned event
    /// stream (`None` disables tracing: probe sites cost one flag read).
    pub trace: Option<keq_trace::TraceSink>,
    /// On-disk obligation store for persistent warm starts: loaded into
    /// the run's [`SharedObligationCache`] before the first attempt and
    /// written back (append-only for a store of the current semantics
    /// revision) incrementally during the run and once more at the end.
    /// `None` keeps the cache purely in-memory — it is still shared across
    /// workers within the run.
    pub cache_path: Option<std::path::PathBuf>,
    /// Write-ahead verdict journal: every finalized `(function, verdict)`
    /// is appended (checksummed) as it is decided, so a killed run loses at
    /// most the in-flight functions. `None` disables journaling.
    pub journal_path: Option<std::path::PathBuf>,
    /// Recover finalized verdicts from `journal_path` before scheduling:
    /// functions already decided by a previous (killed) run are skipped and
    /// their journal rows merged into the summary as recovered rows.
    pub resume: bool,
    /// Flush the obligation store to `cache_path` every this many function
    /// finalizations (`0` = only the final shutdown flush). Incremental
    /// flushes are what make a kill lose batches, not the whole store.
    pub store_flush_every: u32,
    /// Circuit breaker: after this many *consecutive* storage-write
    /// failures (store flushes, journal appends — each breaker is
    /// per-target) the target degrades to memory-only for the rest of the
    /// run, with a `StoreDegraded` trace event, instead of hammering a sick
    /// disk once per finalization.
    pub store_breaker_threshold: u32,
    /// Live-telemetry configuration: the metrics registry, time-series
    /// collector, and slow-obligation profiler (disabled by default —
    /// probe sites then cost one thread-local flag read).
    pub metrics: MetricsConfig,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            keq: KeqOptions::default(),
            isel: IselOptions::default(),
            vc: VcOptions::default(),
            ra: RaOptions::default(),
            gvn: GvnOptions::default(),
            passes: vec![PassId::Isel],
            workers: 0,
            deadline: None,
            grace: Duration::from_millis(500),
            watchdog_tick: Duration::from_millis(10),
            retry: RetryPolicy::default(),
            fault_plan: FaultPlan::quiet(0),
            warm_start: true,
            trace: None,
            cache_path: None,
            journal_path: None,
            resume: false,
            store_flush_every: 8,
            store_breaker_threshold: 3,
            metrics: MetricsConfig::default(),
        }
    }
}

/// Validates every function of `module` under the harness — once per
/// configured pass — returning one classified row per (function, pass)
/// unit, ordered by function index and then pass order. See the crate
/// docs for the guarantees.
pub fn run_module(module: &Module, opts: &HarnessOptions) -> CorpusSummary {
    panic_capture::install_hook();
    // The caller's thread traces too: resume-skip decisions and the
    // journal open happen here, not on a scheduler thread.
    let _trace_guard = opts.trace.as_ref().map(keq_trace::install);
    let n = module.functions.len();
    let passes: Vec<PassId> =
        if opts.passes.is_empty() { vec![PassId::Isel] } else { opts.passes.clone() };
    let np = passes.len();
    // Total scheduled units: each function under each pass.
    let units = n * np;
    if n == 0 {
        return CorpusSummary::default();
    }
    let module = Arc::new(module.clone());

    // Every byte that reaches disk — store flushes, journal appends,
    // journal/store loads — goes through one injectable backend, so a
    // storage fault plan exercises the same code paths a sick disk would.
    let io: Arc<dyn StoreIo> = if opts.fault_plan.has_storage_faults() {
        Arc::new(FaultyIo::new(opts.fault_plan.storage()))
    } else {
        Arc::new(StdStoreIo)
    };

    // One obligation cache for the whole run, shared by every worker (and
    // every replacement worker), warm-started from the on-disk store when
    // one is configured. A corrupt or stale store degrades to a cold
    // cache, never to a failed run.
    let shared = Arc::new(SharedObligationCache::new());
    let mut disk_loaded = 0u64;
    let mut disk_rejected = 0u64;
    if let Some(path) = &opts.cache_path {
        let load = shared.load_with(path, io.as_ref());
        disk_loaded = load.loaded;
        disk_rejected = load.rejected;
    }

    // Write-ahead journal: recover what a killed predecessor decided, then
    // hand the surviving prefix to the scheduler, which opens the writer
    // (still on this thread — the header write stays ordered after the
    // loads above and before any worker storage I/O). Resume matches a
    // record by function index *and* per-function fingerprint (and the
    // whole journal by corpus fingerprint), so a changed corpus can never
    // inherit stale verdicts.
    let func_fps: Vec<u64> =
        module.functions.iter().map(journal::function_fingerprint).collect();
    let corpus_fp = journal::fingerprint_of(&func_fps);
    let mut resume = ResumeSummary::default();
    let mut recovered: Vec<Option<JournalRecord>> = vec![None; units];
    let mut journal_cfg: Option<JournalConfig> = None;
    if let Some(journal_path) = &opts.journal_path {
        let mut valid_prefix: Option<Vec<u8>> = None;
        if opts.resume {
            resume.enabled = true;
            let load = journal::load(journal_path, corpus_fp, io.as_ref());
            if !load.reset {
                resume.corrupt = load.corrupt;
                resume.recovered = load.records.len() as u64;
                for rec in load.records {
                    let idx = rec.func as usize;
                    // A record only matches a unit of this run if this run
                    // validates that pass too (a changed pass set, like a
                    // changed corpus, re-validates rather than inheriting).
                    let Some(pi) = passes.iter().position(|&p| p == rec.pass) else {
                        continue;
                    };
                    if idx < n && func_fps[idx] == rec.func_fp {
                        recovered[idx * np + pi] = Some(rec);
                    }
                }
                valid_prefix = Some(load.valid_prefix);
            }
        }
        journal_cfg =
            Some(JournalConfig { path: journal_path.clone(), corpus_fp, valid_prefix });
    }

    let workers = if opts.workers == 0 {
        std::thread::available_parallelism().map_or(4, usize::from).min(units).max(1)
    } else {
        opts.workers
    };

    let sched = Scheduler::start(SchedulerConfig {
        keq: opts.keq,
        isel: opts.isel,
        vc: opts.vc,
        ra: opts.ra,
        gvn: opts.gvn,
        workers,
        deadline: opts.deadline,
        grace: opts.grace,
        watchdog_tick: opts.watchdog_tick,
        retry: opts.retry,
        fault_plan: opts.fault_plan,
        warm_start: opts.warm_start,
        trace: opts.trace.clone(),
        // The batch front end is its own only client: no backpressure, no
        // quota — it submits the whole corpus at once and awaits all.
        queue_depth: 0,
        quota: ClientQuota::default(),
        request_events: false,
        shared: Arc::clone(&shared),
        io,
        cache_path: opts.cache_path.clone(),
        disk_loaded,
        disk_rejected,
        store_flush_every: opts.store_flush_every,
        store_breaker_threshold: opts.store_breaker_threshold,
        journal: journal_cfg,
        metrics: opts.metrics,
    });

    // Pre-finalize recovered units — they are never submitted.
    let mut finals: Vec<Option<CorpusResult>> = vec![None; units];
    let mut attempts: Vec<Vec<AttemptRecord>> = vec![Vec::new(); units];
    for (unit, rec) in recovered.iter().enumerate() {
        if let Some(rec) = rec {
            finals[unit] = Some(rec.result.clone());
            resume.skipped += 1;
            keq_trace::emit(keq_trace::Event::ResumeSkipped { func: rec.func });
        }
    }

    // Submit corpus, await all, drain: the whole batch protocol. Unit
    // numbering is `func * passes + pass_position`, and the unit index is
    // the fault-plan unit, the trace id, and the completion tag alike.
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut pending = 0usize;
    for (func, &func_fp) in func_fps.iter().enumerate() {
        for (pi, &pass) in passes.iter().enumerate() {
            let unit = func * np + pi;
            if recovered[unit].is_some() {
                continue;
            }
            sched
                .submit(
                    Request {
                        module: Arc::clone(&module),
                        func,
                        pass,
                        func_fp,
                        unit: unit as u64,
                        trace_id: unit as u32,
                        client: 0,
                        tag: unit as u64,
                        deadline: None,
                        max_attempts: None,
                    },
                    reply_tx.clone(),
                )
                .expect("batch scheduler is unbounded and never rejects");
            pending += 1;
        }
    }
    for _ in 0..pending {
        let done = reply_rx.recv().expect("scheduler delivers every verdict");
        let unit = done.tag as usize;
        attempts[unit] = done.attempts;
        finals[unit] = Some(done.result);
    }
    let fin = sched.drain();

    let mut summary = CorpusSummary {
        solver: fin.solver,
        cache: fin.cache,
        resume,
        telemetry: fin.telemetry,
        ..CorpusSummary::default()
    };
    for (index, f) in module.functions.iter().enumerate() {
        let size: usize = f.blocks.iter().map(|b| b.instrs.len() + 1).sum();
        for (pi, &pass) in passes.iter().enumerate() {
            let unit = index * np + pi;
            let rows_attempts = std::mem::take(&mut attempts[unit]);
            let (time, is_recovered) = match &recovered[unit] {
                // A recovered row carries the killed run's journal-recorded
                // wall time; its per-attempt observations died with the
                // killed process, so `attempts` stays empty.
                Some(rec) => (rec.time(), true),
                None => (rows_attempts.iter().map(|a| a.time).sum(), false),
            };
            summary.rows.push(CorpusRow {
                name: f.name.clone(),
                index,
                pass,
                size,
                time,
                result: finals[unit].take().expect("every unit finalized"),
                recovered: is_recovered,
                attempts: rows_attempts,
            });
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_for(1, 0, 1), Duration::ZERO, "first attempts never wait");
        for attempt in 2..=5 {
            for func in 0..8 {
                let d = policy.backoff_for(1, func, attempt);
                assert_eq!(d, policy.backoff_for(1, func, attempt), "replays sleep identically");
                assert!(d >= Duration::from_millis(10) && d <= Duration::from_millis(80), "{d:?}");
            }
        }
        // Decorrelated: different functions do not stampede in lockstep.
        assert!(
            (1..16).any(|func| policy.backoff_for(1, func, 3) != policy.backoff_for(1, 0, 3)),
            "jitter must separate concurrent retries"
        );
        // Disabled (the default) and zero-cap configurations stay sane.
        assert_eq!(RetryPolicy::default().backoff_for(1, 0, 4), Duration::ZERO);
        let uncapped = RetryPolicy {
            backoff_base: Duration::from_millis(10),
            ..RetryPolicy::default()
        };
        assert!(uncapped.backoff_for(9, 2, 4) <= Duration::from_millis(640), "64x base clamp");
    }
}
