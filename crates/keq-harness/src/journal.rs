//! Write-ahead verdict journal: crash-safe corpus runs.
//!
//! A killed corpus run used to lose every completed verdict. The journal
//! makes finalized verdicts durable as they happen: the supervisor appends
//! one checksummed record per finalized function (write-ahead with respect
//! to the summary, not to the validation itself — a record exists only for
//! *decided* functions), and a restarted run with `resume: true` recovers
//! those records, skips the decided functions, and merges their rows into
//! the summary as if the run had never died.
//!
//! # On-disk format (hermetic, hand-rolled — the `obcache` idiom)
//!
//! ```text
//! header:  magic "KEQWAL01" (8 bytes)
//!          journal format version  u32 LE
//!          corpus fingerprint      u64 LE
//! record:  payload length          u32 LE
//!          function index          u32 LE
//!          function fingerprint    u64 LE
//!          attempts                u32 LE
//!          wall time               u64 LE (µs)
//!          pass id                 u8 ([`PassId::code`])
//!          result tag              u8
//!          message length          u32 LE + bytes   (crash-class tags)
//!          location flag           u8
//!          location length         u32 LE + bytes   (when flag = 1)
//!          FNV-1a-32 checksum of the payload  u32 LE
//! ```
//!
//! Loading is fail-soft and record-by-record, exactly like the obligation
//! store: a header mismatch (foreign file, stale version, *different
//! corpus*) discards the whole journal; a record with a bad checksum or
//! malformed payload is skipped and counted; a torn tail (the record a
//! kill interrupted) ends the scan, keeping everything before it. Nothing
//! panics — a corrupted journal only means some functions are re-validated.
//!
//! A resumed writer first rewrites the journal to its valid prefix
//! (dropping the torn tail) so appended records always follow well-formed
//! framing. Appends are one `write` call per record: a mid-append kill
//! tears at most the final record.
//!
//! # Fsync policy
//!
//! Appends are buffered (`flush`, no fsync). Replay is idempotent — a tail
//! record lost to a power failure is simply re-validated by the next
//! resume — so per-record fsync latency buys nothing but wall time.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use keq_isel::PassId;
use keq_llvm::ast::{Function, Module};
use keq_smt::obcache::StoreIo;
use keq_smt::wire::{self, fnv1a64};

use crate::result::CorpusResult;

/// Journal file magic.
pub const JOURNAL_MAGIC: &[u8; 8] = b"KEQWAL01";
/// On-disk journal format version. Version 2 added the pass byte — which
/// [`PassId`] the verdict belongs to — so one journal can interleave
/// verdicts of several validated passes over the same corpus. A v1 journal
/// fails the header check and is discarded wholesale (its functions are
/// simply re-validated), matching the usual stale-version policy.
pub const JOURNAL_VERSION: u32 = 2;

const HEADER_LEN: usize = wire::HEADER_LEN;
/// Panic messages/locations are clamped to this many bytes when encoding.
const MAX_STR_LEN: usize = 4 << 10;
/// Upper bound accepted for one record payload when reading.
const MAX_PAYLOAD_LEN: u32 = 16 << 10;

/// The identity of one function for resume matching: FNV-1a-64 over its
/// printed IR. Resume accepts a journal record only when both the function
/// index *and* this fingerprint match, so a reordered or regenerated
/// corpus can never inherit a stale verdict.
pub fn function_fingerprint(func: &Function) -> u64 {
    fnv1a64(func.to_string().as_bytes())
}

/// The identity of a whole corpus: the fold of its function fingerprints
/// (order-sensitive). A journal whose header names a different corpus is
/// discarded wholesale at load.
pub fn corpus_fingerprint(module: &Module) -> u64 {
    fingerprint_of(&module.functions.iter().map(function_fingerprint).collect::<Vec<_>>())
}

/// [`corpus_fingerprint`] from precomputed per-function fingerprints.
pub fn fingerprint_of(func_fps: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(func_fps.len() * 8);
    for fp in func_fps {
        bytes.extend_from_slice(&fp.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// One journaled verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Function index in the corpus.
    pub func: u32,
    /// [`function_fingerprint`] of the function.
    pub func_fp: u64,
    /// Attempts the function took before finalizing.
    pub attempts: u32,
    /// Total validation wall time across those attempts, µs.
    pub time_us: u64,
    /// Which pass the verdict validates.
    pub pass: PassId,
    /// The final verdict.
    pub result: CorpusResult,
}

fn result_tag(result: &CorpusResult) -> u8 {
    match result {
        CorpusResult::Succeeded => 0,
        CorpusResult::Timeout => 1,
        CorpusResult::OutOfMemory => 2,
        CorpusResult::Crashed { .. } => 3,
        CorpusResult::Other => 4,
        CorpusResult::Quarantined { .. } => 5,
    }
}

fn clamp_str(s: &str) -> &str {
    if s.len() <= MAX_STR_LEN {
        return s;
    }
    let mut end = MAX_STR_LEN;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

impl JournalRecord {
    /// The journaled wall time as a [`Duration`].
    pub fn time(&self) -> Duration {
        Duration::from_micros(self.time_us)
    }

    fn encode_payload(&self) -> Vec<u8> {
        let (message, location) = match &self.result {
            CorpusResult::Crashed { message, location }
            | CorpusResult::Quarantined { message, location } => {
                (clamp_str(message), location.as_deref().map(clamp_str))
            }
            _ => ("", None),
        };
        let mut p = Vec::with_capacity(30 + message.len() + location.map_or(0, str::len));
        p.extend_from_slice(&self.func.to_le_bytes());
        p.extend_from_slice(&self.func_fp.to_le_bytes());
        p.extend_from_slice(&self.attempts.to_le_bytes());
        p.extend_from_slice(&self.time_us.to_le_bytes());
        p.push(self.pass.code());
        p.push(result_tag(&self.result));
        p.extend_from_slice(&(message.len() as u32).to_le_bytes());
        p.extend_from_slice(message.as_bytes());
        match location {
            Some(loc) => {
                p.push(1);
                p.extend_from_slice(&(loc.len() as u32).to_le_bytes());
                p.extend_from_slice(loc.as_bytes());
            }
            None => p.push(0),
        }
        p
    }

    /// One framed record: length, payload, checksum.
    fn encode(&self) -> Vec<u8> {
        wire::frame_record(&self.encode_payload())
    }

    fn decode_payload(p: &[u8]) -> Option<JournalRecord> {
        // Fixed head: func(4) fp(8) attempts(4) time(8) pass(1) tag(1)
        // msg_len(4).
        if p.len() < 30 {
            return None;
        }
        let func = u32::from_le_bytes(p[0..4].try_into().ok()?);
        let func_fp = u64::from_le_bytes(p[4..12].try_into().ok()?);
        let attempts = u32::from_le_bytes(p[12..16].try_into().ok()?);
        let time_us = u64::from_le_bytes(p[16..24].try_into().ok()?);
        let pass = PassId::from_code(p[24])?;
        let tag = p[25];
        let msg_len = u32::from_le_bytes(p[26..30].try_into().ok()?) as usize;
        let mut at = 30;
        let message = String::from_utf8_lossy(p.get(at..at + msg_len)?).into_owned();
        at += msg_len;
        let location = match *p.get(at)? {
            0 => {
                at += 1;
                None
            }
            1 => {
                at += 1;
                let loc_len = u32::from_le_bytes(p.get(at..at + 4)?.try_into().ok()?) as usize;
                at += 4;
                let loc = String::from_utf8_lossy(p.get(at..at + loc_len)?).into_owned();
                at += loc_len;
                Some(loc)
            }
            _ => return None,
        };
        if at != p.len() {
            return None;
        }
        let result = match tag {
            0 => CorpusResult::Succeeded,
            1 => CorpusResult::Timeout,
            2 => CorpusResult::OutOfMemory,
            3 => CorpusResult::Crashed { message, location },
            4 => CorpusResult::Other,
            5 => CorpusResult::Quarantined { message, location },
            _ => return None,
        };
        Some(JournalRecord { func, func_fp, attempts, time_us, pass, result })
    }
}

/// What [`load`] recovered.
#[derive(Debug, Clone, Default)]
pub struct JournalLoad {
    /// Well-formed records, in append order.
    pub records: Vec<JournalRecord>,
    /// Corrupt records skipped fail-soft (bad checksum, malformed payload,
    /// torn tail).
    pub corrupt: u64,
    /// The whole journal was discarded: missing file, foreign magic, stale
    /// version, or a different corpus fingerprint. The writer starts from a
    /// fresh header.
    pub reset: bool,
    /// The journal bytes up to where the scan stopped cleanly (header plus
    /// every structurally-framed record). A resumed writer rewrites the
    /// file to exactly this prefix before appending, so a torn tail can
    /// never swallow records appended after it.
    pub valid_prefix: Vec<u8>,
}

/// Loads a journal. Fail-soft: any corruption is tolerated record-by-record
/// and an unusable journal simply recovers nothing (see the module docs).
pub fn load(path: &Path, corpus_fp: u64, io: &dyn StoreIo) -> JournalLoad {
    let mut out = JournalLoad::default();
    let buf = match io.read(path) {
        Ok(buf) => buf,
        Err(_) => {
            out.reset = true;
            return out;
        }
    };
    if wire::decode_header(&buf, JOURNAL_MAGIC, JOURNAL_VERSION) != Some(corpus_fp) {
        out.reset = true;
        return out;
    }
    let mut valid_end = HEADER_LEN;
    let mut scan = wire::RecordScanner::new(&buf, MAX_PAYLOAD_LEN);
    for rec in scan.by_ref() {
        // The framing was intact, so appends after this record are safe
        // even when the record itself is rejected.
        valid_end = rec.end;
        if !rec.crc_ok {
            out.corrupt += 1;
            continue;
        }
        match JournalRecord::decode_payload(rec.payload) {
            Some(rec) => out.records.push(rec),
            None => out.corrupt += 1,
        }
    }
    if scan.torn() {
        // Torn tail (or a corrupted length that frames past the end): the
        // scan cannot resynchronize, so it stopped there.
        out.corrupt += 1;
    }
    out.valid_prefix = buf[..valid_end].to_vec();
    out
}

/// The append half of the journal, with its own circuit breaker: after
/// `threshold` consecutive append failures the writer degrades to a no-op
/// (the run continues memory-only; only crash-recovery coverage is lost).
/// Every failure emits a [`keq_trace::Event::StoreError`]; tripping emits
/// [`keq_trace::Event::StoreDegraded`].
#[derive(Debug)]
pub struct JournalWriter {
    path: std::path::PathBuf,
    io: Arc<dyn StoreIo>,
    threshold: u32,
    consecutive: u32,
    /// Whether the breaker has tripped.
    pub degraded: bool,
    /// Records successfully appended by this writer.
    pub appended: u64,
    /// Failed journal writes (header or record).
    pub failures: u64,
}

impl JournalWriter {
    /// Opens the journal for appending. With a `valid_prefix` from a
    /// resumed [`load`], the file is first rewritten to that prefix
    /// (dropping any torn tail); otherwise a fresh header is written,
    /// truncating whatever was there. A failed open degrades the writer
    /// immediately — appending after an unknown tail would corrupt the
    /// journal it is supposed to protect.
    pub fn start(
        path: &Path,
        corpus_fp: u64,
        valid_prefix: Option<&[u8]>,
        io: Arc<dyn StoreIo>,
        threshold: u32,
    ) -> JournalWriter {
        let mut writer = JournalWriter {
            path: path.to_path_buf(),
            io,
            threshold: threshold.max(1),
            consecutive: 0,
            degraded: false,
            appended: 0,
            failures: 0,
        };
        let opening = match valid_prefix {
            Some(prefix) => writer.io.write(path, prefix, false),
            None => {
                let header = wire::encode_header(JOURNAL_MAGIC, JOURNAL_VERSION, corpus_fp);
                writer.io.write(path, &header, false)
            }
        };
        if let Err(err) = opening {
            writer.failures += 1;
            writer.degraded = true;
            keq_trace::metrics::counter_add(keq_trace::CounterId::JournalAppendFailures, 1);
            if keq_trace::enabled() {
                keq_trace::emit(keq_trace::Event::StoreError {
                    target: "journal",
                    op: "open",
                    detail: err.to_string(),
                });
            }
            keq_trace::emit(keq_trace::Event::StoreDegraded { target: "journal", failures: 1 });
            keq_trace::flush_sink();
        }
        writer
    }

    /// Appends one finalized verdict (one `write` call, so a kill tears at
    /// most this record). Failures count toward the breaker; a degraded
    /// writer is a no-op.
    pub fn append(&mut self, record: &JournalRecord) {
        if self.degraded {
            return;
        }
        match self.io.write(&self.path, &record.encode(), true) {
            Ok(()) => {
                self.consecutive = 0;
                self.appended += 1;
                keq_trace::metrics::counter_add(keq_trace::CounterId::JournalAppends, 1);
            }
            Err(err) => {
                self.failures += 1;
                self.consecutive += 1;
                keq_trace::metrics::counter_add(keq_trace::CounterId::JournalAppendFailures, 1);
                if keq_trace::enabled() {
                    keq_trace::emit(keq_trace::Event::StoreError {
                        target: "journal",
                        op: "append",
                        detail: err.to_string(),
                    });
                }
                if self.consecutive >= self.threshold {
                    self.degraded = true;
                    keq_trace::emit(keq_trace::Event::StoreDegraded {
                        target: "journal",
                        failures: self.consecutive,
                    });
                    // Losing the journal is exactly when buffered trace
                    // lines must reach disk: flush the sink now.
                    keq_trace::flush_sink();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keq_smt::obcache::StdStoreIo;
    use keq_smt::{FaultyIo, Rate, StoragePlan};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("keq-journal-test-{tag}-{}", std::process::id()));
        p
    }

    fn rec(func: u32, result: CorpusResult) -> JournalRecord {
        JournalRecord {
            func,
            func_fp: 0x1000 + u64::from(func),
            attempts: 1,
            time_us: 42,
            pass: PassId::Isel,
            result,
        }
    }

    fn write_all(path: &Path, corpus_fp: u64, records: &[JournalRecord]) {
        let mut w = JournalWriter::start(path, corpus_fp, None, Arc::new(StdStoreIo), 3);
        for r in records {
            w.append(r);
        }
        assert!(!w.degraded);
        assert_eq!(w.appended, records.len() as u64);
    }

    #[test]
    fn round_trips_every_result_shape() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let records = vec![
            rec(0, CorpusResult::Succeeded),
            rec(1, CorpusResult::Timeout),
            rec(2, CorpusResult::OutOfMemory),
            rec(
                3,
                CorpusResult::Crashed {
                    message: "boom \"quoted\"\nπ line".into(),
                    location: Some("crates/x/src/lib.rs:7:3".into()),
                },
            ),
            rec(4, CorpusResult::Other),
            rec(5, CorpusResult::Quarantined { message: "still boom".into(), location: None }),
        ];
        write_all(&path, 77, &records);
        let load = load(&path, 77, &StdStoreIo);
        assert!(!load.reset);
        assert_eq!(load.corrupt, 0);
        assert_eq!(load.records, records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_corpus_fingerprint_resets_wholesale() {
        let path = temp_path("foreign");
        let _ = std::fs::remove_file(&path);
        write_all(&path, 77, &[rec(0, CorpusResult::Succeeded)]);
        let other = load(&path, 78, &StdStoreIo);
        assert!(other.reset, "{other:?}");
        assert!(other.records.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_keeps_earlier_records_and_valid_prefix_drops_it() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let records =
            vec![rec(0, CorpusResult::Succeeded), rec(1, CorpusResult::Timeout)];
        write_all(&path, 9, &records);
        let whole = std::fs::read(&path).expect("read back");
        // Kill mid-append: tear the final record.
        std::fs::write(&path, &whole[..whole.len() - 5]).expect("tear");
        let torn = load(&path, 9, &StdStoreIo);
        assert_eq!(torn.records, records[..1]);
        assert_eq!(torn.corrupt, 1);
        assert!(torn.valid_prefix.len() < whole.len() - 5, "prefix excludes the torn bytes");

        // Resume: rewrite to the valid prefix, then append; everything
        // re-loads cleanly.
        let mut w =
            JournalWriter::start(&path, 9, Some(&torn.valid_prefix), Arc::new(StdStoreIo), 3);
        w.append(&rec(1, CorpusResult::Timeout));
        let healed = load(&path, 9, &StdStoreIo);
        assert_eq!(healed.records, records);
        assert_eq!(healed.corrupt, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checksum_flip_skips_one_record_and_keeps_appending_safe() {
        let path = temp_path("crc");
        let _ = std::fs::remove_file(&path);
        let records = vec![
            rec(0, CorpusResult::Succeeded),
            rec(1, CorpusResult::Succeeded),
            rec(2, CorpusResult::Succeeded),
        ];
        write_all(&path, 5, &records);
        let mut bytes = std::fs::read(&path).expect("read back");
        // Flip a bit inside the first record's payload.
        bytes[HEADER_LEN + 6] ^= 0x10;
        std::fs::write(&path, &bytes).expect("corrupt");
        let out = load(&path, 5, &StdStoreIo);
        assert_eq!(out.corrupt, 1, "{out:?}");
        assert_eq!(out.records, records[1..], "later records survive");
        assert_eq!(out.valid_prefix.len(), bytes.len(), "framing-intact prefix keeps them");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writer_breaker_trips_after_consecutive_failures() {
        let path = temp_path("breaker");
        let _ = std::fs::remove_file(&path);
        // Header write succeeds (first op), every following write fails.
        let io = Arc::new(FaultyIo::new(StoragePlan {
            seed: 3,
            short_read: Rate::ZERO,
            torn_write: Rate::ZERO,
            enospc: Rate { num: 1, den: 1 },
        }));
        let w = JournalWriter::start(&path, 1, None, io.clone(), 2);
        assert!(w.degraded, "header write already fails under always-ENOSPC");

        // Now a writer whose header lands but appends fail.
        let mut w = JournalWriter::start(&path, 1, None, Arc::new(StdStoreIo), 2);
        assert!(!w.degraded);
        w.io = io;
        w.append(&rec(0, CorpusResult::Succeeded));
        assert!(!w.degraded, "one failure under threshold 2");
        w.append(&rec(1, CorpusResult::Succeeded));
        assert!(w.degraded, "second consecutive failure trips the breaker");
        assert_eq!(w.failures, 2);
        w.append(&rec(2, CorpusResult::Succeeded));
        assert_eq!(w.failures, 2, "degraded writer is a no-op");
        let _ = std::fs::remove_file(&path);
    }

    /// Byte-compat fixture: a journal laid out entirely by hand in the
    /// exact pre-`wire` format. Loading must recover it unchanged, and a
    /// fresh writer given the same record must reproduce the same bytes.
    #[test]
    fn hand_built_journal_fixture_round_trips_byte_compatibly() {
        let path = temp_path("fixture");
        let _ = std::fs::remove_file(&path);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(JOURNAL_MAGIC);
        bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&11u64.to_le_bytes());
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u32.to_le_bytes()); // func
        payload.extend_from_slice(&0x1003u64.to_le_bytes()); // func_fp
        payload.extend_from_slice(&1u32.to_le_bytes()); // attempts
        payload.extend_from_slice(&42u64.to_le_bytes()); // time_us
        payload.push(0); // pass: isel
        payload.push(0); // Succeeded
        payload.extend_from_slice(&0u32.to_le_bytes()); // empty message
        payload.push(0); // no location
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&keq_smt::wire::fnv1a32(&payload).to_le_bytes());
        std::fs::write(&path, &bytes).expect("write fixture");

        let out = load(&path, 11, &StdStoreIo);
        assert!(!out.reset);
        assert_eq!(out.corrupt, 0);
        assert_eq!(out.records, vec![rec(3, CorpusResult::Succeeded)]);
        assert_eq!(out.valid_prefix, bytes);

        // A fresh writer emitting the same record reproduces the fixture.
        let rewrite = temp_path("fixture-rewrite");
        let _ = std::fs::remove_file(&rewrite);
        write_all(&rewrite, 11, &[rec(3, CorpusResult::Succeeded)]);
        assert_eq!(std::fs::read(&rewrite).expect("read back"), bytes);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rewrite);
    }

    #[test]
    fn fingerprints_are_stable_and_corpus_sensitive() {
        assert_eq!(fingerprint_of(&[1, 2, 3]), fingerprint_of(&[1, 2, 3]));
        assert_ne!(fingerprint_of(&[1, 2, 3]), fingerprint_of(&[3, 2, 1]), "order-sensitive");
        assert_ne!(fingerprint_of(&[1, 2]), fingerprint_of(&[1, 2, 3]));
    }

    #[test]
    fn oversized_panic_message_is_clamped_not_rejected() {
        let path = temp_path("clamp");
        let _ = std::fs::remove_file(&path);
        let big = "x".repeat(3 * MAX_STR_LEN);
        let r = rec(0, CorpusResult::Crashed { message: big, location: None });
        write_all(&path, 4, &[r]);
        let out = load(&path, 4, &StdStoreIo);
        assert_eq!(out.corrupt, 0);
        match &out.records[0].result {
            CorpusResult::Crashed { message, .. } => assert_eq!(message.len(), MAX_STR_LEN),
            other => panic!("wrong result: {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
