//! The `keq-server` front end: a long-lived validation daemon over one
//! resident [`Scheduler`].
//!
//! A batch run pays the warm-up cost — loading the obligation store,
//! opening the journal, spinning up workers — once per corpus. The server
//! pays it once per *process*: the shared obligation cache, warm-start
//! contexts, and write-ahead journal stay resident across requests, so a
//! stream of small validation requests (editor integration, CI shards,
//! fuzzing loops) amortizes them the way the paper's §5.1 campaign does
//! within one run.
//!
//! Transport is a plain std listener — TCP (`127.0.0.1:7411`) or, on Unix,
//! a Unix-domain socket (`unix:/path/to.sock`) — speaking the
//! length-framed JSON protocol of [`crate::protocol`]. One thread per
//! connection; each connection is one scheduler *client*, so
//! [`ClientQuota::max_inflight`] bounds what a single connection can have
//! in flight while [`SchedulerConfig::queue_depth`] bounds the whole
//! daemon (excess requests are *rejected* with a reason, never queued
//! without bound).
//!
//! Shutdown is graceful by construction: the `shutdown` op stops the
//! accept loop, every connection thread finishes the request it is
//! serving, and only then does [`Scheduler::drain`] run — so every
//! admitted submission gets its verdict (the watchdog still bounds wedged
//! ones) and the store flushes before [`Server::run`] returns.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use keq_llvm::parser::parse_module;
use keq_smt::obcache::{StdStoreIo, StoreIo};
use keq_smt::{FaultyIo, SharedObligationCache};

use crate::journal;
use crate::protocol::{
    read_frame, write_frame, ClientRequest, FunctionVerdict, MetricsReport, ServerResponse,
    StatsSnapshot,
};
use crate::run::HarnessOptions;
use crate::scheduler::{
    ClientQuota, Completion, JournalConfig, Request, Scheduler, SchedulerConfig, SchedulerFinal,
};

/// How often an idle connection read wakes up to check the shutdown flag.
const IDLE_TICK: Duration = Duration::from_millis(250);

/// Corpus-fingerprint namespace stamped into a server journal's header. A
/// server journal spans many unrelated requests, so there is no corpus to
/// fingerprint; the constant keeps batch journals and server journals from
/// resuming into each other.
const SERVER_JOURNAL_FP: u64 = 0x6b65_715f_7372_7631; // "keq_srv1"

/// Configuration of a [`Server`].
#[derive(Clone, Default)]
pub struct ServerOptions {
    /// The validation pipeline and supervision policies, shared verbatim
    /// with the batch front end — the same [`HarnessOptions`] validate the
    /// same corpus to the same verdicts on either side.
    pub harness: HarnessOptions,
    /// Maximum accepted-but-unfinalized submissions before the gate
    /// rejects with `queue_full` (0 = unbounded).
    pub queue_depth: usize,
    /// Per-connection admission quota.
    pub quota: ClientQuota,
}

/// What [`Server::run`] returns after a graceful drain.
pub struct ServerSummary {
    /// The scheduler's lifetime counters, cache summary, and latency
    /// distribution.
    pub fin: SchedulerFinal,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

/// How a connection thread pokes the accept loop awake after setting the
/// shutdown flag.
#[derive(Clone)]
enum WakeAddr {
    Tcp(std::net::SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

fn wake(addr: &WakeAddr) {
    match addr {
        WakeAddr::Tcp(a) => drop(TcpStream::connect(a)),
        #[cfg(unix)]
        WakeAddr::Unix(p) => drop(UnixStream::connect(p)),
    }
}

/// Shared state every connection thread works against.
struct ConnCtx {
    scheduler: Scheduler,
    shared: Arc<SharedObligationCache>,
    shutdown: AtomicBool,
    wake: WakeAddr,
    /// The telemetry collector's sampling interval, milliseconds (sizes
    /// the `metrics` op's rate window).
    sample_interval_ms: u64,
}

impl ConnCtx {
    fn stats(&self) -> StatsSnapshot {
        let adm = self.scheduler.admission();
        let depth = self.scheduler.depth() as u64;
        let cache = self.shared.stats();
        let (p50_us, p90_us, p99_us) = self.scheduler.telemetry().latency_quantiles_us();
        StatsSnapshot {
            requests: adm.requests,
            // Finalized = admitted minus still-inflight. `disconnects` is
            // supervisor-local and only merged at drain; it reads 0 live.
            completed: adm.requests.saturating_sub(depth),
            rejected_queue_full: adm.rejected_queue_full,
            rejected_quota: adm.rejected_quota,
            disconnects: 0,
            depth,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: cache.entries,
            p50_us,
            p90_us,
            p99_us,
        }
    }

    /// Serves the `metrics` op: one coherent telemetry snapshot. The
    /// headline gauges come from the live scheduler (meaningful with the
    /// registry off); the series, worker-state gauges, and Prometheus text
    /// come from the telemetry registry and read zero when `--metrics`
    /// is off.
    fn metrics(&self) -> MetricsReport {
        let stats = self.stats();
        let telemetry = self.scheduler.telemetry();
        let registry = telemetry.registry();
        let sample_ms = self.sample_interval_ms;
        MetricsReport {
            enabled: telemetry.enabled(),
            uptime_ms: telemetry.uptime_ms(),
            queue_depth: stats.depth,
            workers_busy: registry.gauge(keq_trace::GaugeId::WorkersBusy),
            workers_idle: registry.gauge(keq_trace::GaugeId::WorkersIdle),
            requests: stats.requests,
            completed: stats.completed,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            cache_entries: stats.cache_entries,
            // Rate over the last ~4 sample windows: long enough to smooth
            // tick jitter, short enough to track load changes.
            rate_per_sec: telemetry.rate_per_sec(sample_ms.saturating_mul(4)),
            p50_us: stats.p50_us,
            p90_us: stats.p90_us,
            p99_us: stats.p99_us,
            samples: telemetry.samples(),
            shard_entries: self.shared.shard_entries(),
            series: telemetry.series_json(),
            slow: telemetry.slow_rows(),
            prometheus: telemetry.prometheus(),
        }
    }
}

/// A bound, not-yet-running validation daemon.
pub struct Server {
    listener: Listener,
    ctx: Arc<ConnCtx>,
}

impl Server {
    /// Binds the listener and starts the resident scheduler.
    ///
    /// `addr` is either a TCP address (`127.0.0.1:7411`; port 0 picks a
    /// free port, see [`Server::local_addr`]) or, on Unix, `unix:` followed
    /// by a socket path (a stale socket file is replaced).
    ///
    /// Storage warm-up runs here, on the caller's thread, in the same
    /// order as a batch run: obligation store load, journal recovery,
    /// journal header write — so a storage fault plan observes the
    /// identical operation sequence on both front ends.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures.
    pub fn bind(addr: &str, opts: &ServerOptions) -> io::Result<Server> {
        let (listener, wake_addr) = match addr.strip_prefix("unix:") {
            None => {
                let l = TcpListener::bind(addr)?;
                let wake_addr = WakeAddr::Tcp(l.local_addr()?);
                (Listener::Tcp(l), wake_addr)
            }
            #[cfg(unix)]
            Some(path) => {
                let path = PathBuf::from(path);
                match std::fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
                let l = UnixListener::bind(&path)?;
                (Listener::Unix(l, path.clone()), WakeAddr::Unix(path))
            }
            #[cfg(not(unix))]
            Some(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix: addresses need a Unix platform",
                ))
            }
        };

        let h = &opts.harness;
        let io_backend: Arc<dyn StoreIo> = if h.fault_plan.has_storage_faults() {
            Arc::new(FaultyIo::new(h.fault_plan.storage()))
        } else {
            Arc::new(StdStoreIo)
        };
        let shared = Arc::new(SharedObligationCache::new());
        let mut disk_loaded = 0u64;
        let mut disk_rejected = 0u64;
        if let Some(path) = &h.cache_path {
            let load = shared.load_with(path, io_backend.as_ref());
            disk_loaded = load.loaded;
            disk_rejected = load.rejected;
        }
        let journal_cfg = h.journal_path.as_ref().map(|path| {
            let mut valid_prefix = None;
            if h.resume {
                let load = journal::load(path, SERVER_JOURNAL_FP, io_backend.as_ref());
                if !load.reset {
                    valid_prefix = Some(load.valid_prefix);
                }
            }
            JournalConfig { path: path.clone(), corpus_fp: SERVER_JOURNAL_FP, valid_prefix }
        });
        let workers = if h.workers == 0 {
            std::thread::available_parallelism().map_or(4, usize::from)
        } else {
            h.workers
        };
        let scheduler = Scheduler::start(SchedulerConfig {
            keq: h.keq,
            isel: h.isel,
            vc: h.vc,
            ra: h.ra,
            gvn: h.gvn,
            workers,
            deadline: h.deadline,
            grace: h.grace,
            watchdog_tick: h.watchdog_tick,
            retry: h.retry,
            fault_plan: h.fault_plan,
            warm_start: h.warm_start,
            trace: h.trace.clone(),
            queue_depth: opts.queue_depth,
            quota: opts.quota,
            request_events: true,
            shared: Arc::clone(&shared),
            io: io_backend,
            cache_path: h.cache_path.clone(),
            disk_loaded,
            disk_rejected,
            store_flush_every: h.store_flush_every,
            store_breaker_threshold: h.store_breaker_threshold,
            journal: journal_cfg,
            metrics: h.metrics,
        });

        Ok(Server {
            listener,
            ctx: Arc::new(ConnCtx {
                scheduler,
                shared,
                shutdown: AtomicBool::new(false),
                wake: wake_addr,
                sample_interval_ms: u64::try_from(h.metrics.sample_interval.as_millis())
                    .unwrap_or(u64::MAX),
            }),
        })
    }

    /// The address clients should connect to, in the same syntax
    /// [`Server::bind`] accepts (resolves a port-0 TCP bind).
    pub fn local_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => l
                .local_addr()
                .map_or_else(|_| "<unknown>".to_string(), |a| a.to_string()),
            #[cfg(unix)]
            Listener::Unix(_, path) => format!("unix:{}", path.display()),
        }
    }

    /// Serves connections until a client sends the `shutdown` op, then
    /// joins every connection thread, drains the scheduler (every admitted
    /// submission gets its verdict; the store flushes), and returns the
    /// lifetime summary.
    pub fn run(self) -> ServerSummary {
        let mut threads = Vec::new();
        let mut connections: u64 = 0;
        loop {
            let accepted: io::Result<Box<dyn Conn>> = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_read_timeout(Some(IDLE_TICK));
                    Box::new(s) as Box<dyn Conn>
                }),
                #[cfg(unix)]
                Listener::Unix(l, _) => l.accept().map(|(s, _)| {
                    let _ = s.set_read_timeout(Some(IDLE_TICK));
                    Box::new(s) as Box<dyn Conn>
                }),
            };
            if self.ctx.shutdown.load(Ordering::Acquire) {
                // The accept that woke us is the shutdown waker (or a
                // too-late client); either way it is dropped unserved.
                break;
            }
            let stream = match accepted {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            connections += 1;
            let client = connections;
            let ctx = Arc::clone(&self.ctx);
            let handle = std::thread::Builder::new()
                .name("keq-server-conn".into())
                .spawn(move || {
                    let _ = handle_connection(stream, &ctx, client);
                })
                .expect("spawn connection thread");
            threads.push(handle);
        }
        // Connection threads need the live scheduler to finish the
        // requests they are serving: join them all *before* draining.
        for t in threads {
            let _ = t.join();
        }
        let fin = self.ctx.scheduler.drain();
        #[cfg(unix)]
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        ServerSummary { fin, connections }
    }
}

/// The server side of one connection, both transports look alike.
trait Conn: Read + Write + Send {}
impl Conn for TcpStream {}
#[cfg(unix)]
impl Conn for UnixStream {}

/// What one interruptible frame read produced.
enum FrameRead {
    Frame(String),
    Eof,
    Shutdown,
}

/// [`read_frame`], but the blocking read wakes up every [`IDLE_TICK`]
/// (via the stream's read timeout) to check the shutdown flag, and
/// partial bytes accumulate across those wake-ups instead of tearing the
/// frame.
fn read_frame_interruptible(
    r: &mut impl Read,
    shutdown: &AtomicBool,
) -> io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    read_exact_interruptible(r, &mut len_buf, shutdown, true)?.map_or(
        Ok(FrameRead::Shutdown),
        |eof| {
            if eof {
                return Ok(FrameRead::Eof);
            }
            let len = u32::from_le_bytes(len_buf);
            if len > crate::protocol::MAX_FRAME_LEN {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length over bound"));
            }
            let mut buf = vec![0u8; len as usize];
            match read_exact_interruptible(r, &mut buf, shutdown, false)? {
                None => Ok(FrameRead::Shutdown),
                Some(true) => {
                    Err(io::Error::new(io::ErrorKind::InvalidData, "EOF mid frame"))
                }
                Some(false) => String::from_utf8(buf).map(FrameRead::Frame).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8")
                }),
            }
        },
    )
}

/// Fills `buf`, tolerating read-timeout wake-ups. Returns `None` when the
/// shutdown flag interrupted the read (the connection is being torn down —
/// any partial frame is abandoned with it), `Some(true)` on EOF before the
/// first byte (only accepted when `clean_eof_ok` — mid-frame EOF is an
/// error), `Some(false)` when `buf` is full.
fn read_exact_interruptible(
    r: &mut impl Read,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    clean_eof_ok: bool,
) -> io::Result<Option<bool>> {
    let mut at = 0;
    while at < buf.len() {
        match r.read(&mut buf[at..]) {
            Ok(0) if at == 0 && clean_eof_ok => return Ok(Some(true)),
            Ok(0) => return Err(io::Error::new(io::ErrorKind::InvalidData, "EOF mid frame")),
            Ok(k) => at += k,
            Err(e)
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(false))
}

fn handle_connection(mut stream: Box<dyn Conn>, ctx: &ConnCtx, client: u64) -> io::Result<()> {
    loop {
        let text = match read_frame_interruptible(&mut stream, &ctx.shutdown)? {
            FrameRead::Eof | FrameRead::Shutdown => return Ok(()),
            FrameRead::Frame(text) => text,
        };
        let resp = match ClientRequest::parse(&text) {
            Err(detail) => ServerResponse::Error { detail },
            Ok(ClientRequest::Stats) => ServerResponse::Stats(ctx.stats()),
            Ok(ClientRequest::Metrics) => ServerResponse::Metrics(Box::new(ctx.metrics())),
            Ok(ClientRequest::Shutdown) => {
                write_frame(&mut stream, &ServerResponse::ShuttingDown.to_json_string())?;
                ctx.shutdown.store(true, Ordering::Release);
                wake(&ctx.wake);
                return Ok(());
            }
            Ok(ClientRequest::Validate { tag, unit, pass, ir, deadline_ms, max_attempts }) => {
                handle_validate(ctx, client, tag, unit, pass, &ir, deadline_ms, max_attempts)
            }
        };
        write_frame(&mut stream, &resp.to_json_string())?;
    }
}

/// Serves one `validate` op: parse the IR, submit every function under
/// the requested pass, await every verdict, assemble the response.
#[allow(clippy::too_many_arguments)]
fn handle_validate(
    ctx: &ConnCtx,
    client: u64,
    tag: u64,
    unit: u64,
    pass: keq_isel::PassId,
    ir: &str,
    deadline_ms: Option<u64>,
    max_attempts: Option<u32>,
) -> ServerResponse {
    let module = match parse_module(ir) {
        Ok(m) => Arc::new(m),
        Err(e) => return ServerResponse::Error { detail: e.to_string() },
    };
    let n = module.functions.len();
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut submitted = 0usize;
    let mut rejection = None;
    for func in 0..n {
        let req_unit = unit + func as u64;
        let req = Request {
            module: Arc::clone(&module),
            func,
            pass,
            func_fp: journal::function_fingerprint(&module.functions[func]),
            // The fault/backoff unit and trace id key off the *request's*
            // unit, so an injected fault lands on the same logical unit a
            // batch run of the same corpus would hit.
            unit: req_unit,
            trace_id: req_unit as u32,
            client,
            tag: func as u64,
            deadline: deadline_ms.map(Duration::from_millis),
            max_attempts,
        };
        match ctx.scheduler.submit(req, reply_tx.clone()) {
            Ok(_) => submitted += 1,
            Err(rej) => {
                rejection = Some(rej);
                break;
            }
        }
    }
    // Await what *was* admitted even when the tail was rejected: the
    // admitted functions finalize normally (journal, cache, counters), the
    // client just learns the request as a whole did not fit.
    let mut slots: Vec<Option<Completion>> = (0..n).map(|_| None).collect();
    for _ in 0..submitted {
        let done = reply_rx.recv().expect("scheduler delivers every admitted verdict");
        let idx = done.tag as usize;
        slots[idx] = Some(done);
    }
    if let Some(rej) = rejection {
        return ServerResponse::RejectedRequest { tag, reason: rej.reason().to_string() };
    }
    let results = slots
        .into_iter()
        .enumerate()
        .map(|(index, c)| {
            let c = c.expect("every function finalized");
            FunctionVerdict {
                name: module.functions[index].name.clone(),
                index: index as u64,
                pass: pass.name().to_string(),
                result: c.result.kind().name().to_string(),
                attempts: c.attempts.len() as u64,
                queue_us: c.queue_us,
                wall_us: c.wall_us,
            }
        })
        .collect();
    ServerResponse::Validated { tag, results }
}

/// The client side of one connection, both transports look alike.
pub enum ClientConn {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix-domain-socket transport.
    #[cfg(unix)]
    Unix(UnixStream),
}

/// Connects to a server address in [`Server::bind`] syntax.
///
/// # Errors
///
/// Propagates connect failures.
pub fn connect(addr: &str) -> io::Result<ClientConn> {
    match addr.strip_prefix("unix:") {
        None => TcpStream::connect(addr).map(ClientConn::Tcp),
        #[cfg(unix)]
        Some(path) => UnixStream::connect(path).map(ClientConn::Unix),
        #[cfg(not(unix))]
        Some(_) => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix: addresses need a Unix platform",
        )),
    }
}

impl ClientConn {
    /// Sends one request and awaits its response.
    ///
    /// # Errors
    ///
    /// Stream errors, or `InvalidData` on a malformed response or a server
    /// that hung up mid-exchange.
    pub fn roundtrip(&mut self, req: &ClientRequest) -> io::Result<ServerResponse> {
        write_frame(self, &req.to_json_string())?;
        let payload = read_frame(self)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "server hung up"))?;
        ServerResponse::parse(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

impl Read for ClientConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientConn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientConn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientConn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientConn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientConn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientConn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keq_workload::{generate_corpus, GenConfig};

    fn small_options() -> ServerOptions {
        ServerOptions {
            harness: HarnessOptions { workers: 2, ..HarnessOptions::default() },
            ..ServerOptions::default()
        }
    }

    fn corpus_ir(n: usize) -> String {
        generate_corpus(GenConfig { seed: 11, calls: false, ..GenConfig::default() }, n)
            .to_string()
    }

    #[test]
    fn tcp_validate_stats_shutdown_round_trip() {
        let server = Server::bind("127.0.0.1:0", &small_options()).expect("bind");
        let addr = server.local_addr();
        let run = std::thread::spawn(move || server.run());

        let mut conn = connect(&addr).expect("connect");
        let ir = corpus_ir(3);
        let resp = conn
            .roundtrip(&ClientRequest::Validate {
                pass: keq_isel::PassId::Isel,
                tag: 42,
                unit: 0,
                ir,
                deadline_ms: None,
                max_attempts: None,
            })
            .expect("validate round trip");
        let ServerResponse::Validated { tag, results } = resp else {
            panic!("expected a verdict table, got {resp:?}");
        };
        assert_eq!(tag, 42);
        assert_eq!(results.len(), 3, "one verdict per function");
        for (i, v) in results.iter().enumerate() {
            assert_eq!(v.index, i as u64, "verdicts ordered by function index");
            assert!(v.attempts >= 1);
        }

        let resp = conn.roundtrip(&ClientRequest::Stats).expect("stats round trip");
        let ServerResponse::Stats(stats) = resp else {
            panic!("expected stats, got {resp:?}");
        };
        assert_eq!(stats.requests, 3, "three functions admitted");
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.depth, 0);

        let resp = conn.roundtrip(&ClientRequest::Shutdown).expect("shutdown round trip");
        assert_eq!(resp, ServerResponse::ShuttingDown);
        let summary = run.join().expect("server thread");
        assert_eq!(summary.fin.server.requests, 3);
        assert_eq!(summary.fin.server.completed, 3);
        assert_eq!(summary.connections, 1);
    }

    #[test]
    fn metrics_op_serves_the_full_telemetry_snapshot() {
        let mut opts = small_options();
        opts.harness.metrics =
            crate::scheduler::MetricsConfig { enabled: true, ..Default::default() };
        let server = Server::bind("127.0.0.1:0", &opts).expect("bind");
        let addr = server.local_addr();
        let run = std::thread::spawn(move || server.run());

        let mut conn = connect(&addr).expect("connect");
        let resp = conn
            .roundtrip(&ClientRequest::Validate {
                pass: keq_isel::PassId::Isel,
                tag: 1,
                unit: 0,
                ir: corpus_ir(4),
                deadline_ms: None,
                max_attempts: None,
            })
            .expect("validate round trip");
        assert!(matches!(resp, ServerResponse::Validated { .. }), "{resp:?}");

        let resp = conn.roundtrip(&ClientRequest::Metrics).expect("metrics round trip");
        let ServerResponse::Metrics(m) = resp else {
            panic!("expected metrics, got {resp:?}");
        };
        assert!(m.enabled);
        assert_eq!(m.requests, 4, "one admitted submission per function");
        assert_eq!(m.completed, 4);
        assert!(m.p99_us >= m.p50_us, "{m:?}");
        assert!(m.p50_us > 0, "quantiles live after finalizations");
        assert!(!m.slow.is_empty(), "slow table populated");
        assert!(
            m.slow.windows(2).all(|w| w[0].wall_us >= w[1].wall_us),
            "slow table sorted by descending wall time"
        );
        for row in &m.slow {
            assert_eq!(row.fingerprint.len(), 16, "zero-padded hex fingerprint");
            assert!(row.attempts >= 1);
        }
        assert!(!m.shard_entries.is_empty(), "shard occupancy reported");
        assert!(
            m.prometheus.contains("# TYPE keq_requests_total counter"),
            "{}",
            m.prometheus
        );
        assert!(
            m.prometheus.contains("keq_slow_obligation_wall_us{fingerprint="),
            "{}",
            m.prometheus
        );

        // The stats op carries the same live quantiles.
        let resp = conn.roundtrip(&ClientRequest::Stats).expect("stats round trip");
        let ServerResponse::Stats(stats) = resp else {
            panic!("expected stats, got {resp:?}");
        };
        assert_eq!(stats.p50_us, m.p50_us);
        assert_eq!(stats.p99_us, m.p99_us);

        conn.roundtrip(&ClientRequest::Shutdown).expect("shutdown");
        run.join().expect("server thread");
    }

    #[test]
    fn metrics_op_answers_with_registry_disabled() {
        let server = Server::bind("127.0.0.1:0", &small_options()).expect("bind");
        let addr = server.local_addr();
        let run = std::thread::spawn(move || server.run());

        let mut conn = connect(&addr).expect("connect");
        let resp = conn
            .roundtrip(&ClientRequest::Validate {
                pass: keq_isel::PassId::Isel,
                tag: 1,
                unit: 0,
                ir: corpus_ir(1),
                deadline_ms: None,
                max_attempts: None,
            })
            .expect("validate round trip");
        assert!(matches!(resp, ServerResponse::Validated { .. }), "{resp:?}");
        let resp = conn.roundtrip(&ClientRequest::Metrics).expect("metrics round trip");
        let ServerResponse::Metrics(m) = resp else {
            panic!("expected metrics, got {resp:?}");
        };
        assert!(!m.enabled);
        // Live scheduler state is still meaningful with the registry off...
        assert_eq!(m.requests, 1);
        assert_eq!(m.completed, 1);
        assert!(m.p50_us > 0, "stats-grade quantiles survive the off switch");
        // ...while registry-backed surfaces read empty, not stale.
        assert_eq!(m.samples, 0);
        assert!(m.slow.is_empty(), "profiler off with the registry");

        conn.roundtrip(&ClientRequest::Shutdown).expect("shutdown");
        run.join().expect("server thread");
    }

    #[test]
    fn malformed_frames_get_error_responses_and_the_connection_survives() {
        let server = Server::bind("127.0.0.1:0", &small_options()).expect("bind");
        let addr = server.local_addr();
        let run = std::thread::spawn(move || server.run());

        let mut conn = connect(&addr).expect("connect");
        // Bad JSON.
        write_frame(&mut conn, "this is not json").expect("send");
        let payload = read_frame(&mut conn).expect("read").expect("response");
        let resp = ServerResponse::parse(&payload).expect("parses");
        assert!(matches!(resp, ServerResponse::Error { .. }), "{resp:?}");
        // Bad IR.
        let resp = conn
            .roundtrip(&ClientRequest::Validate {
                pass: keq_isel::PassId::Isel,
                tag: 1,
                unit: 0,
                ir: "define nonsense".into(),
                deadline_ms: None,
                max_attempts: None,
            })
            .expect("round trip");
        let ServerResponse::Error { detail } = resp else {
            panic!("expected a parse error, got {resp:?}");
        };
        assert!(detail.contains("parse error"), "{detail}");
        // The connection still serves real work afterwards.
        let resp = conn
            .roundtrip(&ClientRequest::Validate {
                pass: keq_isel::PassId::Isel,
                tag: 2,
                unit: 0,
                ir: corpus_ir(1),
                deadline_ms: None,
                max_attempts: None,
            })
            .expect("round trip");
        assert!(matches!(resp, ServerResponse::Validated { .. }), "{resp:?}");

        conn.roundtrip(&ClientRequest::Shutdown).expect("shutdown");
        run.join().expect("server thread");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_transport_serves_and_cleans_up() {
        let path = std::env::temp_dir()
            .join(format!("keq-server-test-{}.sock", std::process::id()));
        let addr = format!("unix:{}", path.display());
        let server = Server::bind(&addr, &small_options()).expect("bind");
        assert_eq!(server.local_addr(), addr);
        let run = std::thread::spawn(move || server.run());

        let mut conn = connect(&addr).expect("connect");
        let resp = conn
            .roundtrip(&ClientRequest::Validate {
                pass: keq_isel::PassId::Isel,
                tag: 7,
                unit: 0,
                ir: corpus_ir(1),
                deadline_ms: None,
                max_attempts: None,
            })
            .expect("round trip");
        assert!(matches!(resp, ServerResponse::Validated { .. }), "{resp:?}");
        conn.roundtrip(&ClientRequest::Shutdown).expect("shutdown");
        let summary = run.join().expect("server thread");
        assert_eq!(summary.fin.server.requests, 1);
        assert!(!path.exists(), "socket file removed on shutdown");
    }
}
