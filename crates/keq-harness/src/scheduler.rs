//! The scheduler core: a submission queue, work-stealing worker shards,
//! and the supervision machinery — panic isolation, watchdog deadlines,
//! escalating-budget retry, warm-start contexts, incremental store
//! flushing, and the write-ahead verdict journal — rehosted as policies of
//! one long-lived [`Scheduler`].
//!
//! Two front ends sit on top:
//!
//! * **batch** — [`crate::run_module`] submits every function of one
//!   corpus, awaits every verdict, drains, and assembles the classic
//!   [`crate::CorpusSummary`];
//! * **server** — [`crate::server`] keeps one scheduler resident across
//!   many requests, so the shared obligation cache, warm-start contexts,
//!   and journal amortize across clients.
//!
//! The scheduler adds what a long-lived front end needs and a batch run
//! never exercised:
//!
//! * **backpressure** — [`Scheduler::submit`] is gated by a bounded queue
//!   depth; excess submissions are *rejected* ([`Rejected::QueueFull`]),
//!   never silently queued without bound;
//! * **per-client quotas** — a [`ClientQuota`] caps concurrent inflight
//!   submissions per client and clamps per-request deadlines and retry
//!   ladders;
//! * **graceful drain** — [`Scheduler::drain`] stops admissions, lets
//!   every accepted submission finish (the watchdog still bounds wedged
//!   ones), then flushes the store and returns the final counters.
//!
//! Work distribution is a sharded work-stealing queue: submissions hash to
//! a shard, each worker prefers its home shard's front (FIFO), and an idle
//! worker steals from the *back* of other shards. A job is pushed into its
//! shard **before** the global ready-count is bumped, so a woken worker
//! always finds a job by scanning.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use keq_core::{FailureReason, KeqOptions, Verdict};
use keq_isel::pipeline::ValidationContext;
use keq_isel::{GvnOptions, IselOptions, PassId, PassOptions, RaOptions, VcOptions};
use keq_llvm::ast::Module;
use keq_smt::fault::{self, FaultPlan};
use keq_smt::obcache::StoreIo;
use keq_smt::{CancelToken, SharedObligationCache, SolverStats};
use keq_trace::metrics::{
    self, Collector, CounterId, GaugeId, HistId, PromKind, PromMetric, PromSample, Registry,
};
use keq_trace::{Phase, SlowObligation, TelemetrySection};

use crate::journal::{JournalRecord, JournalWriter};
use crate::panic_capture;
use crate::result::{AttemptRecord, CacheSummary, CorpusResult};
use crate::run::RetryPolicy;

/// Per-client admission limits, applied by [`Scheduler::submit`].
///
/// The zero defaults disable every limit (what the batch front end uses:
/// it is its own only client).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientQuota {
    /// Maximum concurrent inflight submissions per client (0 = unlimited).
    pub max_inflight: usize,
    /// Upper clamp on the effective per-attempt deadline. Requests asking
    /// for more get the clamp; requests asking for nothing get the clamp
    /// as their deadline (otherwise an unbounded request dodges the
    /// quota).
    pub max_deadline: Option<Duration>,
    /// Upper clamp on the retry ladder length (0 = the scheduler's own
    /// [`RetryPolicy::max_attempts`]).
    pub max_attempts: u32,
}

/// Live-telemetry configuration of a [`Scheduler`].
///
/// Disabled (the default) keeps every probe site on its zero-allocation
/// fast path: one thread-local flag read per probe, no clock, no atomics.
/// Enabled, the scheduler installs one [`Registry`] on the supervisor and
/// every worker, samples it into fixed-capacity time-series rings on the
/// watchdog tick, and retains the top-K slowest obligations with their
/// phase breakdown and solver-counter deltas.
#[derive(Debug, Clone, Copy)]
pub struct MetricsConfig {
    /// Master switch.
    pub enabled: bool,
    /// How often the collector samples the registry into its series rings.
    pub sample_interval: Duration,
    /// Ring capacity of each time series, in samples.
    pub series_capacity: usize,
    /// Rows retained by the slow-obligation profiler (top-K by wall time;
    /// 0 disables the table).
    pub slow_k: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            enabled: false,
            sample_interval: Duration::from_millis(250),
            series_capacity: 240,
            slow_k: 16,
        }
    }
}

/// Bounded top-K table of the slowest finalized submissions, kept sorted
/// by descending wall time (the report-schema invariant). An offer below
/// the current floor of a full table is O(1).
struct SlowTable {
    k: usize,
    rows: Vec<SlowObligation>,
}

impl SlowTable {
    fn new(k: usize) -> SlowTable {
        SlowTable { k, rows: Vec::new() }
    }

    fn offer(&mut self, row: SlowObligation) {
        if self.k == 0 {
            return;
        }
        if self.rows.len() >= self.k
            && row.wall_us <= self.rows.last().map_or(0, |r| r.wall_us)
        {
            return;
        }
        let at = self.rows.partition_point(|r| r.wall_us >= row.wall_us);
        self.rows.insert(at, row);
        self.rows.truncate(self.k);
    }
}

/// The resident telemetry of one scheduler: the metrics [`Registry`] every
/// probe site feeds, the [`Collector`] sampling it into fixed-capacity
/// time-series rings, the slow-obligation profiler, and always-on live
/// request-latency quantiles (the `stats` op reports those even with
/// metrics disabled — three atomic loads, no registry traffic).
pub struct Telemetry {
    enabled: bool,
    registry: Arc<Registry>,
    collector: Mutex<Collector>,
    slow: Mutex<SlowTable>,
    started: Instant,
    p50_us: AtomicU64,
    p90_us: AtomicU64,
    p99_us: AtomicU64,
}

impl Telemetry {
    fn new(cfg: MetricsConfig) -> Telemetry {
        Telemetry {
            enabled: cfg.enabled,
            registry: Arc::new(Registry::new()),
            collector: Mutex::new(Collector::new(cfg.series_capacity)),
            slow: Mutex::new(SlowTable::new(cfg.slow_k)),
            started: Instant::now(),
            p50_us: AtomicU64::new(0),
            p90_us: AtomicU64::new(0),
            p99_us: AtomicU64::new(0),
        }
    }

    /// Whether the metrics registry is live.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The scheduler's metrics registry (all-zero when disabled).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Milliseconds since the scheduler started.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Live lifetime request-latency quantiles `(p50, p90, p99)`, µs.
    /// Maintained on every finalization regardless of the metrics switch.
    pub fn latency_quantiles_us(&self) -> (u64, u64, u64) {
        (
            self.p50_us.load(Ordering::Relaxed),
            self.p90_us.load(Ordering::Relaxed),
            self.p99_us.load(Ordering::Relaxed),
        )
    }

    /// Collector samples taken so far.
    pub fn samples(&self) -> u64 {
        self.collector.lock().expect("collector poisoned").samples()
    }

    /// Every time series as JSON (`[{"name", "points": [[t_ms, v], ...]}]`).
    pub fn series_json(&self) -> keq_trace::Json {
        self.collector.lock().expect("collector poisoned").to_json()
    }

    /// Completed requests per second over the most recent sample window.
    pub fn rate_per_sec(&self, window_ms: u64) -> f64 {
        self.collector
            .lock()
            .expect("collector poisoned")
            .counter(CounterId::Completed)
            .rate_per_sec(window_ms)
    }

    /// A snapshot of the slow-obligation table, descending wall time.
    pub fn slow_rows(&self) -> Vec<SlowObligation> {
        self.slow.lock().expect("slow table poisoned").rows.clone()
    }

    /// The report-schema telemetry section of this scheduler's lifetime.
    pub fn section(&self) -> TelemetrySection {
        TelemetrySection {
            enabled: self.enabled,
            samples: self.samples(),
            slow: self.slow_rows(),
        }
    }

    /// The whole registry plus the slow-obligation table in Prometheus
    /// text exposition format (hand-rolled, std-only — see
    /// [`metrics::render_prometheus`]).
    pub fn prometheus(&self) -> String {
        let mut fams = metrics::prom_from_registry(&self.registry);
        let samples = self
            .slow_rows()
            .iter()
            .map(|r| PromSample {
                suffix: "",
                labels: vec![
                    ("fingerprint".to_string(), r.fingerprint.clone()),
                    ("label".to_string(), r.label.clone()),
                    ("result".to_string(), r.result.clone()),
                ],
                value: r.wall_us as f64,
            })
            .collect();
        fams.push(PromMetric {
            name: "keq_slow_obligation_wall_us".to_string(),
            help: "Total wall time of the slowest obligations (top-K), microseconds"
                .to_string(),
            kind: PromKind::Gauge,
            samples,
        });
        metrics::render_prometheus(&fams)
    }

    /// Request-finalization accounting: refresh the live quantile atomics
    /// from the supervisor's latency histogram (always), and feed the
    /// registry's request counters/histogram (metrics on only).
    fn observe_request(&self, wall_us: u64, latency: &keq_trace::Histogram) {
        let q = |v: Option<f64>| v.map_or(0, |x| x as u64);
        self.p50_us.store(q(latency.p50()), Ordering::Relaxed);
        self.p90_us.store(q(latency.p90()), Ordering::Relaxed);
        self.p99_us.store(q(latency.p99()), Ordering::Relaxed);
        if self.enabled {
            self.registry.counter_add(CounterId::Completed, 1);
            self.registry.observe_us(HistId::RequestLatencyUs, wall_us);
        }
    }

    /// Offers one finalized submission to the slow-obligation table.
    fn offer_slow(&self, row: SlowObligation) {
        self.slow.lock().expect("slow table poisoned").offer(row);
    }

    /// Takes one collector sample at the current uptime.
    fn sample_now(&self) {
        let t_ms = self.uptime_ms();
        self.collector.lock().expect("collector poisoned").sample(&self.registry, t_ms);
    }
}

/// Where the write-ahead verdict journal lives and what identifies it.
///
/// The front end loads/resumes the journal itself (so it controls the
/// exact storage-operation order) and hands the scheduler the surviving
/// valid prefix; [`Scheduler::start`] opens the writer — still on the
/// caller's thread, so the header write is ordered before any worker I/O.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Journal file path.
    pub path: PathBuf,
    /// Corpus fingerprint stamped into the header (a fresh server journal
    /// uses a front-end-chosen namespace constant).
    pub corpus_fp: u64,
    /// Byte-valid prefix recovered by [`crate::journal::load`] to append
    /// after, `None` to start fresh.
    pub valid_prefix: Option<Vec<u8>>,
}

/// Configuration of a [`Scheduler`].
#[derive(Clone)]
pub struct SchedulerConfig {
    /// Base checker options of attempt 1.
    pub keq: KeqOptions,
    /// Instruction-selection options.
    pub isel: IselOptions,
    /// VC-generation options.
    pub vc: VcOptions,
    /// Register-allocation options (the regalloc pass instantiation).
    pub ra: RaOptions,
    /// GVN options (the mid-end pass instantiation).
    pub gvn: GvnOptions,
    /// Worker threads (must be ≥ 1; front ends resolve `0` themselves).
    pub workers: usize,
    /// Default hard per-attempt deadline (requests may override, quotas
    /// clamp).
    pub deadline: Option<Duration>,
    /// Grace past a cancellation before the watchdog abandons a worker.
    pub grace: Duration,
    /// Watchdog sweep interval.
    pub watchdog_tick: Duration,
    /// Retry policy for budget-class failures.
    pub retry: RetryPolicy,
    /// Deterministic fault plan ([`FaultPlan::quiet`] for none).
    pub fault_plan: FaultPlan,
    /// Carry warm-start contexts across retries of one submission.
    pub warm_start: bool,
    /// Trace sink installed on the supervisor and every worker.
    pub trace: Option<keq_trace::TraceSink>,
    /// Live-telemetry configuration (disabled by default).
    pub metrics: MetricsConfig,
    /// Maximum accepted-but-unfinalized submissions (0 = unbounded — the
    /// batch front end, which submits a whole corpus at once).
    pub queue_depth: usize,
    /// Admission quota applied to every client.
    pub quota: ClientQuota,
    /// Emit request-level trace events (`request_received` /
    /// `request_rejected` / `request_completed`). Off for batch runs so
    /// their event streams stay byte-stable.
    pub request_events: bool,
    /// The run's shared obligation cache, pre-loaded by the front end.
    pub shared: Arc<SharedObligationCache>,
    /// The injectable storage backend every byte goes through.
    pub io: Arc<dyn StoreIo>,
    /// On-disk obligation store for incremental flushes (`None` keeps the
    /// cache memory-only).
    pub cache_path: Option<PathBuf>,
    /// Store records the front end loaded at startup (reported through
    /// [`SchedulerFinal::cache`]).
    pub disk_loaded: u64,
    /// Store records the front end rejected while loading.
    pub disk_rejected: u64,
    /// Flush the store every this many finalizations (0 = shutdown only).
    pub store_flush_every: u32,
    /// Consecutive-failure threshold of the storage circuit breakers.
    pub store_breaker_threshold: u32,
    /// Write-ahead verdict journal (`None` disables journaling).
    pub journal: Option<JournalConfig>,
}

/// One unit of submitted work: validate one function of a module.
#[derive(Clone)]
pub struct Request {
    /// The module owning the function.
    pub module: Arc<Module>,
    /// Function index within `module`.
    pub func: usize,
    /// Which validated pass to run on the function.
    pub pass: PassId,
    /// Journal fingerprint of the function
    /// ([`crate::journal::function_fingerprint`]).
    pub func_fp: u64,
    /// Fault-plan unit (batch: the corpus function index) — keyed into
    /// [`fault::install`] so injected faults land deterministically on the
    /// same unit regardless of front end.
    pub unit: u64,
    /// Identifier stamped into trace events (batch: the function index).
    pub trace_id: u32,
    /// Submitting client (quota key).
    pub client: u64,
    /// Opaque tag echoed back in the [`Completion`].
    pub tag: u64,
    /// Per-request deadline override (quota-clamped).
    pub deadline: Option<Duration>,
    /// Per-request retry-ladder cap (quota-clamped).
    pub max_attempts: Option<u32>,
}

/// Why [`Scheduler::submit`] bounced a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded submission queue is full — explicit backpressure.
    QueueFull {
        /// Accepted-but-unfinalized submissions at rejection time.
        depth: usize,
    },
    /// The client is over its inflight quota.
    QuotaExceeded {
        /// The offending client.
        client: u64,
        /// Its inflight submissions at rejection time.
        inflight: usize,
    },
    /// The scheduler is draining and admits nothing new.
    Draining,
}

impl Rejected {
    /// Stable wire name of the rejection reason.
    pub fn reason(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::QuotaExceeded { .. } => "quota",
            Rejected::Draining => "draining",
        }
    }
}

/// The finalized verdict of one submission, delivered on the reply channel
/// the submitter registered.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The submission id [`Scheduler::submit`] returned.
    pub submission: u64,
    /// The request's opaque tag.
    pub tag: u64,
    /// Final classified result.
    pub result: CorpusResult,
    /// Every attempt, in order.
    pub attempts: Vec<AttemptRecord>,
    /// Submit → first worker pickup, µs.
    pub queue_us: u64,
    /// Submit → finalization, µs.
    pub wall_us: u64,
}

/// Request counters of a scheduler's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Submissions accepted past the gate.
    pub requests: u64,
    /// Submissions finalized with a verdict.
    pub completed: u64,
    /// Rejections by queue-depth backpressure.
    pub rejected_queue_full: u64,
    /// Rejections by per-client quota.
    pub rejected_quota: u64,
    /// Rejections while draining.
    pub rejected_draining: u64,
    /// Verdicts whose reply channel was gone (client disconnected).
    pub disconnects: u64,
}

/// What [`Scheduler::drain`] returns once every accepted submission
/// finalized and the store flushed.
pub struct SchedulerFinal {
    /// Merged solver statistics across every attempt.
    pub solver: SolverStats,
    /// Obligation-cache summary (load + flush + breaker state).
    pub cache: CacheSummary,
    /// Request counters.
    pub server: ServerCounters,
    /// Submit → finalize latency distribution (µs).
    pub latency: keq_trace::Histogram,
    /// Live-telemetry summary: collector samples and the slow-obligation
    /// table (all-default when metrics were disabled).
    pub telemetry: TelemetrySection,
}

/// Batched, breaker-guarded persistence of the shared obligation store.
///
/// The supervisor calls [`StoreFlusher::tick`] at every submission
/// finalization; every `every`-th tick persists the store's dirty verdicts
/// through the injectable [`StoreIo`] (one append per batch — a mid-batch
/// kill tears at most one batch, which the next load skips fail-soft).
/// After `threshold` consecutive failures the breaker trips and the store
/// degrades to memory-only: verdicts keep accumulating in memory and the
/// run's *results* are unaffected; only the next run's warm start is lost.
struct StoreFlusher {
    shared: Arc<SharedObligationCache>,
    path: Option<PathBuf>,
    io: Arc<dyn StoreIo>,
    every: u32,
    threshold: u32,
    pending: u32,
    consecutive: u32,
    flushes: u64,
    flush_failures: u64,
    degraded: bool,
    persist_failed: bool,
    disk_persisted: u64,
    disk_bytes: u64,
}

impl StoreFlusher {
    fn new(
        shared: Arc<SharedObligationCache>,
        path: Option<PathBuf>,
        io: Arc<dyn StoreIo>,
        every: u32,
        threshold: u32,
    ) -> StoreFlusher {
        StoreFlusher {
            shared,
            path,
            io,
            every,
            threshold: threshold.max(1),
            pending: 0,
            consecutive: 0,
            flushes: 0,
            flush_failures: 0,
            degraded: false,
            persist_failed: false,
            disk_persisted: 0,
            disk_bytes: 0,
        }
    }

    /// One submission finalized; flush if the batch is full.
    fn tick(&mut self) {
        if self.path.is_none() || self.every == 0 {
            return;
        }
        self.pending += 1;
        if self.pending >= self.every {
            self.flush("flush");
        }
    }

    fn flush(&mut self, op: &'static str) {
        self.pending = 0;
        if self.degraded {
            return;
        }
        let Some(path) = self.path.clone() else { return };
        match self.shared.persist_with(&path, self.io.as_ref()) {
            Ok(persist) => {
                self.flushes += 1;
                self.consecutive = 0;
                self.disk_persisted += persist.written;
                self.disk_bytes = persist.file_bytes;
                metrics::counter_add(CounterId::StoreFlushes, 1);
            }
            Err(err) => {
                self.flush_failures += 1;
                self.consecutive += 1;
                metrics::counter_add(CounterId::StoreFlushFailures, 1);
                if keq_trace::enabled() {
                    keq_trace::emit(keq_trace::Event::StoreError {
                        target: "store",
                        op,
                        detail: err.to_string(),
                    });
                }
                if self.consecutive >= self.threshold {
                    self.degraded = true;
                    keq_trace::emit(keq_trace::Event::StoreDegraded {
                        target: "store",
                        failures: self.consecutive,
                    });
                    // The run just started losing its storage: push any
                    // buffered trace lines out while we still can.
                    keq_trace::flush_sink();
                }
            }
        }
    }

    /// The shutdown flush. A failure here (or an already-tripped breaker)
    /// means this run's remaining proved verdicts never reached disk — the
    /// summary must say so instead of silently reporting a cold next run.
    fn finish(&mut self) {
        if self.path.is_none() {
            return;
        }
        if self.degraded {
            self.persist_failed = true;
            return;
        }
        let failures_before = self.flush_failures;
        self.flush("persist");
        if self.flush_failures > failures_before {
            self.persist_failed = true;
        }
    }
}

/// Appends the just-finalized verdict to the write-ahead journal (no-op
/// without one). Called at *both* finalize sites — delivered results and
/// watchdog abandonments — so resume sees every decided function.
fn journal_finalize(
    writer: &mut Option<JournalWriter>,
    func: usize,
    pass: PassId,
    func_fp: u64,
    attempts: &[AttemptRecord],
    result: &CorpusResult,
) {
    let Some(w) = writer else { return };
    let time: Duration = attempts.iter().map(|a| a.time).sum();
    w.append(&JournalRecord {
        func: func as u32,
        func_fp,
        attempts: attempts.len() as u32,
        time_us: u64::try_from(time.as_micros()).unwrap_or(u64::MAX),
        pass,
        result: result.clone(),
    });
}

/// Per-submission warm-start contexts, keyed by the unique submission id
/// and guarded by a per-key *generation*. A worker [`WarmStarts::take`]s
/// the entry (and the key's current generation) before an attempt and
/// [`WarmStarts::put`]s it back afterwards, so the map never hands the
/// same context to two threads (the supervisor only ever has one attempt
/// of a submission in flight).
///
/// Finalization cleans up one of two ways:
///
/// * a **delivered** result ([`WarmStarts::remove`]) erases the entry and
///   its generation outright — the worker's `put` happened before its
///   `Finished` send on the same thread, so no late writer exists, and
///   submission ids are never reused, so a fresh generation 0 is safe;
/// * an **abandonment** ([`WarmStarts::retire`]) bumps the generation and
///   leaves a tombstone, because the abandoned worker's detached thread
///   may still try to put its context back; the stale generation no longer
///   matches, so the context is dropped instead of resurrecting a dead
///   submission's term bank. The tombstone costs a few bytes per (rare)
///   abandonment.
#[derive(Default)]
struct WarmStarts {
    inner: Mutex<WarmInner>,
}

#[derive(Default)]
struct WarmInner {
    generations: HashMap<u64, u64>,
    ctxs: HashMap<u64, ValidationContext>,
}

impl WarmStarts {
    /// Removes and returns the key's context (if any) together with the
    /// generation the caller must present to [`WarmStarts::put`].
    fn take(&self, key: u64) -> (u64, Option<ValidationContext>) {
        let mut st = self.inner.lock().expect("warm-start map poisoned");
        let generation = st.generations.get(&key).copied().unwrap_or(0);
        (generation, st.ctxs.remove(&key))
    }

    /// Puts a context back for the key's next attempt — unless the
    /// supervisor retired the key since the matching [`WarmStarts::take`],
    /// in which case the stale context is dropped.
    fn put(&self, key: u64, generation: u64, ctx: ValidationContext) {
        let mut st = self.inner.lock().expect("warm-start map poisoned");
        if st.generations.get(&key).copied().unwrap_or(0) == generation {
            st.ctxs.insert(key, ctx);
        }
    }

    /// Tombstone-finalizes the key: drops its context and bumps its
    /// generation so an in-flight abandoned attempt can no longer put one
    /// back.
    fn retire(&self, key: u64) {
        let mut st = self.inner.lock().expect("warm-start map poisoned");
        *st.generations.entry(key).or_insert(0) += 1;
        st.ctxs.remove(&key);
    }

    /// Erases the key entirely (delivered-result finalization: no late
    /// writer can exist, and the id is never reused). Keeps a long-lived
    /// server's map from growing with every request ever served.
    fn remove(&self, key: u64) {
        let mut st = self.inner.lock().expect("warm-start map poisoned");
        st.generations.remove(&key);
        st.ctxs.remove(&key);
    }

    #[cfg(test)]
    fn contains(&self, key: u64) -> bool {
        self.inner.lock().expect("warm-start map poisoned").ctxs.contains_key(&key)
    }

    #[cfg(test)]
    fn tracked(&self, key: u64) -> bool {
        let st = self.inner.lock().expect("warm-start map poisoned");
        st.generations.contains_key(&key) || st.ctxs.contains_key(&key)
    }
}

/// The immutable part of a submission every attempt shares.
struct JobCore {
    module: Arc<Module>,
    func: usize,
    pass: PassId,
    unit: u64,
    trace_id: u32,
}

/// One unit of queued work: one attempt at one submission.
#[derive(Clone)]
struct Job {
    id: u64,
    submission: u64,
    attempt: u32,
    core: Arc<JobCore>,
}

/// Closable blocking work-stealing queue, sharded by submission id.
///
/// Invariant: a job is pushed into its shard **before** the ready count is
/// bumped, so a reservation (decrementing the count) is always backed by a
/// job already visible in some shard — the claim scan below can spin but
/// never starve.
struct ShardedQueue {
    shards: Vec<Mutex<VecDeque<Job>>>,
    sync: Mutex<QueueSync>,
    cv: Condvar,
}

#[derive(Default)]
struct QueueSync {
    ready: usize,
    closed: bool,
}

impl ShardedQueue {
    fn new(shards: usize) -> ShardedQueue {
        ShardedQueue {
            shards: (0..shards.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            sync: Mutex::new(QueueSync::default()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let shard = (job.submission as usize) % self.shards.len();
        self.shards[shard].lock().expect("shard poisoned").push_back(job);
        let mut sync = self.sync.lock().expect("queue poisoned");
        sync.ready += 1;
        self.cv.notify_one();
    }

    fn close(&self) {
        let mut sync = self.sync.lock().expect("queue poisoned");
        sync.closed = true;
        self.cv.notify_all();
    }

    /// Blocks for the next job; `None` once closed and drained. The worker
    /// prefers the *front* of its home shard (FIFO for its own stream) and
    /// steals from the *back* of the others.
    fn pop(&self, worker: usize) -> Option<Job> {
        {
            let mut sync = self.sync.lock().expect("queue poisoned");
            loop {
                if sync.ready > 0 {
                    sync.ready -= 1;
                    break;
                }
                if sync.closed {
                    return None;
                }
                sync = self.cv.wait(sync).expect("queue poisoned");
            }
        }
        let n = self.shards.len();
        let home = worker % n;
        loop {
            if let Some(job) = self.shards[home].lock().expect("shard poisoned").pop_front() {
                return Some(job);
            }
            for k in 1..n {
                let victim = (home + k) % n;
                if let Some(job) = self.shards[victim].lock().expect("shard poisoned").pop_back() {
                    return Some(job);
                }
            }
            // The reserved job is still in flight between its shard push
            // and a concurrent claimer's removal; re-scan.
            std::thread::yield_now();
        }
    }
}

/// What one attempt produced, as reported by the worker.
#[derive(Debug)]
struct AttemptOutcome {
    result: CorpusResult,
    /// Whether the failure is budget-class and bigger budgets could help.
    retryable: bool,
    time: Duration,
    /// Solver-statistics delta of this attempt alone ([`SolverStats::since`]
    /// over the attempt's context; zero for panicked attempts, whose
    /// context died mid-flight).
    solver: SolverStats,
    /// Per-phase span time of this attempt, µs, indexed by
    /// [`Phase::ALL`] position (all-zero when metrics are disabled; the
    /// worker drains its thread-local phase accumulator per attempt).
    phase_us: [u64; Phase::ALL.len()],
}

/// A submission accepted past the gate, en route to the supervisor.
struct Submission {
    id: u64,
    core: Arc<JobCore>,
    func_fp: u64,
    client: u64,
    tag: u64,
    deadline: Option<Duration>,
    max_attempts: u32,
    reply: mpsc::Sender<Completion>,
    submitted: Instant,
}

enum Msg {
    /// A gated submission entering the scheduler.
    Submit(Submission),
    /// A worker picked up a job and will honor this cancellation token.
    Started { job: u64, worker: usize, cancel: CancelToken },
    /// A worker finished a job. Boxed: the outcome carries the per-phase
    /// time table and solver counters, and must not bloat every message.
    Finished { job: u64, outcome: Box<AttemptOutcome> },
    /// Stop admitting (the gate already is) and exit once idle.
    Drain,
}

struct Worker {
    /// Raised by the supervisor to make the thread exit after its current
    /// job (used when abandoning it, so a late finisher never picks up
    /// fresh work).
    retired: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Book-keeping for a job between `Started` and `Finished`.
struct Inflight {
    submission: u64,
    trace_id: u32,
    attempt: u32,
    worker: usize,
    cancel: CancelToken,
    started: Instant,
    deadline: Option<Instant>,
    cancelled_at: Option<Instant>,
}

/// Supervisor-side state of an accepted, not-yet-finalized submission.
struct SubState {
    core: Arc<JobCore>,
    func_fp: u64,
    client: u64,
    tag: u64,
    deadline: Option<Duration>,
    max_attempts: u32,
    reply: mpsc::Sender<Completion>,
    submitted: Instant,
    first_started: Option<Instant>,
    attempts: Vec<AttemptRecord>,
    /// Solver-counter delta accumulated across this submission's delivered
    /// attempts (per-attempt deltas are merged into the run total at
    /// `Finished` and would otherwise be gone before the slow-obligation
    /// profiler could attribute them).
    solver_acc: SolverStats,
    /// Per-phase span time accumulated across attempts, µs.
    phase_acc: [u64; Phase::ALL.len()],
}

/// Admission gate state, shared by submitters and the supervisor.
struct Gate {
    draining: bool,
    depth: usize,
    per_client: HashMap<u64, usize>,
    next_id: u64,
    /// Sends happen under the gate lock, so a [`Msg::Drain`] sent while
    /// holding it is ordered strictly after every accepted submission.
    tx: mpsc::Sender<Msg>,
}

/// The per-attempt validation settings every worker shares.
struct AttemptSettings {
    keq: KeqOptions,
    isel: IselOptions,
    vc: VcOptions,
    ra: RaOptions,
    gvn: GvnOptions,
    retry: RetryPolicy,
    fault_plan: FaultPlan,
    warm_start: bool,
    trace: Option<keq_trace::TraceSink>,
    /// Metrics registry each worker installs thread-locally (`None` when
    /// metrics are disabled — the probe sites then cost one flag read).
    metrics: Option<Arc<Registry>>,
}

/// A running scheduler: submit work with [`Scheduler::submit`], stop with
/// [`Scheduler::drain`]. Cheap to share behind an [`Arc`] — submission is
/// one mutex acquisition plus a channel send.
pub struct Scheduler {
    gate: Arc<Mutex<Gate>>,
    supervisor: Mutex<Option<std::thread::JoinHandle<SchedulerFinal>>>,
    queue_depth: usize,
    quota: ClientQuota,
    default_deadline: Option<Duration>,
    max_attempts: u32,
    request_events: bool,
    accepted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_draining: AtomicU64,
    telemetry: Arc<Telemetry>,
}

impl Scheduler {
    /// Starts the scheduler: opens the journal writer (on the caller's
    /// thread, so the header write is ordered before any worker storage
    /// I/O), then spawns the supervisor and its worker pool.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is zero — front ends resolve the
    /// "pick for me" default themselves, where they know the corpus size.
    pub fn start(config: SchedulerConfig) -> Scheduler {
        assert!(config.workers >= 1, "scheduler needs at least one worker");
        panic_capture::install_hook();
        let journal_writer = config.journal.as_ref().map(|j| {
            JournalWriter::start(
                &j.path,
                j.corpus_fp,
                j.valid_prefix.as_deref(),
                Arc::clone(&config.io),
                config.store_breaker_threshold,
            )
        });
        let flusher = StoreFlusher::new(
            Arc::clone(&config.shared),
            config.cache_path.clone(),
            Arc::clone(&config.io),
            config.store_flush_every,
            config.store_breaker_threshold,
        );
        let (tx, rx) = mpsc::channel::<Msg>();
        let gate = Arc::new(Mutex::new(Gate {
            draining: false,
            depth: 0,
            per_client: HashMap::new(),
            next_id: 0,
            tx,
        }));
        let queue_depth = config.queue_depth;
        let quota = config.quota;
        let default_deadline = config.deadline;
        let max_attempts = config.retry.max_attempts.max(1);
        let request_events = config.request_events;
        let telemetry = Arc::new(Telemetry::new(config.metrics));
        let gate_sup = Arc::clone(&gate);
        let tel_sup = Arc::clone(&telemetry);
        let handle = std::thread::Builder::new()
            .name("keq-scheduler".into())
            .spawn(move || supervise(config, rx, gate_sup, journal_writer, flusher, tel_sup))
            .expect("spawn scheduler supervisor");
        Scheduler {
            gate,
            supervisor: Mutex::new(Some(handle)),
            queue_depth,
            quota,
            default_deadline,
            max_attempts,
            request_events,
            accepted: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            telemetry,
        }
    }

    /// This scheduler's live telemetry: the metrics registry, time-series
    /// collector, slow-obligation table, and live latency quantiles.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Submits one request. The verdict arrives as a [`Completion`] on
    /// `reply`; a dropped receiver is safe (the scheduler counts it as a
    /// disconnect and moves on — shared state is unaffected).
    ///
    /// # Errors
    ///
    /// [`Rejected`] when the gate bounces the request: queue full, client
    /// over quota, or draining. Rejection leaves no scheduler state behind.
    pub fn submit(
        &self,
        req: Request,
        reply: mpsc::Sender<Completion>,
    ) -> Result<u64, Rejected> {
        let rejection = {
            let mut gate = self.gate.lock().expect("gate poisoned");
            if gate.draining {
                Err(Rejected::Draining)
            } else if self.queue_depth > 0 && gate.depth >= self.queue_depth {
                Err(Rejected::QueueFull { depth: gate.depth })
            } else {
                let inflight = gate.per_client.get(&req.client).copied().unwrap_or(0);
                if self.quota.max_inflight > 0 && inflight >= self.quota.max_inflight {
                    Err(Rejected::QuotaExceeded { client: req.client, inflight })
                } else {
                    let id = gate.next_id;
                    gate.next_id += 1;
                    gate.depth += 1;
                    *gate.per_client.entry(req.client).or_insert(0) += 1;
                    let submission = Submission {
                        id,
                        core: Arc::new(JobCore {
                            module: req.module,
                            func: req.func,
                            pass: req.pass,
                            unit: req.unit,
                            trace_id: req.trace_id,
                        }),
                        func_fp: req.func_fp,
                        client: req.client,
                        tag: req.tag,
                        deadline: self.effective_deadline(req.deadline),
                        max_attempts: self.effective_attempts(req.max_attempts),
                        reply,
                        submitted: Instant::now(),
                    };
                    // Sent under the gate lock: see `Gate::tx`.
                    let _ = gate.tx.send(Msg::Submit(submission));
                    Ok(id)
                }
            }
        };
        match rejection {
            Ok(id) => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                if self.telemetry.enabled() {
                    self.telemetry.registry().counter_add(CounterId::Requests, 1);
                }
                if self.request_events && keq_trace::enabled() {
                    keq_trace::emit(keq_trace::Event::RequestReceived {
                        client: req.client,
                        tag: req.tag,
                    });
                }
                Ok(id)
            }
            Err(rej) => {
                let (counter, metric) = match rej {
                    Rejected::QueueFull { .. } => {
                        (&self.rejected_queue_full, CounterId::RejectedQueueFull)
                    }
                    Rejected::QuotaExceeded { .. } => {
                        (&self.rejected_quota, CounterId::RejectedQuota)
                    }
                    Rejected::Draining => (&self.rejected_draining, CounterId::RejectedDraining),
                };
                counter.fetch_add(1, Ordering::Relaxed);
                if self.telemetry.enabled() {
                    self.telemetry.registry().counter_add(metric, 1);
                }
                if self.request_events && keq_trace::enabled() {
                    keq_trace::emit(keq_trace::Event::RequestRejected {
                        client: req.client,
                        tag: req.tag,
                        reason: rej.reason(),
                    });
                }
                Err(rej)
            }
        }
    }

    /// Accepted-but-unfinalized submissions right now.
    pub fn depth(&self) -> usize {
        self.gate.lock().expect("gate poisoned").depth
    }

    /// Live admission-side counters (the `stats` surface of a running
    /// scheduler). `completed` and `disconnects` are supervisor-local and
    /// only merged at [`Scheduler::drain`]; they read zero here —
    /// `requests - depth()` gives the finalized count live.
    pub fn admission(&self) -> ServerCounters {
        ServerCounters {
            requests: self.accepted.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_quota: self.rejected_quota.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            ..ServerCounters::default()
        }
    }

    /// Stops admissions, waits for every accepted submission to finalize
    /// (the watchdog still bounds wedged attempts), flushes the store, and
    /// returns the lifetime counters.
    ///
    /// # Panics
    ///
    /// Panics when called twice — the supervisor is joined exactly once.
    pub fn drain(&self) -> SchedulerFinal {
        {
            let mut gate = self.gate.lock().expect("gate poisoned");
            gate.draining = true;
            let _ = gate.tx.send(Msg::Drain);
        }
        let handle = self
            .supervisor
            .lock()
            .expect("supervisor handle poisoned")
            .take()
            .expect("scheduler drained twice");
        let mut fin = handle.join().expect("scheduler supervisor panicked");
        fin.server.requests = self.accepted.load(Ordering::Relaxed);
        fin.server.rejected_queue_full = self.rejected_queue_full.load(Ordering::Relaxed);
        fin.server.rejected_quota = self.rejected_quota.load(Ordering::Relaxed);
        fin.server.rejected_draining = self.rejected_draining.load(Ordering::Relaxed);
        fin
    }

    fn effective_deadline(&self, requested: Option<Duration>) -> Option<Duration> {
        match (requested.or(self.default_deadline), self.quota.max_deadline) {
            (Some(d), Some(clamp)) => Some(d.min(clamp)),
            (None, clamp) => clamp,
            (d, None) => d,
        }
    }

    fn effective_attempts(&self, requested: Option<u32>) -> u32 {
        let mut n = self.max_attempts;
        if self.quota.max_attempts > 0 {
            n = n.min(self.quota.max_attempts);
        }
        if let Some(r) = requested {
            n = n.min(r);
        }
        n.max(1)
    }
}

/// The supervisor loop: admits submissions, tracks inflight attempts,
/// sweeps the watchdog, applies the retry/quarantine ladder, journals and
/// flushes at finalization, and replaces abandoned workers.
fn supervise(
    config: SchedulerConfig,
    rx: mpsc::Receiver<Msg>,
    gate: Arc<Mutex<Gate>>,
    mut journal_writer: Option<JournalWriter>,
    mut flusher: StoreFlusher,
    telemetry: Arc<Telemetry>,
) -> SchedulerFinal {
    let _trace_guard = config.trace.as_ref().map(keq_trace::install);
    // The supervisor installs the registry too: journal appends and store
    // flushes happen on this thread and report through the thread-local
    // metric probes, like any worker-side probe site.
    let _metrics_guard =
        telemetry.enabled().then(|| keq_trace::install_metrics(telemetry.registry()));
    let settings = Arc::new(AttemptSettings {
        keq: config.keq,
        isel: config.isel,
        vc: config.vc,
        ra: config.ra,
        gvn: config.gvn,
        retry: config.retry,
        fault_plan: config.fault_plan,
        warm_start: config.warm_start,
        trace: config.trace.clone(),
        metrics: telemetry.enabled().then(|| Arc::clone(telemetry.registry())),
    });
    let queue = Arc::new(ShardedQueue::new(config.workers));
    let ctxs = Arc::new(WarmStarts::default());
    let worker_tx = gate.lock().expect("gate poisoned").tx.clone();

    let mut pool: Vec<Worker> = Vec::new();
    for id in 0..config.workers {
        pool.push(spawn_worker(&settings, &queue, &ctxs, &config.shared, &worker_tx, id));
    }

    let mut subs: HashMap<u64, SubState> = HashMap::new();
    let mut job_meta: HashMap<u64, (u64, u32)> = HashMap::new();
    let mut inflight: HashMap<u64, Inflight> = HashMap::new();
    let mut next_job: u64 = 0;
    let mut draining = false;
    let mut solver_total = SolverStats::default();
    let mut completed: u64 = 0;
    let mut disconnects: u64 = 0;
    let mut latency = keq_trace::Histogram::log_us("request latency (µs)");
    let mut last_sample = Instant::now();

    loop {
        match rx.recv_timeout(config.watchdog_tick) {
            Ok(Msg::Submit(sub)) => {
                let job = Job {
                    id: next_job,
                    submission: sub.id,
                    attempt: 1,
                    core: Arc::clone(&sub.core),
                };
                job_meta.insert(next_job, (sub.id, 1));
                next_job += 1;
                subs.insert(
                    sub.id,
                    SubState {
                        core: sub.core,
                        func_fp: sub.func_fp,
                        client: sub.client,
                        tag: sub.tag,
                        deadline: sub.deadline,
                        max_attempts: sub.max_attempts,
                        reply: sub.reply,
                        submitted: sub.submitted,
                        first_started: None,
                        attempts: Vec::new(),
                        solver_acc: SolverStats::default(),
                        phase_acc: [0; Phase::ALL.len()],
                    },
                );
                queue.push(job);
            }
            Ok(Msg::Started { job, worker, cancel }) => {
                let Some(&(submission, attempt)) = job_meta.get(&job) else { continue };
                let Some(st) = subs.get_mut(&submission) else { continue };
                let now = Instant::now();
                if st.first_started.is_none() {
                    st.first_started = Some(now);
                }
                inflight.insert(
                    job,
                    Inflight {
                        submission,
                        trace_id: st.core.trace_id,
                        attempt,
                        worker,
                        cancel,
                        started: now,
                        deadline: st.deadline.map(|d| now + d),
                        cancelled_at: None,
                    },
                );
            }
            Ok(Msg::Finished { job, outcome }) => {
                // A `Finished` with no inflight entry is a stale result
                // from an abandoned worker: its submission already has a
                // Timeout verdict, so the late one is discarded.
                let Some(info) = inflight.remove(&job) else { continue };
                job_meta.remove(&job);
                solver_total.merge(&outcome.solver);
                if telemetry.enabled() {
                    let reg = telemetry.registry();
                    reg.counter_add(CounterId::Attempts, 1);
                    if info.attempt > 1 {
                        reg.counter_add(CounterId::Retries, 1);
                    }
                    reg.counter_add(CounterId::SolverQueries, outcome.solver.queries);
                    reg.counter_add(CounterId::CdclConflicts, outcome.solver.conflicts);
                    reg.counter_add(CounterId::CdclRestarts, outcome.solver.restarts);
                    reg.counter_add(
                        CounterId::ObligationCacheHits,
                        outcome.solver.obligation_cache_hits,
                    );
                    reg.counter_add(
                        CounterId::ObligationCacheMisses,
                        outcome.solver.obligation_cache_misses,
                    );
                    reg.counter_add(
                        CounterId::ObligationCacheStores,
                        outcome.solver.obligation_cache_stores,
                    );
                    // The per-family rewrite counters are emitted at source
                    // by the rewriter itself; only the glue-retention
                    // counter needs sampling from the solver deltas here.
                    reg.counter_add(CounterId::LbdKept, outcome.solver.lbd_kept);
                    reg.observe_us(
                        HistId::AttemptWallUs,
                        u64::try_from(outcome.time.as_micros()).unwrap_or(u64::MAX),
                    );
                }
                let Some(st) = subs.get_mut(&info.submission) else { continue };
                st.solver_acc.merge(&outcome.solver);
                for (acc, us) in st.phase_acc.iter_mut().zip(outcome.phase_us) {
                    *acc += us;
                }
                st.attempts.push(AttemptRecord {
                    attempt: info.attempt,
                    budget_scale: settings.retry.scale(info.attempt),
                    time: outcome.time,
                    result: outcome.result.clone(),
                    abandoned: false,
                });
                // A supervisor-cancelled attempt hit the *hard* deadline;
                // escalated budgets cannot outrun the wall clock, so it is
                // final regardless of the in-band failure reason.
                let may_retry = outcome.retryable
                    && info.cancelled_at.is_none()
                    && info.attempt < st.max_attempts;
                if may_retry {
                    let job = Job {
                        id: next_job,
                        submission: info.submission,
                        attempt: info.attempt + 1,
                        core: Arc::clone(&st.core),
                    };
                    job_meta.insert(next_job, (info.submission, info.attempt + 1));
                    next_job += 1;
                    queue.push(job);
                } else {
                    // A crash that survived its retries (`retry_crashes`
                    // made it retryable, and this was the last allowed
                    // attempt) is reproducible, not transient: quarantine
                    // it so the summary separates "crashed once" from
                    // "still crashing after N attempts".
                    let result = match outcome.result {
                        CorpusResult::Crashed { message, location }
                            if outcome.retryable
                                && info.attempt >= st.max_attempts
                                && info.attempt > 1 =>
                        {
                            CorpusResult::Quarantined { message, location }
                        }
                        result => result,
                    };
                    let st = subs.remove(&info.submission).expect("present above");
                    // No further attempt will run, and the worker's put
                    // happened before its `Finished` send: erase the
                    // warm-start entry outright.
                    ctxs.remove(info.submission);
                    finalize_submission(
                        info.submission,
                        st,
                        result,
                        &mut journal_writer,
                        &mut flusher,
                        &gate,
                        &mut latency,
                        &mut completed,
                        &mut disconnects,
                        config.request_events,
                        &telemetry,
                    );
                }
            }
            Ok(Msg::Drain) => draining = true,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Watchdog sweep: cancel past-deadline jobs, abandon workers that
        // ignore the cancellation past the grace period.
        let now = Instant::now();
        let mut abandon: Vec<u64> = Vec::new();
        for (&job, info) in inflight.iter_mut() {
            if info.cancelled_at.is_none() && info.deadline.is_some_and(|d| now >= d) {
                info.cancel.cancel();
                info.cancelled_at = Some(now);
                keq_trace::emit(keq_trace::Event::DeadlineCancelled {
                    func: info.trace_id,
                    attempt: info.attempt,
                });
            }
            if info.cancelled_at.is_some_and(|t| now >= t + config.grace) {
                abandon.push(job);
            }
        }
        for job in abandon {
            let info = inflight.remove(&job).expect("selected above");
            job_meta.remove(&job);
            keq_trace::emit(keq_trace::Event::WatchdogAbandoned {
                func: info.trace_id,
                attempt: info.attempt,
            });
            let Some(mut st) = subs.remove(&info.submission) else { continue };
            st.attempts.push(AttemptRecord {
                attempt: info.attempt,
                budget_scale: settings.retry.scale(info.attempt),
                time: now - info.started,
                result: CorpusResult::Timeout,
                abandoned: true,
            });
            finalize_submission(
                info.submission,
                st,
                CorpusResult::Timeout,
                &mut journal_writer,
                &mut flusher,
                &gate,
                &mut latency,
                &mut completed,
                &mut disconnects,
                config.request_events,
                &telemetry,
            );
            // The abandoned worker still *owns* the submission's context
            // (it took it before the attempt) and may try to re-insert it
            // if it ever finishes; retiring bumps the generation so that
            // late insert is dropped instead of resurrecting a dead entry.
            ctxs.retire(info.submission);
            // Retire the wedged worker (its thread stays detached) and
            // keep the pool at strength with a fresh replacement.
            retire_worker(&mut pool, info.worker);
            let id = pool.len();
            pool.push(spawn_worker(&settings, &queue, &ctxs, &config.shared, &worker_tx, id));
        }

        // Gauge refresh + one collector sample per interval. Gauges are
        // point-in-time reads of supervisor-visible state, so sampling
        // them here (not at the probe sites) keeps the hot paths free.
        if telemetry.enabled() && last_sample.elapsed() >= config.metrics.sample_interval {
            last_sample = Instant::now();
            let reg = telemetry.registry();
            let depth = gate.lock().expect("gate poisoned").depth as u64;
            reg.gauge_set(GaugeId::QueueDepth, depth);
            let busy = inflight.len() as u64;
            reg.gauge_set(GaugeId::WorkersBusy, busy);
            let active =
                pool.iter().filter(|w| !w.retired.load(Ordering::Acquire)).count() as u64;
            reg.gauge_set(GaugeId::WorkersIdle, active.saturating_sub(busy));
            let degraded = flusher.degraded
                || journal_writer.as_ref().is_some_and(|w| w.degraded);
            reg.gauge_set(GaugeId::StoreDegraded, u64::from(degraded));
            let cache = config.shared.stats();
            reg.gauge_set(GaugeId::ObcacheEntries, cache.entries);
            reg.gauge_set(GaugeId::ObcacheBytes, cache.bytes);
            telemetry.sample_now();
        }

        if draining && subs.is_empty() {
            break;
        }
    }

    queue.close();
    drop(worker_tx);
    for w in &mut pool {
        if w.retired.load(Ordering::Acquire) {
            // Abandoned (possibly parked forever): detach, never join.
            drop(w.handle.take());
        } else if let Some(h) = w.handle.take() {
            let _ = h.join();
        }
    }

    // The shutdown flush, through the same breaker-guarded path as the
    // incremental ones. Persistence stays best-effort — an I/O error costs
    // the next run's warm start, not this run's results — but it is not
    // *silent*: a failure lands in the summary (and its `summary_line`
    // warning) and was already traced as a `StoreError` event.
    flusher.finish();
    let cache_stats = config.shared.stats();
    // One closing sample so even a short run's series carry its final
    // counter state (and `samples > 0` holds whenever metrics were on).
    if telemetry.enabled() {
        let reg = telemetry.registry();
        reg.gauge_set(GaugeId::QueueDepth, 0);
        reg.gauge_set(GaugeId::WorkersBusy, 0);
        reg.gauge_set(GaugeId::ObcacheEntries, cache_stats.entries);
        reg.gauge_set(GaugeId::ObcacheBytes, cache_stats.bytes);
        telemetry.sample_now();
    }
    SchedulerFinal {
        solver: solver_total,
        cache: CacheSummary {
            evictions: cache_stats.evictions,
            entries: cache_stats.entries,
            disk_loaded: config.disk_loaded,
            disk_rejected: config.disk_rejected,
            disk_persisted: flusher.disk_persisted,
            disk_bytes: flusher.disk_bytes,
            flushes: flusher.flushes,
            flush_failures: flusher.flush_failures,
            degraded: flusher.degraded,
            persist_failed: flusher.persist_failed,
        },
        server: ServerCounters { completed, disconnects, ..ServerCounters::default() },
        latency,
        telemetry: telemetry.section(),
    }
}

/// Finalizes one submission: journal append, latency/counter accounting,
/// store-flush tick, gate release, and verdict delivery (a dead reply
/// channel counts as a disconnect — shared state is already consistent).
#[allow(clippy::too_many_arguments)]
fn finalize_submission(
    submission: u64,
    st: SubState,
    result: CorpusResult,
    journal_writer: &mut Option<JournalWriter>,
    flusher: &mut StoreFlusher,
    gate: &Mutex<Gate>,
    latency: &mut keq_trace::Histogram,
    completed: &mut u64,
    disconnects: &mut u64,
    request_events: bool,
    telemetry: &Telemetry,
) {
    journal_finalize(journal_writer, st.core.func, st.core.pass, st.func_fp, &st.attempts, &result);
    flusher.tick();
    let wall = st.submitted.elapsed();
    let wall_us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
    let queue_us = st
        .first_started
        .map(|t| u64::try_from((t - st.submitted).as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(wall_us);
    latency.add(wall_us as f64);
    *completed += 1;
    telemetry.observe_request(wall_us, latency);
    if telemetry.enabled() {
        let phase_us: Vec<(Phase, u64)> = Phase::ALL
            .iter()
            .zip(st.phase_acc)
            .filter(|&(_, us)| us > 0)
            .map(|(p, us)| (*p, us))
            .collect();
        telemetry.offer_slow(SlowObligation {
            // Hex, not a JSON number: u64 fingerprints can exceed 2^53.
            fingerprint: format!("{:016x}", st.func_fp),
            label: format!(
                "{}:{}",
                st.core.pass.name(),
                st.core.module.functions[st.core.func].name
            ),
            wall_us,
            result: result.kind().name().to_string(),
            attempts: st.attempts.len() as u64,
            retries: (st.attempts.len() as u64).saturating_sub(1),
            phase_us,
            solver: crate::report::solver_counters_of(&st.solver_acc),
        });
    }
    {
        let mut g = gate.lock().expect("gate poisoned");
        g.depth = g.depth.saturating_sub(1);
        if let Some(n) = g.per_client.get_mut(&st.client) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                g.per_client.remove(&st.client);
            }
        }
    }
    let result_name = result.kind().name();
    let delivered = st
        .reply
        .send(Completion {
            submission,
            tag: st.tag,
            result,
            attempts: st.attempts,
            queue_us,
            wall_us,
        })
        .is_ok();
    if !delivered {
        *disconnects += 1;
        if telemetry.enabled() {
            telemetry.registry().counter_add(CounterId::Disconnects, 1);
        }
    }
    if request_events && keq_trace::enabled() {
        keq_trace::emit(keq_trace::Event::RequestCompleted {
            client: st.client,
            tag: st.tag,
            result: result_name,
            queue_us,
            wall_us,
        });
    }
}

fn retire_worker(pool: &mut [Worker], worker: usize) {
    if let Some(w) = pool.get_mut(worker) {
        w.retired.store(true, Ordering::Release);
    }
}

fn spawn_worker(
    settings: &Arc<AttemptSettings>,
    queue: &Arc<ShardedQueue>,
    ctxs: &Arc<WarmStarts>,
    shared: &Arc<SharedObligationCache>,
    tx: &mpsc::Sender<Msg>,
    id: usize,
) -> Worker {
    let settings = Arc::clone(settings);
    let queue = Arc::clone(queue);
    let ctxs = Arc::clone(ctxs);
    let shared = Arc::clone(shared);
    let tx = tx.clone();
    let retired = Arc::new(AtomicBool::new(false));
    let retired_in = Arc::clone(&retired);
    let handle = std::thread::Builder::new()
        .name("keq-harness-worker".into())
        .spawn(move || {
            let _trace_guard = settings.trace.as_ref().map(keq_trace::install);
            let _metrics_guard = settings.metrics.as_ref().map(keq_trace::install_metrics);
            while !retired_in.load(Ordering::Acquire) {
                let Some(job) = queue.pop(id) else { break };
                // Decorrelated-jitter backoff before retries, *before*
                // announcing the job: the sleep must not consume the
                // attempt's deadline.
                let backoff = settings.retry.backoff_for(
                    settings.fault_plan.seed,
                    job.core.unit,
                    job.attempt,
                );
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                let cancel = CancelToken::new();
                let started = Msg::Started { job: job.id, worker: id, cancel: cancel.clone() };
                if tx.send(started).is_err() {
                    break;
                }
                let start = Instant::now();
                let outcome = run_attempt(&settings, &ctxs, &shared, &job, &cancel, start);
                if tx.send(Msg::Finished { job: job.id, outcome: Box::new(outcome) }).is_err() {
                    break;
                }
            }
        })
        .expect("spawn worker thread");
    Worker { retired, handle: Some(handle) }
}

/// Runs one attempt on the worker thread: arm the unit's injected fault,
/// take the submission's warm-start context, validate under
/// `catch_unwind`, put the context back, classify.
fn run_attempt(
    settings: &AttemptSettings,
    ctxs: &WarmStarts,
    shared: &Arc<SharedObligationCache>,
    job: &Job,
    cancel: &CancelToken,
    start: Instant,
) -> AttemptOutcome {
    let core = &job.core;
    let keq = settings.retry.options_for_attempt(settings.keq, job.attempt);
    let _fault = fault::install(&settings.fault_plan, core.unit);
    let _trace_ctx = keq_trace::with_attempt(core.trace_id, job.attempt);
    keq_trace::emit(keq_trace::Event::AttemptStart {
        func: core.trace_id,
        attempt: job.attempt,
        budget_scale: settings.retry.scale(job.attempt),
    });
    let (generation, mut ctx) = if settings.warm_start {
        let (generation, ctx) = ctxs.take(job.submission);
        (generation, ctx.unwrap_or_default())
    } else {
        (0, ValidationContext::new())
    };
    // (Re-)attach the run's shared obligation cache on every attempt:
    // fresh contexts start detached, and a warm-started context carries
    // whatever was attached last time.
    ctx.attach_obligation_cache(Some(Arc::clone(shared)));
    // The warm-start context carries cumulative solver statistics from
    // earlier attempts; snapshot them so this attempt reports its delta.
    let stats_before = ctx.solver.stats();
    // The context rides inside the closure so a panic mid-validation drops
    // it during unwind: a context of unknown consistency is never reused
    // (and panics are not retryable anyway).
    let opts = PassOptions {
        isel: settings.isel,
        vc: settings.vc,
        ra: settings.ra,
        gvn: settings.gvn,
    };
    let pass = core.pass;
    let module_in = Arc::clone(&core.module);
    let func_idx = core.func;
    let outcome = panic_capture::run_caught(move || {
        let r = keq_isel::validate_pass_with_context(
            pass,
            &module_in,
            &module_in.functions[func_idx],
            opts,
            keq,
            Some(cancel),
            &mut ctx,
        );
        (r, ctx)
    });
    let mut solver = SolverStats::default();
    let (result, retryable) = match outcome {
        Ok((Ok(report), ctx)) => {
            solver = ctx.solver.stats().since(&stats_before);
            if settings.warm_start {
                // Dropped, not inserted, if the supervisor retired the
                // submission while this attempt ran (watchdog abandonment).
                ctxs.put(job.submission, generation, ctx);
            }
            classify(&report.verdict)
        }
        // Unsupported functions never get better with bigger budgets.
        Ok((Err(_), ctx)) => {
            solver = ctx.solver.stats().since(&stats_before);
            (CorpusResult::Other, false)
        }
        Err(panic) => {
            if keq_trace::enabled() {
                keq_trace::emit(keq_trace::Event::PanicCaptured {
                    func: core.trace_id,
                    attempt: job.attempt,
                    message: panic.message.clone(),
                    location: panic.location.clone(),
                });
            }
            // Crash-class retryability is opt-in: panics are only worth a
            // second attempt when the fault surface is known to be
            // transient (fault campaigns, flaky external tooling).
            (
                CorpusResult::Crashed { message: panic.message, location: panic.location },
                settings.retry.retry_crashes,
            )
        }
    };
    let time = start.elapsed();
    keq_trace::emit(keq_trace::Event::AttemptEnd {
        func: core.trace_id,
        attempt: job.attempt,
        result: result.kind().name(),
        dur_us: u64::try_from(time.as_micros()).unwrap_or(u64::MAX),
    });
    // Drain this thread's phase accumulator so the attempt's span times
    // travel with its outcome (and the next attempt on this worker starts
    // from zero). All-zero when metrics are off. Spans dropped during a
    // panic unwind still landed in the accumulator, so even a crashed
    // attempt reports where its time went.
    let phase_us = keq_trace::take_phase_totals();
    AttemptOutcome { result, retryable, time, solver, phase_us }
}

/// Maps a verdict to its Fig. 6 row and decides whether escalated budgets
/// could change it.
fn classify(verdict: &Verdict) -> (CorpusResult, bool) {
    match verdict {
        Verdict::Equivalent | Verdict::Refines => (CorpusResult::Succeeded, false),
        Verdict::NotValidated(fail) => {
            let retryable = matches!(
                fail.reason,
                FailureReason::FuelExhausted { .. }
                    | FailureReason::TimeLimit
                    | FailureReason::SolverBudget(_)
            );
            let result = match fail.reason.failure_class() {
                keq_core::FailureClass::Timeout => CorpusResult::Timeout,
                keq_core::FailureClass::OutOfMemory => CorpusResult::OutOfMemory,
                keq_core::FailureClass::Other => CorpusResult::Other,
            };
            (result, retryable)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The stale-context resurrection regression: a watchdog-abandoned
    /// worker's detached thread finishes *after* the supervisor retired
    /// its submission. Its put must be dropped — before the generation
    /// check, the late insert parked a dead submission's term bank in the
    /// map for the rest of the run.
    #[test]
    fn late_put_after_retire_is_dropped() {
        let warm = WarmStarts::default();
        warm.put(3, 0, ValidationContext::new());
        let (generation, ctx) = warm.take(3);
        assert!(ctx.is_some());

        // Supervisor abandons the attempt and finalizes the submission.
        warm.retire(3);

        // The detached worker eventually finishes and puts "back".
        warm.put(3, generation, ValidationContext::new());
        assert!(!warm.contains(3), "retired submission must not resurrect its context");

        // And a *current*-generation put after the retire still works
        // (not relevant to finalized submissions, but proves retire only
        // invalidates earlier takes, not the map entry forever).
        let (generation, ctx) = warm.take(3);
        assert!(ctx.is_none());
        warm.put(3, generation, ValidationContext::new());
        assert!(warm.contains(3));
    }

    #[test]
    fn put_with_matching_generation_round_trips() {
        let warm = WarmStarts::default();
        let (generation, ctx) = warm.take(7);
        assert_eq!(generation, 0);
        assert!(ctx.is_none(), "fresh submission has no context yet");
        warm.put(7, generation, ValidationContext::new());
        assert!(warm.contains(7));

        // A take hands the context out exclusively.
        let (generation, ctx) = warm.take(7);
        assert!(ctx.is_some());
        assert!(!warm.contains(7));
        warm.put(7, generation, ctx.unwrap());
        assert!(warm.contains(7));
    }

    #[test]
    fn retire_is_per_submission() {
        let warm = WarmStarts::default();
        let (g1, _) = warm.take(1);
        let (g2, _) = warm.take(2);
        warm.retire(1);
        warm.put(1, g1, ValidationContext::new());
        warm.put(2, g2, ValidationContext::new());
        assert!(!warm.contains(1), "retired submission dropped");
        assert!(warm.contains(2), "unrelated submission unaffected");
    }

    /// Delivered-result cleanup erases the whole entry — generation
    /// included — so a long-lived server's map does not grow with every
    /// request ever served. Safe because submission ids are never reused.
    #[test]
    fn remove_erases_the_entry_entirely() {
        let warm = WarmStarts::default();
        let (g, _) = warm.take(9);
        warm.put(9, g, ValidationContext::new());
        warm.retire(9); // tombstone exists now
        assert!(warm.tracked(9));
        warm.remove(9);
        assert!(!warm.tracked(9), "remove leaves nothing behind");
    }

    #[test]
    fn sharded_queue_round_trips_and_steals() {
        let core = Arc::new(JobCore {
            module: Arc::new(Module::default()),
            func: 0,
            pass: PassId::Isel,
            unit: 0,
            trace_id: 0,
        });
        let q = ShardedQueue::new(2);
        for i in 0..4u64 {
            q.push(Job { id: i, submission: i, attempt: 1, core: Arc::clone(&core) });
        }
        // Worker 0's home shard holds even submissions; it drains its own
        // in FIFO order first, then steals the odd ones.
        let mut seen: Vec<u64> = (0..4).map(|_| q.pop(0).expect("job").id).collect();
        assert_eq!(seen[0], 0, "home shard served FIFO");
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3], "every job claimed exactly once");
        q.close();
        assert!(q.pop(0).is_none(), "closed and drained");
        assert!(q.pop(1).is_none());
    }

    #[test]
    fn sharded_queue_wakes_blocked_workers_on_close() {
        let q = Arc::new(ShardedQueue::new(4));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop(3));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(waiter.join().expect("waiter thread").is_none());
    }
}
