//! Per-function results of a supervised corpus run.

use std::time::Duration;

use keq_smt::SolverStats;

/// Result category of one validated function — the paper's Fig. 6 rows
/// plus [`CorpusResult::Crashed`], the harness's fault-isolation row for
/// functions whose validation panicked instead of returning a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusResult {
    /// Validated (equivalent or refines).
    Succeeded,
    /// Resource exhaustion, solving-time flavor: step fuel, wall-clock
    /// limits, conflict budgets, or supervisor cancellation.
    Timeout,
    /// Resource exhaustion, memory flavor (term budget).
    OutOfMemory,
    /// The validation pipeline panicked; the supervisor isolated the panic
    /// and kept the corpus run alive.
    Crashed {
        /// The captured panic message (payload only; the source location
        /// is a separate field).
        message: String,
        /// `file:line:column` of the panic site, when the panic hook saw
        /// it.
        location: Option<String>,
    },
    /// Any other failure (genuine mismatches, unsupported functions, …).
    Other,
}

impl CorpusResult {
    /// The payload-free category, for counting and table rendering.
    pub fn kind(&self) -> ResultKind {
        match self {
            CorpusResult::Succeeded => ResultKind::Succeeded,
            CorpusResult::Timeout => ResultKind::Timeout,
            CorpusResult::OutOfMemory => ResultKind::OutOfMemory,
            CorpusResult::Crashed { .. } => ResultKind::Crashed,
            CorpusResult::Other => ResultKind::Other,
        }
    }
}

/// [`CorpusResult`] without payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResultKind {
    /// Validated.
    Succeeded,
    /// Timeout-class resource exhaustion.
    Timeout,
    /// Memory-class resource exhaustion.
    OutOfMemory,
    /// Isolated panic.
    Crashed,
    /// Everything else.
    Other,
}

impl ResultKind {
    /// Stable wire name, shared by trace events and `RUN_REPORT.json`.
    pub fn name(self) -> &'static str {
        match self {
            ResultKind::Succeeded => "succeeded",
            ResultKind::Timeout => "timeout",
            ResultKind::OutOfMemory => "out_of_memory",
            ResultKind::Crashed => "crashed",
            ResultKind::Other => "other",
        }
    }
}

/// One attempt at validating one function.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The budget multiplier this attempt ran under
    /// (`retry.factor^(attempt-1)`).
    pub budget_scale: u64,
    /// Wall-clock time of this attempt (as observed by the supervisor for
    /// abandoned attempts).
    pub time: Duration,
    /// This attempt's classification.
    pub result: CorpusResult,
    /// Whether the watchdog had to abandon the worker (it never
    /// acknowledged cancellation within the grace period).
    pub abandoned: bool,
}

impl AttemptRecord {
    /// The captured panic source location of a crashed attempt, as its own
    /// field (distinct from the message).
    pub fn panic_location(&self) -> Option<&str> {
        match &self.result {
            CorpusResult::Crashed { location, .. } => location.as_deref(),
            _ => None,
        }
    }
}

/// The final record of one corpus function.
#[derive(Debug, Clone)]
pub struct CorpusRow {
    /// Function name.
    pub name: String,
    /// Index of the function in the validated module.
    pub index: usize,
    /// Instruction count (the Fig. 7 code-size axis).
    pub size: usize,
    /// Total validation wall-clock time across all attempts.
    pub time: Duration,
    /// Final category (from the last attempt).
    pub result: CorpusResult,
    /// Every attempt, in order.
    pub attempts: Vec<AttemptRecord>,
}

/// Run-level state of the shared obligation cache: in-memory shape at the
/// end of the run plus the on-disk warm-start traffic. Hit/miss/store
/// counts live in [`SolverStats`] (they are attributed per attempt, like
/// every other solver counter); this records what the solver cannot see —
/// the cache's own bookkeeping and its persistence round-trip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Entries evicted by the byte bound during the run.
    pub evictions: u64,
    /// Entries resident when the run finished.
    pub entries: u64,
    /// Records accepted from the on-disk store at startup.
    pub disk_loaded: u64,
    /// Records rejected at startup (bad checksum, torn tail, unknown
    /// verdict) — each skipped individually, never fatal.
    pub disk_rejected: u64,
    /// Records written back at shutdown.
    pub disk_persisted: u64,
    /// Size of the on-disk store after the shutdown write, in bytes.
    pub disk_bytes: u64,
}

/// Aggregated per-function rows, ordered by function index.
#[derive(Debug, Clone, Default)]
pub struct CorpusSummary {
    /// Per-function rows.
    pub rows: Vec<CorpusRow>,
    /// Merged solver statistics across every delivered attempt (deltas
    /// accumulated per attempt via [`SolverStats::since`] and summed with
    /// [`SolverStats::merge`]; abandoned workers' stale late results are
    /// excluded, like their rows).
    pub solver: SolverStats,
    /// Shared obligation-cache state (zeros when the run had no cache).
    pub cache: CacheSummary,
}

impl CorpusSummary {
    /// Count of a category.
    pub fn count(&self, kind: ResultKind) -> usize {
        self.rows.iter().filter(|x| x.result.kind() == kind).count()
    }

    /// Total functions considered.
    pub fn total(&self) -> usize {
        self.rows.len()
    }

    /// Fraction validated.
    pub fn success_rate(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.count(ResultKind::Succeeded) as f64 / self.total() as f64
    }

    /// Total attempts across all rows (≥ total when retries fired).
    pub fn total_attempts(&self) -> usize {
        self.rows.iter().map(|r| r.attempts.len()).sum()
    }

    /// Fraction of shared obligation-cache lookups that hit (0.0 when the
    /// run performed none).
    pub fn obligation_cache_hit_ratio(&self) -> f64 {
        let hits = self.solver.obligation_cache_hits;
        let lookups = hits + self.solver.obligation_cache_misses;
        if lookups == 0 {
            return 0.0;
        }
        hits as f64 / lookups as f64
    }

    /// The end-of-run summary line: the Fig. 6 outcome counts plus the
    /// run-level solver reuse counters (cache evictions, session prefix
    /// hits, learnt clauses retained) and the shared obligation cache's
    /// hit ratio and on-disk footprint.
    pub fn summary_line(&self) -> String {
        format!(
            "corpus: {} functions, {} attempts | succeeded {} timeout {} oom {} crashed {} \
             other {} | solver: queries {} cache_hits {} cache_evictions {} prefix_hits {} \
             clauses_retained {} | obcache: hits {} misses {} hit_ratio {:.2} store_bytes {}",
            self.total(),
            self.total_attempts(),
            self.count(ResultKind::Succeeded),
            self.count(ResultKind::Timeout),
            self.count(ResultKind::OutOfMemory),
            self.count(ResultKind::Crashed),
            self.count(ResultKind::Other),
            self.solver.queries,
            self.solver.cache_hits,
            self.solver.cache_evictions,
            self.solver.prefix_hits,
            self.solver.clauses_retained,
            self.solver.obligation_cache_hits,
            self.solver.obligation_cache_misses,
            self.obligation_cache_hit_ratio(),
            self.cache.disk_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: usize, result: CorpusResult) -> CorpusRow {
        CorpusRow {
            name: format!("f{index}"),
            index,
            size: 1,
            time: Duration::ZERO,
            result,
            attempts: vec![],
        }
    }

    #[test]
    fn counts_by_kind() {
        let s = CorpusSummary {
            rows: vec![
                row(0, CorpusResult::Succeeded),
                row(
                    1,
                    CorpusResult::Crashed {
                        message: "boom".into(),
                        location: Some("x.rs:1:1".into()),
                    },
                ),
                row(2, CorpusResult::Succeeded),
            ],
            ..CorpusSummary::default()
        };
        assert_eq!(s.count(ResultKind::Succeeded), 2);
        assert_eq!(s.count(ResultKind::Crashed), 1);
        assert_eq!(s.total(), 3);
        assert!((s.success_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_line_surfaces_solver_reuse_counters() {
        let mut s =
            CorpusSummary { rows: vec![row(0, CorpusResult::Succeeded)], ..Default::default() };
        s.solver.cache_evictions = 3;
        s.solver.prefix_hits = 17;
        s.solver.clauses_retained = 41;
        s.solver.obligation_cache_hits = 30;
        s.solver.obligation_cache_misses = 10;
        s.cache.disk_bytes = 2_048;
        let line = s.summary_line();
        assert!(line.contains("cache_evictions 3"), "{line}");
        assert!(line.contains("prefix_hits 17"), "{line}");
        assert!(line.contains("clauses_retained 41"), "{line}");
        assert!(line.contains("obcache: hits 30 misses 10 hit_ratio 0.75"), "{line}");
        assert!(line.contains("store_bytes 2048"), "{line}");
    }

    #[test]
    fn hit_ratio_of_a_cacheless_run_is_zero() {
        let s = CorpusSummary::default();
        assert_eq!(s.obligation_cache_hit_ratio(), 0.0);
        assert!(s.summary_line().contains("hit_ratio 0.00"), "{}", s.summary_line());
    }

    #[test]
    fn panic_location_is_a_distinct_field() {
        let rec = AttemptRecord {
            attempt: 1,
            budget_scale: 1,
            time: Duration::ZERO,
            result: CorpusResult::Crashed {
                message: "boom".into(),
                location: Some("crates/x/src/lib.rs:9:5".into()),
            },
            abandoned: false,
        };
        assert_eq!(rec.panic_location(), Some("crates/x/src/lib.rs:9:5"));
    }
}
