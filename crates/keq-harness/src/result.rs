//! Per-function results of a supervised corpus run.

use std::time::Duration;

use keq_smt::SolverStats;

/// Result category of one validated function — the paper's Fig. 6 rows
/// plus [`CorpusResult::Crashed`], the harness's fault-isolation row for
/// functions whose validation panicked instead of returning a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusResult {
    /// Validated (equivalent or refines).
    Succeeded,
    /// Resource exhaustion, solving-time flavor: step fuel, wall-clock
    /// limits, conflict budgets, or supervisor cancellation.
    Timeout,
    /// Resource exhaustion, memory flavor (term budget).
    OutOfMemory,
    /// The validation pipeline panicked; the supervisor isolated the panic
    /// and kept the corpus run alive.
    Crashed {
        /// The captured panic message (payload only; the source location
        /// is a separate field).
        message: String,
        /// `file:line:column` of the panic site, when the panic hook saw
        /// it.
        location: Option<String>,
    },
    /// Still crashing on its last allowed attempt under a crash-retrying
    /// policy ([`crate::RetryPolicy::retry_crashes`]): the function is set
    /// aside as reproducibly fault-triggering, distinct from a one-off
    /// [`CorpusResult::Crashed`].
    Quarantined {
        /// The captured panic message of the final attempt.
        message: String,
        /// `file:line:column` of the final panic site, when available.
        location: Option<String>,
    },
    /// Any other failure (genuine mismatches, unsupported functions, …).
    Other,
}

impl CorpusResult {
    /// The payload-free category, for counting and table rendering.
    pub fn kind(&self) -> ResultKind {
        match self {
            CorpusResult::Succeeded => ResultKind::Succeeded,
            CorpusResult::Timeout => ResultKind::Timeout,
            CorpusResult::OutOfMemory => ResultKind::OutOfMemory,
            CorpusResult::Crashed { .. } => ResultKind::Crashed,
            CorpusResult::Quarantined { .. } => ResultKind::Quarantined,
            CorpusResult::Other => ResultKind::Other,
        }
    }
}

/// [`CorpusResult`] without payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResultKind {
    /// Validated.
    Succeeded,
    /// Timeout-class resource exhaustion.
    Timeout,
    /// Memory-class resource exhaustion.
    OutOfMemory,
    /// Isolated panic.
    Crashed,
    /// Crashed on every allowed attempt.
    Quarantined,
    /// Everything else.
    Other,
}

impl ResultKind {
    /// Stable wire name, shared by trace events and `RUN_REPORT.json`.
    pub fn name(self) -> &'static str {
        match self {
            ResultKind::Succeeded => "succeeded",
            ResultKind::Timeout => "timeout",
            ResultKind::OutOfMemory => "out_of_memory",
            ResultKind::Crashed => "crashed",
            ResultKind::Quarantined => "quarantined",
            ResultKind::Other => "other",
        }
    }
}

/// One attempt at validating one function.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The budget multiplier this attempt ran under
    /// (`retry.factor^(attempt-1)`).
    pub budget_scale: u64,
    /// Wall-clock time of this attempt (as observed by the supervisor for
    /// abandoned attempts).
    pub time: Duration,
    /// This attempt's classification.
    pub result: CorpusResult,
    /// Whether the watchdog had to abandon the worker (it never
    /// acknowledged cancellation within the grace period).
    pub abandoned: bool,
}

impl AttemptRecord {
    /// The captured panic source location of a crashed attempt, as its own
    /// field (distinct from the message).
    pub fn panic_location(&self) -> Option<&str> {
        match &self.result {
            CorpusResult::Crashed { location, .. }
            | CorpusResult::Quarantined { location, .. } => location.as_deref(),
            _ => None,
        }
    }
}

/// The final record of one corpus function.
#[derive(Debug, Clone)]
pub struct CorpusRow {
    /// Function name.
    pub name: String,
    /// Index of the function in the validated module.
    pub index: usize,
    /// Which validated pass the verdict is about.
    pub pass: keq_isel::PassId,
    /// Instruction count (the Fig. 7 code-size axis).
    pub size: usize,
    /// Total validation wall-clock time across all attempts.
    pub time: Duration,
    /// Final category (from the last attempt).
    pub result: CorpusResult,
    /// Whether the verdict was recovered from the write-ahead journal by a
    /// resumed run. Recovered rows carry the killed run's journal-recorded
    /// wall time and attempt count but no per-attempt records (those
    /// observations died with the killed process).
    pub recovered: bool,
    /// Every attempt, in order (empty for recovered rows).
    pub attempts: Vec<AttemptRecord>,
}

/// Run-level state of the shared obligation cache: in-memory shape at the
/// end of the run plus the on-disk warm-start traffic. Hit/miss/store
/// counts live in [`SolverStats`] (they are attributed per attempt, like
/// every other solver counter); this records what the solver cannot see —
/// the cache's own bookkeeping and its persistence round-trip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Entries evicted by the byte bound during the run.
    pub evictions: u64,
    /// Entries resident when the run finished.
    pub entries: u64,
    /// Records accepted from the on-disk store at startup.
    pub disk_loaded: u64,
    /// Records rejected at startup (bad checksum, torn tail, unknown
    /// verdict) — each skipped individually, never fatal.
    pub disk_rejected: u64,
    /// Records written back across all flushes of the run (incremental
    /// batches plus the final shutdown flush).
    pub disk_persisted: u64,
    /// Size of the on-disk store after the last successful flush, bytes.
    pub disk_bytes: u64,
    /// Successful store flushes.
    pub flushes: u64,
    /// Failed flush attempts (each emitted a `StoreError` trace event).
    pub flush_failures: u64,
    /// Whether consecutive flush failures tripped the circuit breaker and
    /// the store degraded to memory-only for the rest of the run.
    pub degraded: bool,
    /// Whether the *final* persist failed (or was skipped because the
    /// breaker had tripped): this run's remaining dirty verdicts never
    /// reached disk, so the next run starts colder than the summary's
    /// in-memory counters suggest.
    pub persist_failed: bool,
}

/// What resume recovered from the write-ahead verdict journal before the
/// run scheduled any work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumeSummary {
    /// Whether the run was asked to resume from a journal.
    pub enabled: bool,
    /// Functions skipped because a journal record already decided them.
    pub skipped: u64,
    /// Valid records recovered from the journal (≥ `skipped`; records for
    /// functions outside this corpus are recovered but skip nothing).
    pub recovered: u64,
    /// Corrupt records skipped fail-soft while loading the journal.
    pub corrupt: u64,
}

/// Aggregated per-function rows, ordered by function index.
#[derive(Debug, Clone, Default)]
pub struct CorpusSummary {
    /// Per-function rows.
    pub rows: Vec<CorpusRow>,
    /// Merged solver statistics across every delivered attempt (deltas
    /// accumulated per attempt via [`SolverStats::since`] and summed with
    /// [`SolverStats::merge`]; abandoned workers' stale late results are
    /// excluded, like their rows).
    pub solver: SolverStats,
    /// Shared obligation-cache state (zeros when the run had no cache).
    pub cache: CacheSummary,
    /// Write-ahead journal recovery (all-default when the run had no
    /// journal or was not resuming).
    pub resume: ResumeSummary,
    /// Live-telemetry summary: collector samples taken and the top-K
    /// slow-obligation table (all-default when metrics were disabled).
    pub telemetry: keq_trace::TelemetrySection,
}

impl CorpusSummary {
    /// Count of a category.
    pub fn count(&self, kind: ResultKind) -> usize {
        self.rows.iter().filter(|x| x.result.kind() == kind).count()
    }

    /// Total functions considered.
    pub fn total(&self) -> usize {
        self.rows.len()
    }

    /// Fraction validated.
    pub fn success_rate(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.count(ResultKind::Succeeded) as f64 / self.total() as f64
    }

    /// Total attempts across all rows (≥ total when retries fired).
    pub fn total_attempts(&self) -> usize {
        self.rows.iter().map(|r| r.attempts.len()).sum()
    }

    /// Fraction of shared obligation-cache lookups that hit (0.0 when the
    /// run performed none).
    pub fn obligation_cache_hit_ratio(&self) -> f64 {
        let hits = self.solver.obligation_cache_hits;
        let lookups = hits + self.solver.obligation_cache_misses;
        if lookups == 0 {
            return 0.0;
        }
        hits as f64 / lookups as f64
    }

    /// The run's per-attempt wall-time distribution in the report's
    /// log-bucketed shape (the same buckets the server's request latency
    /// uses, so batch and server quantiles are directly comparable).
    /// Recovered rows carry no per-attempt observations and contribute
    /// nothing.
    pub fn attempt_latency_histogram(&self) -> keq_trace::Histogram {
        let mut h = keq_trace::Histogram::log_us("attempt wall time (us)");
        for row in &self.rows {
            for a in &row.attempts {
                h.add(u64::try_from(a.time.as_micros()).unwrap_or(u64::MAX) as f64);
            }
        }
        h
    }

    /// The end-of-run summary line: the Fig. 6 outcome counts plus the
    /// run-level solver reuse counters (cache evictions, session prefix
    /// hits, learnt clauses retained), the obligation-normalization totals
    /// (rules fired, nodes saved), the shared obligation cache's
    /// hit ratio and on-disk footprint, and the attempt-latency quantiles
    /// (log-bucket estimates — the same way the server reports request
    /// latency). Resume recovery and storage degradation, when they
    /// happened, are appended as extra segments so a persist failure can
    /// never pass silently.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "corpus: {} functions, {} attempts | succeeded {} timeout {} oom {} crashed {} \
             quarantined {} other {} | solver: queries {} cache_hits {} cache_evictions {} \
             prefix_hits {} clauses_retained {} | rewrite: rules_fired {} nodes_saved {} \
             lbd_kept {} | obcache: hits {} misses {} hit_ratio {:.2} \
             store_bytes {}",
            self.total(),
            self.total_attempts(),
            self.count(ResultKind::Succeeded),
            self.count(ResultKind::Timeout),
            self.count(ResultKind::OutOfMemory),
            self.count(ResultKind::Crashed),
            self.count(ResultKind::Quarantined),
            self.count(ResultKind::Other),
            self.solver.queries,
            self.solver.cache_hits,
            self.solver.cache_evictions,
            self.solver.prefix_hits,
            self.solver.clauses_retained,
            self.solver.rewrite_rules_fired,
            self.solver.rewrite_nodes_saved,
            self.solver.lbd_kept,
            self.solver.obligation_cache_hits,
            self.solver.obligation_cache_misses,
            self.obligation_cache_hit_ratio(),
            self.cache.disk_bytes,
        );
        let lat = self.attempt_latency_histogram();
        if let (Some(p50), Some(p90), Some(p99)) = (lat.p50(), lat.p90(), lat.p99()) {
            line.push_str(&format!(
                " | latency: p50_us {:.0} p90_us {:.0} p99_us {:.0}",
                p50, p90, p99
            ));
        }
        if self.resume.enabled {
            line.push_str(&format!(
                " | resume: skipped {} recovered {} corrupt {}",
                self.resume.skipped, self.resume.recovered, self.resume.corrupt,
            ));
        }
        if self.cache.degraded {
            line.push_str(&format!(
                " | WARNING: obligation store degraded to memory-only after {} flush failures",
                self.cache.flush_failures,
            ));
        } else if self.cache.persist_failed {
            line.push_str(
                " | WARNING: obligation store persist failed; proved verdicts not saved",
            );
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: usize, result: CorpusResult) -> CorpusRow {
        CorpusRow {
            pass: keq_isel::PassId::Isel,
            name: format!("f{index}"),
            index,
            size: 1,
            time: Duration::ZERO,
            result,
            recovered: false,
            attempts: vec![],
        }
    }

    #[test]
    fn counts_by_kind() {
        let s = CorpusSummary {
            rows: vec![
                row(0, CorpusResult::Succeeded),
                row(
                    1,
                    CorpusResult::Crashed {
                        message: "boom".into(),
                        location: Some("x.rs:1:1".into()),
                    },
                ),
                row(2, CorpusResult::Succeeded),
            ],
            ..CorpusSummary::default()
        };
        assert_eq!(s.count(ResultKind::Succeeded), 2);
        assert_eq!(s.count(ResultKind::Crashed), 1);
        assert_eq!(s.total(), 3);
        assert!((s.success_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_line_surfaces_solver_reuse_counters() {
        let mut s =
            CorpusSummary { rows: vec![row(0, CorpusResult::Succeeded)], ..Default::default() };
        s.solver.cache_evictions = 3;
        s.solver.prefix_hits = 17;
        s.solver.clauses_retained = 41;
        s.solver.obligation_cache_hits = 30;
        s.solver.obligation_cache_misses = 10;
        s.cache.disk_bytes = 2_048;
        let line = s.summary_line();
        assert!(line.contains("cache_evictions 3"), "{line}");
        assert!(line.contains("prefix_hits 17"), "{line}");
        assert!(line.contains("clauses_retained 41"), "{line}");
        assert!(line.contains("obcache: hits 30 misses 10 hit_ratio 0.75"), "{line}");
        assert!(line.contains("store_bytes 2048"), "{line}");
    }

    #[test]
    fn hit_ratio_of_a_cacheless_run_is_zero() {
        let s = CorpusSummary::default();
        assert_eq!(s.obligation_cache_hit_ratio(), 0.0);
        assert!(s.summary_line().contains("hit_ratio 0.00"), "{}", s.summary_line());
    }

    #[test]
    fn quarantined_is_counted_separately_from_crashed() {
        let s = CorpusSummary {
            rows: vec![
                row(0, CorpusResult::Crashed { message: "boom".into(), location: None }),
                row(1, CorpusResult::Quarantined { message: "boom".into(), location: None }),
            ],
            ..CorpusSummary::default()
        };
        assert_eq!(s.count(ResultKind::Crashed), 1);
        assert_eq!(s.count(ResultKind::Quarantined), 1);
        let line = s.summary_line();
        assert!(line.contains("crashed 1 quarantined 1"), "{line}");
    }

    #[test]
    fn resume_and_store_failures_surface_in_summary_line() {
        let mut s =
            CorpusSummary { rows: vec![row(0, CorpusResult::Succeeded)], ..Default::default() };
        assert!(!s.summary_line().contains("resume:"), "quiet when not resuming");
        s.resume = ResumeSummary { enabled: true, skipped: 3, recovered: 4, corrupt: 1 };
        s.cache.persist_failed = true;
        let line = s.summary_line();
        assert!(line.contains("resume: skipped 3 recovered 4 corrupt 1"), "{line}");
        assert!(line.contains("WARNING: obligation store persist failed"), "{line}");

        s.cache.degraded = true;
        s.cache.flush_failures = 5;
        let line = s.summary_line();
        assert!(line.contains("degraded to memory-only after 5 flush failures"), "{line}");
    }

    #[test]
    fn summary_line_surfaces_attempt_latency_quantiles() {
        let mut r = row(0, CorpusResult::Succeeded);
        r.attempts = vec![AttemptRecord {
            attempt: 1,
            budget_scale: 1,
            time: Duration::from_micros(900),
            result: CorpusResult::Succeeded,
            abandoned: false,
        }];
        let s = CorpusSummary { rows: vec![r], ..Default::default() };
        let line = s.summary_line();
        assert!(line.contains("latency: p50_us"), "{line}");
        assert!(line.contains("p90_us"), "{line}");
        assert!(line.contains("p99_us"), "{line}");
        assert_eq!(s.attempt_latency_histogram().total(), 1);

        // Attempt-less summaries (all rows recovered) skip the segment
        // rather than inventing numbers.
        let quiet = CorpusSummary { rows: vec![row(0, CorpusResult::Succeeded)], ..Default::default() };
        assert!(!quiet.summary_line().contains("latency:"), "{}", quiet.summary_line());
    }

    #[test]
    fn panic_location_is_a_distinct_field() {
        let rec = AttemptRecord {
            attempt: 1,
            budget_scale: 1,
            time: Duration::ZERO,
            result: CorpusResult::Crashed {
                message: "boom".into(),
                location: Some("crates/x/src/lib.rs:9:5".into()),
            },
            abandoned: false,
        };
        assert_eq!(rec.panic_location(), Some("crates/x/src/lib.rs:9:5"));
    }
}
