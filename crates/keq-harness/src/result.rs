//! Per-function results of a supervised corpus run.

use std::time::Duration;

/// Result category of one validated function — the paper's Fig. 6 rows
/// plus [`CorpusResult::Crashed`], the harness's fault-isolation row for
/// functions whose validation panicked instead of returning a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusResult {
    /// Validated (equivalent or refines).
    Succeeded,
    /// Resource exhaustion, solving-time flavor: step fuel, wall-clock
    /// limits, conflict budgets, or supervisor cancellation.
    Timeout,
    /// Resource exhaustion, memory flavor (term budget).
    OutOfMemory,
    /// The validation pipeline panicked; the supervisor isolated the panic
    /// and kept the corpus run alive.
    Crashed {
        /// The captured panic message (with source location when the panic
        /// hook saw it).
        message: String,
    },
    /// Any other failure (genuine mismatches, unsupported functions, …).
    Other,
}

impl CorpusResult {
    /// The payload-free category, for counting and table rendering.
    pub fn kind(&self) -> ResultKind {
        match self {
            CorpusResult::Succeeded => ResultKind::Succeeded,
            CorpusResult::Timeout => ResultKind::Timeout,
            CorpusResult::OutOfMemory => ResultKind::OutOfMemory,
            CorpusResult::Crashed { .. } => ResultKind::Crashed,
            CorpusResult::Other => ResultKind::Other,
        }
    }
}

/// [`CorpusResult`] without payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResultKind {
    /// Validated.
    Succeeded,
    /// Timeout-class resource exhaustion.
    Timeout,
    /// Memory-class resource exhaustion.
    OutOfMemory,
    /// Isolated panic.
    Crashed,
    /// Everything else.
    Other,
}

/// One attempt at validating one function.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The budget multiplier this attempt ran under
    /// (`retry.factor^(attempt-1)`).
    pub budget_scale: u64,
    /// Wall-clock time of this attempt (as observed by the supervisor for
    /// abandoned attempts).
    pub time: Duration,
    /// This attempt's classification.
    pub result: CorpusResult,
    /// Whether the watchdog had to abandon the worker (it never
    /// acknowledged cancellation within the grace period).
    pub abandoned: bool,
}

/// The final record of one corpus function.
#[derive(Debug, Clone)]
pub struct CorpusRow {
    /// Function name.
    pub name: String,
    /// Index of the function in the validated module.
    pub index: usize,
    /// Instruction count (the Fig. 7 code-size axis).
    pub size: usize,
    /// Total validation wall-clock time across all attempts.
    pub time: Duration,
    /// Final category (from the last attempt).
    pub result: CorpusResult,
    /// Every attempt, in order.
    pub attempts: Vec<AttemptRecord>,
}

/// Aggregated per-function rows, ordered by function index.
#[derive(Debug, Clone, Default)]
pub struct CorpusSummary {
    /// Per-function rows.
    pub rows: Vec<CorpusRow>,
}

impl CorpusSummary {
    /// Count of a category.
    pub fn count(&self, kind: ResultKind) -> usize {
        self.rows.iter().filter(|x| x.result.kind() == kind).count()
    }

    /// Total functions considered.
    pub fn total(&self) -> usize {
        self.rows.len()
    }

    /// Fraction validated.
    pub fn success_rate(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.count(ResultKind::Succeeded) as f64 / self.total() as f64
    }

    /// Total attempts across all rows (≥ total when retries fired).
    pub fn total_attempts(&self) -> usize {
        self.rows.iter().map(|r| r.attempts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: usize, result: CorpusResult) -> CorpusRow {
        CorpusRow {
            name: format!("f{index}"),
            index,
            size: 1,
            time: Duration::ZERO,
            result,
            attempts: vec![],
        }
    }

    #[test]
    fn counts_by_kind() {
        let s = CorpusSummary {
            rows: vec![
                row(0, CorpusResult::Succeeded),
                row(1, CorpusResult::Crashed { message: "boom".into() }),
                row(2, CorpusResult::Succeeded),
            ],
        };
        assert_eq!(s.count(ResultKind::Succeeded), 2);
        assert_eq!(s.count(ResultKind::Crashed), 1);
        assert_eq!(s.total(), 3);
        assert!((s.success_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
