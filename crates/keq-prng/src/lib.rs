//! # keq-prng — self-contained deterministic randomness
//!
//! The repository must build and test with no network access, so nothing in
//! the workspace may depend on crates.io randomness. This crate provides the
//! two standard small generators the workload generator and harnesses need:
//!
//! * [`SplitMix64`] — a one-word mixer, used for seeding and for stateless
//!   per-index hashing (e.g. the fault-injection plan);
//! * [`Prng`] — xoshiro256++, the workhorse stream generator.
//!
//! Both are deterministic across platforms and Rust versions: identical
//! seeds produce identical streams, which keeps every corpus and experiment
//! reproducible.

/// SplitMix64: Sebastiano Vigna's one-word generator/mixer.
///
/// Primarily used to expand a 64-bit seed into xoshiro state and to hash
/// small integers into well-distributed words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Creates the generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Returns the next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Stateless SplitMix64 finalizer: hashes one word to one word.
///
/// Useful for deterministic per-index decisions (is function `i` selected
/// under seed `s`?) without materializing a stream.
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ — the main generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Seeds the state by expanding `seed` through SplitMix64 (the
    /// canonical seeding procedure, never yielding the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Prng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// The next word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` via the widening-multiply method.
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        (((u128::from(self.next_u64())) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform value in the given range, for any supported integer type.
    ///
    /// Accepts both half-open (`lo..hi`) and inclusive (`lo..=hi`) ranges,
    /// mirroring the API shape of the `rand` crate this replaces.
    pub fn random_range<T: SampleUniform, R: IntoInclusive<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.into_inclusive();
        T::sample(self, lo, hi)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits is exact for every representable p.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// `true` with probability `num/den`. Panics if `den == 0` or
    /// `num > den`.
    pub fn random_ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0 && num <= den, "bad ratio {num}/{den}");
        self.below(u64::from(den)) < u64::from(num)
    }
}

/// Integer types [`Prng::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi]` (inclusive).
    fn sample(rng: &mut Prng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut Prng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut Prng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

/// Range forms accepted by [`Prng::random_range`].
pub trait IntoInclusive<T> {
    /// Converts to an inclusive `(lo, hi)` pair.
    fn into_inclusive(self) -> (T, T);
}

impl<T: SampleUniform + Dec> IntoInclusive<T> for std::ops::Range<T> {
    fn into_inclusive(self) -> (T, T) {
        (self.start, self.end.dec())
    }
}

impl<T: SampleUniform + Copy> IntoInclusive<T> for std::ops::RangeInclusive<T> {
    fn into_inclusive(self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Decrement-by-one, used to convert exclusive upper bounds.
pub trait Dec {
    /// `self - 1`; panics on underflow (an empty range is a caller bug).
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self {
                self.checked_sub(1).expect("empty range")
            }
        }
    )*};
}

impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 (from the published C code).
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism across instances.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic_and_not_constant() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Prng::seed_from_u64(7);
        for _ in 0..2000 {
            let x: u32 = r.random_range(0..100u32);
            assert!(x < 100);
            let y: i32 = r.random_range(-64i32..64);
            assert!((-64..64).contains(&y));
            let z: usize = r.random_range(2..=4usize);
            assert!((2..=4).contains(&z));
            let w: i64 = r.random_range(0..=0i64);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Prng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all bucket values should appear: {seen:?}");
    }

    #[test]
    fn bool_and_ratio_are_plausible() {
        let mut r = Prng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "p=0.5 gave {heads}/10000");
        let rare = (0..12_000).filter(|_| r.random_ratio(1, 12)).count();
        assert!((500..1_600).contains(&rare), "1/12 gave {rare}/12000");
        assert!(r.random_bool(1.0));
        assert!(!r.random_bool(0.0));
    }

    #[test]
    fn mix64_distributes_small_inputs() {
        let outs: Vec<u64> = (0u64..64).map(mix64).collect();
        let mut uniq = outs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), outs.len());
        // High bits should vary, not just low bits.
        assert!(outs.iter().any(|&x| x >> 63 == 1));
        assert!(outs.iter().any(|&x| x >> 63 == 0));
    }
}
