//! Acceptability relations (paper §2 and §4.6).
//!
//! Cut-bisimulation is parameterized by a binary relation on states — the
//! *acceptability* (compatibility, indistinguishability) relation — that
//! says which cross-language states may be considered "the same". Most of
//! the relation is carried by the synchronization points' equality
//! constraints plus the shared memory model; what remains is the treatment
//! of undefined-behavior error states:
//!
//! * a **left** (source, e.g. LLVM) error state is related to *any* right
//!   state — once the source program exhibits UB, the compiler owes
//!   nothing, and KEQ "automatically reverts to checking refinement";
//! * a **right** (target, e.g. Virtual x86) error state is related only to
//!   a left error state of the *same kind* — the §5.2 load-narrowing bug is
//!   caught exactly because the x86 side reaches an out-of-bounds error the
//!   LLVM side cannot match.

use crate::config::{ErrorKind, Status};

/// How two statuses relate under the acceptability policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorRelation {
    /// The left state is an error state that absorbs any right state.
    LeftErrorAbsorbs,
    /// Both states are error states of compatible kinds.
    MatchedErrors,
    /// Neither state is an error state; ordinary constraints apply.
    NotErrors,
    /// The statuses cannot be related (e.g. an unmatched right error).
    Unrelated,
}

/// The acceptability policy for error states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acceptability {
    /// If `true`, a left error state relates to any right state (the
    /// paper's asymmetric rule for source-program UB).
    pub left_error_absorbs: bool,
    /// If `true`, right error states must match a left error of the same
    /// kind; if `false`, right errors also absorb (symmetric policy, useful
    /// for true bisimulation between equally-trusted semantics).
    pub right_error_must_match: bool,
}

impl Default for Acceptability {
    /// The paper's policy (§4.6).
    fn default() -> Self {
        Acceptability { left_error_absorbs: true, right_error_must_match: true }
    }
}

impl Acceptability {
    /// The paper's asymmetric policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fully symmetric policy: errors only relate to same-kind errors on
    /// the other side.
    pub fn strict() -> Self {
        Acceptability { left_error_absorbs: false, right_error_must_match: true }
    }

    /// Classifies a pair of statuses.
    pub fn relate(&self, left: &Status, right: &Status) -> ErrorRelation {
        match (left, right) {
            (Status::Error(lk), Status::Error(rk)) => {
                if self.errors_compatible(*lk, *rk) {
                    ErrorRelation::MatchedErrors
                } else if self.left_error_absorbs {
                    ErrorRelation::LeftErrorAbsorbs
                } else {
                    ErrorRelation::Unrelated
                }
            }
            (Status::Error(_), _) => {
                if self.left_error_absorbs {
                    ErrorRelation::LeftErrorAbsorbs
                } else {
                    ErrorRelation::Unrelated
                }
            }
            (_, Status::Error(_)) => {
                if self.right_error_must_match {
                    ErrorRelation::Unrelated
                } else {
                    ErrorRelation::MatchedErrors
                }
            }
            _ => ErrorRelation::NotErrors,
        }
    }

    /// Whether two error kinds are considered the same behavior.
    pub fn errors_compatible(&self, left: ErrorKind, right: ErrorKind) -> bool {
        left == right
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_left_error_absorbs_anything() {
        let a = Acceptability::default();
        let err = Status::Error(ErrorKind::SignedOverflow);
        let run = Status::Running;
        assert_eq!(a.relate(&err, &run), ErrorRelation::LeftErrorAbsorbs);
        let exited = Status::Exited { ret: None };
        assert_eq!(a.relate(&err, &exited), ErrorRelation::LeftErrorAbsorbs);
    }

    #[test]
    fn paper_policy_right_error_needs_same_kind() {
        let a = Acceptability::default();
        let oob = Status::Error(ErrorKind::OutOfBounds);
        let run = Status::Running;
        assert_eq!(a.relate(&run, &oob), ErrorRelation::Unrelated);
        assert_eq!(a.relate(&oob, &oob), ErrorRelation::MatchedErrors);
        let ovf = Status::Error(ErrorKind::SignedOverflow);
        // Mismatched kinds: left error still absorbs under the paper policy.
        assert_eq!(a.relate(&ovf, &oob), ErrorRelation::LeftErrorAbsorbs);
    }

    #[test]
    fn strict_policy_is_symmetric() {
        let a = Acceptability::strict();
        let err = Status::Error(ErrorKind::DivByZero);
        let run = Status::Running;
        assert_eq!(a.relate(&err, &run), ErrorRelation::Unrelated);
        assert_eq!(a.relate(&run, &err), ErrorRelation::Unrelated);
        assert_eq!(a.relate(&err, &err), ErrorRelation::MatchedErrors);
    }

    #[test]
    fn non_error_pairs_fall_through() {
        let a = Acceptability::default();
        assert_eq!(a.relate(&Status::Running, &Status::Running), ErrorRelation::NotErrors);
    }
}
