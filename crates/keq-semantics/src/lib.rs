//! # keq-semantics — the language-parametric framework
//!
//! The analogue of the K framework's role in the paper: a common shape for
//! symbolic program states ([`SymConfig`]), a language interface
//! ([`Language`]), the common memory model of §4.4 ([`mem`]), and the
//! acceptability policy of §2/§4.6 ([`accept`]). The equivalence checker in
//! `keq-core` depends only on this crate's abstractions, never on a concrete
//! language — that is the paper's headline property, language-parametricity.

pub mod accept;
pub mod config;
pub mod loc;
pub mod mem;

pub use accept::{Acceptability, ErrorRelation};
pub use config::{ErrorKind, Language, SemanticsError, Status, SymConfig};
pub use loc::{CtrlLoc, LocPattern};
pub use mem::{
    footprint, memory_equal_obligations, memory_equal_obligations_masked, read_bytes, write_bytes,
    Footprint, MemLayout, MemRegion,
};
