//! Control locations of symbolic configurations.

use std::fmt;

/// A control location: basic block, instruction index, and the predecessor
/// block the execution arrived from.
///
/// The predecessor component drives PHI-instruction semantics and the
/// paper's §4.5 strategy of emitting *one synchronization point per
/// predecessor* ("to expedite the symbolic execution of the phi
/// instructions").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CtrlLoc {
    /// Name of the current basic block.
    pub block: String,
    /// Index of the next instruction to execute within the block.
    pub index: usize,
    /// Block we arrived from (`None` at function entry).
    pub prev: Option<String>,
}

impl CtrlLoc {
    /// Location at the start of `block`, entered from `prev`.
    pub fn block_start(block: impl Into<String>, prev: Option<String>) -> Self {
        CtrlLoc { block: block.into(), index: 0, prev }
    }

    /// Location at function entry.
    pub fn entry(block: impl Into<String>) -> Self {
        CtrlLoc::block_start(block, None)
    }

    /// `true` when positioned at the first instruction of a block.
    pub fn at_block_start(&self) -> bool {
        self.index == 0
    }

    /// The location of the next instruction in the same block.
    pub fn advanced(&self) -> Self {
        CtrlLoc { block: self.block.clone(), index: self.index + 1, prev: self.prev.clone() }
    }
}

impl fmt::Display for CtrlLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prev {
            Some(p) => write!(f, "{}[{}] (from {})", self.block, self.index, p),
            None => write!(f, "{}[{}]", self.block, self.index),
        }
    }
}

/// Pattern matching a control location in a synchronization point.
///
/// Patterns identify the *cut* of the paper: a symbolic state is a cut state
/// when its location matches some pattern on its side of the sync relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LocPattern {
    /// Function entry (initial configuration).
    Entry,
    /// Start of `block`, entered from `prev` (the per-predecessor loop-entry
    /// points of §4.5).
    BlockEntry {
        /// Target block name.
        block: String,
        /// Required predecessor (`None` matches any predecessor).
        prev: Option<String>,
    },
    /// Function exit (a `Exited` status).
    Exit,
    /// Immediately before the `nth` call to `callee` in the function body
    /// (an `AtCall` status). Calls are never stepped through (§4.5).
    BeforeCall {
        /// Callee name.
        callee: String,
        /// Zero-based index distinguishing multiple calls to one callee.
        nth: usize,
    },
    /// Immediately after that call returns.
    AfterCall {
        /// Callee name.
        callee: String,
        /// Zero-based call-site index.
        nth: usize,
    },
}

impl fmt::Display for LocPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocPattern::Entry => write!(f, "<entry>"),
            LocPattern::BlockEntry { block, prev: Some(p) } => write!(f, "{block} (from {p})"),
            LocPattern::BlockEntry { block, prev: None } => write!(f, "{block}"),
            LocPattern::Exit => write!(f, "<exit>"),
            LocPattern::BeforeCall { callee, nth } => write!(f, "<call {callee}#{nth}>"),
            LocPattern::AfterCall { callee, nth } => write!(f, "<ret {callee}#{nth}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advanced_moves_index() {
        let l = CtrlLoc::entry("entry");
        assert!(l.at_block_start());
        let n = l.advanced();
        assert_eq!(n.index, 1);
        assert_eq!(n.block, "entry");
        assert!(!n.at_block_start());
    }

    #[test]
    fn display_formats() {
        let l = CtrlLoc::block_start("loop", Some("entry".into()));
        assert_eq!(l.to_string(), "loop[0] (from entry)");
        assert_eq!(LocPattern::Exit.to_string(), "<exit>");
        let p = LocPattern::BlockEntry { block: "loop".into(), prev: Some("entry".into()) };
        assert_eq!(p.to_string(), "loop (from entry)");
    }
}
