//! The common memory model (the paper's `common.k`, §4.4).
//!
//! Both language semantics share one low-level, sequentially consistent,
//! byte-addressed memory: a term of sort [`keq_smt::Sort::Memory`]. Sharing
//! the model makes the acceptability relation's memory requirement a simple
//! footprint-equality obligation instead of a cross-representation mapping.
//!
//! Multi-byte accesses are little-endian, matching both LLVM's x86 data
//! layout and x86-64 itself.

use std::collections::BTreeSet;

use keq_smt::{Op, TermBank, TermId};

/// Reads `nbytes` little-endian bytes starting at `addr`, producing a
/// bitvector of width `8 * nbytes`.
///
/// # Panics
///
/// Panics if `nbytes` is zero or the result exceeds the maximum width.
pub fn read_bytes(bank: &mut TermBank, mem: TermId, addr: TermId, nbytes: u32) -> TermId {
    assert!(nbytes >= 1, "read of zero bytes");
    let mut result = bank.mk_select(mem, addr);
    for i in 1..nbytes {
        let off = bank.mk_bv(64, u128::from(i));
        let a = bank.mk_bvadd(addr, off);
        let byte = bank.mk_select(mem, a);
        result = bank.mk_concat(byte, result);
    }
    result
}

/// Writes `value` (width must be a multiple of 8) little-endian at `addr`.
///
/// # Panics
///
/// Panics if the width of `value` is not a positive multiple of 8.
pub fn write_bytes(bank: &mut TermBank, mem: TermId, addr: TermId, value: TermId) -> TermId {
    let w = bank.width(value);
    assert!(w >= 8 && w.is_multiple_of(8), "write of non-byte-multiple width {w}");
    let nbytes = w / 8;
    let mut m = mem;
    for i in 0..nbytes {
        let byte = bank.mk_extract(value, i * 8 + 7, i * 8);
        let off = bank.mk_bv(64, u128::from(i));
        let a = bank.mk_bvadd(addr, off);
        m = bank.mk_store(m, a, byte);
    }
    m
}

/// A named, concretely-placed memory region (a global or a stack frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRegion {
    /// Diagnostic name (e.g. `@b`, `<frame>`).
    pub name: String,
    /// First valid address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

/// The address-space layout known to a pair of programs under validation.
///
/// Out-of-bounds detection (paper §4.6) checks accesses against these
/// regions; an access that can fall outside every region branches into an
/// [`crate::ErrorKind::OutOfBounds`] error state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemLayout {
    /// All valid regions.
    pub regions: Vec<MemRegion>,
}

impl MemLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a region, returning its base address.
    pub fn add_region(&mut self, name: impl Into<String>, base: u64, size: u64) -> u64 {
        self.regions.push(MemRegion { name: name.into(), base, size });
        base
    }

    /// Looks a region up by name.
    pub fn region(&self, name: &str) -> Option<&MemRegion> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Builds the in-bounds condition for an access of `nbytes` at `addr`:
    /// the access must fit entirely inside a single region.
    pub fn in_bounds(&self, bank: &mut TermBank, addr: TermId, nbytes: u64) -> TermId {
        let mut cases = Vec::with_capacity(self.regions.len());
        for r in &self.regions {
            if r.size < nbytes {
                continue;
            }
            let lo = bank.mk_bv(64, u128::from(r.base));
            let hi = bank.mk_bv(64, u128::from(r.base + r.size - nbytes));
            let ge = bank.mk_bvule(lo, addr);
            let le = bank.mk_bvule(addr, hi);
            cases.push(bank.mk_and([ge, le]));
        }
        bank.mk_or(cases)
    }
}

/// Result of analysing a memory term's write footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    /// The base memory variable under all stores.
    pub base: TermId,
    /// Every written index term (deduplicated, ordered).
    pub indices: BTreeSet<TermId>,
}

/// Computes the footprint of `mem`: its base variable and all store indices,
/// looking through memory-sorted if-then-else nodes.
///
/// Returns `None` if the term is not a store/ite chain over a single base
/// variable (in which case footprint-based equality is not applicable).
pub fn footprint(bank: &TermBank, mem: TermId) -> Option<Footprint> {
    let mut indices = BTreeSet::new();
    let mut base: Option<TermId> = None;
    let mut stack = vec![mem];
    let mut seen = BTreeSet::new();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        let node = bank.node(t);
        match node.op {
            Op::Var(_) => match base {
                None => base = Some(t),
                Some(b) if b == t => {}
                Some(_) => return None, // two distinct bases
            },
            Op::Store => {
                indices.insert(node.args[1]);
                stack.push(node.args[0]);
            }
            Op::Ite => {
                stack.push(node.args[1]);
                stack.push(node.args[2]);
            }
            _ => return None,
        }
    }
    base.map(|base| Footprint { base, indices })
}

/// Produces the proof obligations stating `m1` and `m2` hold the same
/// contents.
///
/// Both memories must be store/ite chains over the *same* base variable;
/// then extensional equality is equivalent to the selects agreeing on the
/// union write footprint (addresses outside the footprint read the shared
/// base in both). Returns `None` when the chains have different bases —
/// the caller must then report the obligation as unprovable.
pub fn memory_equal_obligations(
    bank: &mut TermBank,
    m1: TermId,
    m2: TermId,
) -> Option<Vec<TermId>> {
    memory_equal_obligations_masked(bank, m1, m2, &[])
}

/// [`memory_equal_obligations`] with a *mask*: write indices that are
/// concrete constants falling inside one of the masked regions are excluded
/// from the equality. This is how one side's private scratch memory — e.g.
/// the spill frame a register allocator introduces on the allocated side
/// only — is carved out of the acceptability relation's memory requirement:
/// the programs must agree everywhere *except* the private region.
///
/// Only constant indices are maskable; a symbolic index is always kept (its
/// disjointness from the masked region, if needed, must come from the path's
/// in-bounds assumptions).
pub fn memory_equal_obligations_masked(
    bank: &mut TermBank,
    m1: TermId,
    m2: TermId,
    mask: &[MemRegion],
) -> Option<Vec<TermId>> {
    if m1 == m2 {
        return Some(Vec::new());
    }
    let f1 = footprint(bank, m1)?;
    let f2 = footprint(bank, m2)?;
    if f1.base != f2.base {
        return None;
    }
    let union: BTreeSet<TermId> = f1.indices.union(&f2.indices).copied().collect();
    let mut obligations = Vec::with_capacity(union.len());
    for idx in union {
        if !mask.is_empty() {
            if let Some((_, v)) = bank.as_bv_const(idx) {
                let v = v as u64;
                if mask.iter().any(|r| v >= r.base && v - r.base < r.size) {
                    continue;
                }
            }
        }
        let r1 = bank.mk_select(m1, idx);
        let r2 = bank.mk_select(m2, idx);
        let eq = bank.mk_eq(r1, r2);
        if bank.as_bool_const(eq) != Some(true) {
            obligations.push(eq);
        }
    }
    Some(obligations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use keq_smt::{ProofOutcome, Solver, Sort};

    #[test]
    fn read_write_roundtrip_32bit() {
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let addr = bank.mk_bv(64, 0x1000);
        let val = bank.mk_bv(32, 0xdead_beef);
        let m2 = write_bytes(&mut bank, mem, addr, val);
        let read = read_bytes(&mut bank, m2, addr, 4);
        assert_eq!(bank.as_bv_const(read), Some((32, 0xdead_beef)));
    }

    #[test]
    fn little_endian_layout() {
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let addr = bank.mk_bv(64, 0);
        let val = bank.mk_bv(16, 0xaabb);
        let m2 = write_bytes(&mut bank, mem, addr, val);
        let b0 = bank.mk_select(m2, addr);
        assert_eq!(bank.as_bv_const(b0), Some((8, 0xbb)), "low byte first");
        let one = bank.mk_bv(64, 1);
        let b1 = bank.mk_select(m2, one);
        assert_eq!(bank.as_bv_const(b1), Some((8, 0xaa)));
    }

    #[test]
    fn symbolic_roundtrip_provable() {
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let addr = bank.mk_var("a", Sort::BitVec(64));
        let val = bank.mk_var("v", Sort::BitVec(16));
        let m2 = write_bytes(&mut bank, mem, addr, val);
        let read = read_bytes(&mut bank, m2, addr, 2);
        let mut solver = Solver::new();
        assert!(solver.prove_equiv(&mut bank, &[], read, val).is_proved());
    }

    #[test]
    fn in_bounds_condition() {
        let mut bank = TermBank::new();
        let mut layout = MemLayout::new();
        layout.add_region("@g", 0x100, 8);
        // Fully inside.
        let a = bank.mk_bv(64, 0x102);
        let c = layout.in_bounds(&mut bank, a, 4);
        assert_eq!(bank.as_bool_const(c), Some(true));
        // Straddling the end: 0x105 + 4 > 0x108.
        let a = bank.mk_bv(64, 0x105);
        let c = layout.in_bounds(&mut bank, a, 4);
        assert_eq!(bank.as_bool_const(c), Some(false));
        // Outside entirely.
        let a = bank.mk_bv(64, 0x200);
        let c = layout.in_bounds(&mut bank, a, 1);
        assert_eq!(bank.as_bool_const(c), Some(false));
    }

    #[test]
    fn in_bounds_region_too_small() {
        let mut bank = TermBank::new();
        let mut layout = MemLayout::new();
        layout.add_region("@tiny", 0, 2);
        let a = bank.mk_bv(64, 0);
        let c = layout.in_bounds(&mut bank, a, 4);
        assert_eq!(bank.as_bool_const(c), Some(false), "4-byte access in 2-byte region");
    }

    #[test]
    fn footprint_collects_store_indices() {
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let i = bank.mk_var("i", Sort::BitVec(64));
        let j = bank.mk_bv(64, 4);
        let v = bank.mk_bv(8, 1);
        let m1 = bank.mk_store(mem, i, v);
        let m2 = bank.mk_store(m1, j, v);
        let fp = footprint(&bank, m2).expect("chain over one base");
        assert_eq!(fp.base, mem);
        assert_eq!(fp.indices.len(), 2);
    }

    #[test]
    fn memory_equality_identical_chains_trivial() {
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let a = bank.mk_bv(64, 0);
        let v = bank.mk_bv(8, 5);
        let m1 = bank.mk_store(mem, a, v);
        let obligations = memory_equal_obligations(&mut bank, m1, m1).expect("same base");
        assert!(obligations.is_empty());
    }

    #[test]
    fn memory_equality_provable_when_orders_differ_symbolically() {
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let i = bank.mk_var("i", Sort::BitVec(64));
        let j = bank.mk_var("j", Sort::BitVec(64));
        let v1 = bank.mk_bv(8, 1);
        let v2 = bank.mk_bv(8, 2);
        let m_ij = {
            let t = bank.mk_store(mem, i, v1);
            bank.mk_store(t, j, v2)
        };
        let m_ji = {
            let t = bank.mk_store(mem, j, v2);
            bank.mk_store(t, i, v1)
        };
        let obligations = memory_equal_obligations(&mut bank, m_ij, m_ji).expect("same base");
        let mut solver = Solver::new();
        let ne = bank.mk_ne(i, j);
        for ob in obligations {
            assert!(
                solver.prove_implies(&mut bank, &[ne], ob).is_proved(),
                "disjoint writes must commute"
            );
        }
    }

    #[test]
    fn memory_equality_refutable_on_waw_reorder() {
        // The §5.2 WAW shape, distilled: same address written twice in
        // opposite orders with different values.
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let i = bank.mk_var("i", Sort::BitVec(64));
        let v1 = bank.mk_bv(8, 1);
        let v2 = bank.mk_bv(8, 2);
        let good = {
            let t = bank.mk_store(mem, i, v1);
            bank.mk_store(t, i, v2)
        };
        let bad = {
            let t = bank.mk_store(mem, i, v2);
            bank.mk_store(t, i, v1)
        };
        let obligations = memory_equal_obligations(&mut bank, good, bad).expect("same base");
        let mut solver = Solver::new();
        let mut any_refuted = false;
        for ob in obligations {
            if let ProofOutcome::Refuted(_) = solver.prove_implies(&mut bank, &[], ob) {
                any_refuted = true;
            }
        }
        assert!(any_refuted, "reordered overlapping writes are not equal");
    }

    #[test]
    fn memory_equality_rejects_distinct_bases() {
        let mut bank = TermBank::new();
        let m1 = bank.mk_var("mem1", Sort::Memory);
        let m2 = bank.mk_var("mem2", Sort::Memory);
        assert_eq!(memory_equal_obligations(&mut bank, m1, m2), None);
    }
}
