//! Symbolic configurations and the language interface.
//!
//! A [`SymConfig`] is the language-independent shape of a symbolic program
//! state: a control location, an environment of named registers mapped to
//! SMT terms, a memory term, a path condition, and an execution status.
//! Every language plugged into KEQ (LLVM IR, Virtual x86, IMP, the stack
//! machine, …) represents its states this way; the equivalence checker in
//! `keq-core` never sees anything more specific.

use std::collections::BTreeMap;
use std::fmt;

use keq_smt::{TermBank, TermId};

use crate::loc::CtrlLoc;

/// Kinds of undefined behavior modelled as error states (paper §4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorKind {
    /// Memory access outside any live allocation.
    OutOfBounds,
    /// Signed integer overflow on an operation with UB overflow semantics.
    SignedOverflow,
    /// Division or remainder by zero.
    DivByZero,
    /// Execution reached an `unreachable` marker.
    Unreachable,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::OutOfBounds => "out-of-bounds memory access",
            ErrorKind::SignedOverflow => "signed integer overflow",
            ErrorKind::DivByZero => "division by zero",
            ErrorKind::Unreachable => "unreachable executed",
        };
        write!(f, "{s}")
    }
}

/// Execution status of a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// Normal execution at `loc`.
    Running,
    /// The function returned (with an optional value).
    Exited {
        /// Returned value, if the function is non-void.
        ret: Option<TermId>,
    },
    /// Stopped immediately before an external call (calls are cut states and
    /// are never stepped through, per §4.5).
    AtCall {
        /// Callee name.
        callee: String,
        /// Zero-based index of this call site among calls to `callee`.
        nth: usize,
        /// Argument values at the call.
        args: Vec<TermId>,
    },
    /// An undefined-behavior error state.
    Error(ErrorKind),
}

impl Status {
    /// `true` for [`Status::Running`].
    pub fn is_running(&self) -> bool {
        matches!(self, Status::Running)
    }

    /// `true` for [`Status::Error`].
    pub fn is_error(&self) -> bool {
        matches!(self, Status::Error(_))
    }
}

/// A symbolic program configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymConfig {
    /// Control location (meaningful while `status` is `Running`).
    pub loc: CtrlLoc,
    /// Register/local-variable environment.
    pub regs: BTreeMap<String, TermId>,
    /// The memory, as a term of sort [`keq_smt::Sort::Memory`].
    pub mem: TermId,
    /// Path condition: the conjunction of these terms holds on this path.
    pub path: Vec<TermId>,
    /// Execution status.
    pub status: Status,
}

impl SymConfig {
    /// Creates a running configuration at `loc` with memory `mem`.
    pub fn new(loc: CtrlLoc, mem: TermId) -> Self {
        SymConfig { loc, regs: BTreeMap::new(), mem, path: Vec::new(), status: Status::Running }
    }

    /// Reads a register.
    ///
    /// # Errors
    ///
    /// Returns [`SemanticsError::UnknownRegister`] when absent — a malformed
    /// program or a semantics bug, surfaced rather than defaulted.
    pub fn reg(&self, name: &str) -> Result<TermId, SemanticsError> {
        self.regs
            .get(name)
            .copied()
            .ok_or_else(|| SemanticsError::UnknownRegister { name: name.to_owned() })
    }

    /// Writes a register.
    pub fn set_reg(&mut self, name: impl Into<String>, value: TermId) {
        self.regs.insert(name.into(), value);
    }

    /// Extends the path condition (dropping literal `true`).
    pub fn assume(&mut self, bank: &TermBank, cond: TermId) {
        if bank.as_bool_const(cond) != Some(true) {
            self.path.push(cond);
        }
    }

    /// The path condition as a single conjunction term.
    pub fn path_term(&self, bank: &mut TermBank) -> TermId {
        bank.mk_and(self.path.iter().copied())
    }

    /// Derives an error successor with the given extra path constraint.
    pub fn to_error(&self, bank: &TermBank, kind: ErrorKind, cond: TermId) -> SymConfig {
        let mut e = self.clone();
        e.assume(bank, cond);
        e.status = Status::Error(kind);
        e
    }
}

/// Errors produced by language semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemanticsError {
    /// A register/local was read before being defined.
    UnknownRegister {
        /// The missing name.
        name: String,
    },
    /// Control transferred to an unknown block.
    UnknownBlock {
        /// The missing block name.
        name: String,
    },
    /// The program uses a feature outside the supported fragment
    /// (the paper's unsupported-function class: floating point, SIMD, …).
    Unsupported {
        /// Human-readable description of the feature.
        what: String,
    },
    /// Internal invariant violation (a bug in a semantics definition).
    Internal {
        /// Description of the violation.
        what: String,
    },
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::UnknownRegister { name } => write!(f, "unknown register {name}"),
            SemanticsError::UnknownBlock { name } => write!(f, "unknown block {name}"),
            SemanticsError::Unsupported { what } => write!(f, "unsupported feature: {what}"),
            SemanticsError::Internal { what } => write!(f, "internal semantics error: {what}"),
        }
    }
}

impl std::error::Error for SemanticsError {}

/// The language interface: everything the equivalence checker knows about a
/// language is its ability to take one symbolic step.
///
/// Implementations hold the program under execution internally; `keq-core`
/// is thereby parametric in the language exactly as KEQ is parametric in the
/// K semantic definitions it is given.
pub trait Language {
    /// Short language name for diagnostics (e.g. `"llvm"`, `"vx86"`).
    fn name(&self) -> &str;

    /// Takes one symbolic step from a `Running` configuration.
    ///
    /// Returns all successors; conditional control flow yields one successor
    /// per branch with the branch condition appended to the path, and
    /// operations with undefined behavior additionally yield `Error`
    /// successors guarded by the UB condition (§4.6). Feasibility pruning is
    /// the caller's job.
    ///
    /// # Errors
    ///
    /// Returns a [`SemanticsError`] on malformed programs or unsupported
    /// features.
    fn step(
        &self,
        cfg: &SymConfig,
        bank: &mut TermBank,
    ) -> Result<Vec<SymConfig>, SemanticsError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use keq_smt::Sort;

    #[test]
    fn reg_roundtrip_and_missing() {
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let mut cfg = SymConfig::new(CtrlLoc::entry("entry"), mem);
        let v = bank.mk_bv(32, 7);
        cfg.set_reg("%x", v);
        assert_eq!(cfg.reg("%x"), Ok(v));
        assert!(matches!(
            cfg.reg("%y"),
            Err(SemanticsError::UnknownRegister { .. })
        ));
    }

    #[test]
    fn assume_drops_trivial_truths() {
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let mut cfg = SymConfig::new(CtrlLoc::entry("entry"), mem);
        let t = bank.mk_true();
        cfg.assume(&bank, t);
        assert!(cfg.path.is_empty());
        let x = bank.mk_var("b", Sort::Bool);
        cfg.assume(&bank, x);
        assert_eq!(cfg.path, vec![x]);
        assert_eq!(cfg.path_term(&mut bank), x);
    }

    #[test]
    fn error_successor_carries_condition() {
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let cfg = SymConfig::new(CtrlLoc::entry("entry"), mem);
        let c = bank.mk_var("oob", Sort::Bool);
        let e = cfg.to_error(&bank, ErrorKind::OutOfBounds, c);
        assert_eq!(e.status, Status::Error(ErrorKind::OutOfBounds));
        assert_eq!(e.path, vec![c]);
    }

    #[test]
    fn status_predicates() {
        assert!(Status::Running.is_running());
        assert!(Status::Error(ErrorKind::DivByZero).is_error());
        assert!(!Status::Exited { ret: None }.is_running());
    }

    #[test]
    fn error_kind_display() {
        assert_eq!(ErrorKind::OutOfBounds.to_string(), "out-of-bounds memory access");
        assert_eq!(ErrorKind::SignedOverflow.to_string(), "signed integer overflow");
    }
}
