//! **BENCH_PR4** — machine-readable obligation-cache benchmark.
//!
//! Runs the same generated corpus twice against one persistent obligation
//! store: `cold` starts from an empty store and fills it, `warm` reloads
//! the store and should discharge a large share of its obligations from
//! the cache without lowering or bit-blasting. Emits `BENCH_PR4.json`
//! (hand-rolled writer; the workspace is dependency-free) with one section
//! per run — wall time, the shared-cache lookup counters, and the Fig. 6
//! outcome table — plus the headline warm hit ratio.
//!
//! In-bench acceptance bars (the run aborts when missed):
//!
//! * the warm run discharges ≥ 30% of its obligations from the cache;
//! * the warm run is not slower than the cold run (with slack for timer
//!   noise on CI-sized corpora);
//! * both runs classify every function identically — the cache must be
//!   invisible to verdicts.
//!
//! Environment knobs:
//!
//! * `KEQ_PR4_N`    — corpus functions (default 24)
//! * `KEQ_PR4_SECS` — per-function wall-clock limit (default 10)
//! * `KEQ_PR4_SEED` — corpus seed (default 2021)
//! * `KEQ_PR4_OUT`  — output path (default `BENCH_PR4.json`)
//!
//! `scripts/bench.sh pr4` drives this target; CI runs it smoke-sized.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use keq_bench::{outcome_table, run_corpus_with, CorpusSummary, HarnessOptions};
use keq_core::KeqOptions;
use keq_smt::Budget;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One corpus sweep against the persistent store at `cache`.
fn measure(seed: u64, n: usize, secs: u64, cache: &Path) -> (Duration, CorpusSummary) {
    let opts = HarnessOptions {
        keq: KeqOptions {
            time_limit: Some(Duration::from_secs(secs)),
            solver_budget: Budget {
                max_conflicts: 500_000,
                max_terms: 2_000_000,
                max_time: Some(Duration::from_secs(secs / 4 + 1)),
            },
            ..KeqOptions::default()
        },
        cache_path: Some(cache.to_path_buf()),
        ..HarnessOptions::default()
    };
    let start = Instant::now();
    let (_m, summary) = run_corpus_with(seed, n, &opts);
    (start.elapsed(), summary)
}

fn json_run(wall: Duration, summary: &CorpusSummary) -> String {
    let s = &summary.solver;
    format!(
        "{{\"wall_ms\": {}, \"queries\": {}, \"obligation_cache_hits\": {}, \
         \"obligation_cache_misses\": {}, \"obligation_cache_stores\": {}, \
         \"hit_ratio\": {:.4}, \"disk_loaded\": {}, \"disk_persisted\": {}, \
         \"disk_bytes\": {}, \"outcome\": {}}}",
        wall.as_millis(),
        s.queries,
        s.obligation_cache_hits,
        s.obligation_cache_misses,
        s.obligation_cache_stores,
        summary.obligation_cache_hit_ratio(),
        summary.cache.disk_loaded,
        summary.cache.disk_persisted,
        summary.cache.disk_bytes,
        outcome_table(summary).to_json_string()
    )
}

fn main() {
    let n = env_u64("KEQ_PR4_N", 24) as usize;
    let secs = env_u64("KEQ_PR4_SECS", 10);
    let seed = env_u64("KEQ_PR4_SEED", 2021);
    let out = std::env::var("KEQ_PR4_OUT").unwrap_or_else(|_| "BENCH_PR4.json".to_string());

    let store: PathBuf = std::env::temp_dir()
        .join(format!("keq-bench-pr4-{}-{seed}.keqcache", std::process::id()));
    let _ = std::fs::remove_file(&store);

    eprintln!("cold: {n} corpus functions (seed {seed}, {secs}s/function), empty store...");
    let (cold_wall, cold) = measure(seed, n, secs, &store);
    eprintln!("warm: same corpus, store reloaded ({} bytes)...", cold.cache.disk_bytes);
    let (warm_wall, warm) = measure(seed, n, secs, &store);
    let _ = std::fs::remove_file(&store);

    // The cache must be invisible to verdicts: the warm run classifies
    // every function exactly as the cold run did.
    let cold_rows: Vec<_> = cold.rows.iter().map(|r| (&r.name, r.result.kind())).collect();
    let warm_rows: Vec<_> = warm.rows.iter().map(|r| (&r.name, r.result.kind())).collect();
    assert_eq!(cold_rows, warm_rows, "warm-run verdicts drifted from the cold run");

    assert!(
        cold.cache.disk_persisted > 0,
        "cold run persisted nothing — the store never left the ground"
    );
    assert!(
        warm.cache.disk_loaded >= cold.cache.disk_persisted,
        "warm run loaded {} records but the cold run persisted {}",
        warm.cache.disk_loaded,
        cold.cache.disk_persisted
    );
    let warm_ratio = warm.obligation_cache_hit_ratio();
    assert!(
        warm.solver.obligation_cache_hits > 0 && warm_ratio >= 0.30,
        "acceptance bar: warm run must discharge >=30% of obligations from the \
         cache (hits {}, misses {}, ratio {warm_ratio:.2})",
        warm.solver.obligation_cache_hits,
        warm.solver.obligation_cache_misses
    );
    // Wall-clock bar with slack for timer noise: CI-sized corpora finish
    // in tens of milliseconds, where scheduling jitter dwarfs solver work.
    assert!(
        warm_wall <= cold_wall.mul_f64(1.05) + Duration::from_millis(250),
        "acceptance bar: warm run must not be slower (cold {cold_wall:?}, warm {warm_wall:?})"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_PR4\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"n_functions\": {n},");
    let _ = writeln!(json, "  \"per_function_secs\": {secs},");
    let _ = writeln!(json, "  \"cold\": {},", json_run(cold_wall, &cold));
    let _ = writeln!(json, "  \"warm\": {},", json_run(warm_wall, &warm));
    let _ = writeln!(json, "  \"warm_hit_ratio\": {warm_ratio:.4}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out, &json).expect("write BENCH_PR4 json");
    print!("{json}");
    eprintln!("wrote {out} (warm hit ratio {warm_ratio:.2})");
}
