//! **§5.2 / Fig. 10–11** — the out-of-bounds load-narrowing bug on the
//! non-power-of-two `i96` type (PR4737 style).
//!
//! The correct narrowing loads only the 4 available bytes (`movl`,
//! zero-extending through the 32-bit write rule); the bug loads 8 bytes
//! (`movq`), reading past the object. KEQ rejects the buggy translation
//! because the x86 out-of-bounds error state cannot be matched by any LLVM
//! state — per the paper's footnote 7, not even refinement holds.

use keq_core::KeqOptions;
use keq_isel::{validate_function, BugInjection, IselOptions, VcOptions};
use keq_llvm::parse_module;

fn main() {
    let m = parse_module(keq_llvm::corpus::FIG10_LOAD_NARROW).expect("parses");
    let f = &m.functions[0];
    println!("=== Fig. 10: LLVM input ===\n{f}");
    let cases = [
        ("Fig. 11(a) correct narrowing", BugInjection::None),
        ("Fig. 11(b) out-of-bounds narrowing (bug)", BugInjection::LoadNarrowing),
    ];
    for (label, bug) in cases {
        let out = validate_function(
            &m,
            f,
            IselOptions { bug, ..Default::default() },
            VcOptions::default(),
            KeqOptions::default(),
        )
        .expect("supported");
        println!("--- {label} ---\n{}", out.isel.func);
        println!("verdict: {}\n", out.report.verdict);
        assert_eq!(
            out.report.verdict.is_validated(),
            bug == BugInjection::None,
            "{label}: wrong verdict"
        );
    }
}
