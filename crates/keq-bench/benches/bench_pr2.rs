//! **BENCH_PR2** — machine-readable incremental-session benchmark.
//!
//! Emits `BENCH_PR2.json` (hand-rolled writer; the workspace is
//! dependency-free) with two sections:
//!
//! * `session_reuse` — the multi-obligation sync-point batch of
//!   [`keq_bench::sync_point_workload`] in scratch mode versus session
//!   mode: wall time plus the solver's reuse counters (`terms_blasted`,
//!   `terms_blast_reused`, `prefix_hits`, `clauses_retained`) and the
//!   headline blast-reduction ratio;
//! * `fig6` — the corpus validation table (paper Fig. 6, scaled down)
//!   timed twice: `cold` with retry warm-starting disabled and `warm`
//!   with the default carried [`ValidationContext`].
//!
//! Environment knobs:
//!
//! * `KEQ_PR2_OBLIGATIONS` — obligations in the session batch (default 16)
//! * `KEQ_PR2_N`           — corpus functions (default 24)
//! * `KEQ_PR2_SECS`        — per-function wall-clock limit (default 10)
//! * `KEQ_PR2_SEED`        — corpus seed (default 2021)
//! * `KEQ_PR2_OUT`         — output path (default `BENCH_PR2.json`)
//!
//! `scripts/bench.sh` drives this target; CI runs it smoke-sized.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use keq_bench::{outcome_table, run_corpus_with, HarnessOptions, RetryPolicy};
use keq_core::KeqOptions;
use keq_smt::{Budget, CheckOutcome, Solver, SolverStats, TermBank};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One mode's measurement of the session-reuse batch.
struct ReuseRun {
    wall: Duration,
    stats: SolverStats,
}

fn json_reuse_run(r: &ReuseRun) -> String {
    format!(
        "{{\"wall_us\": {}, \"queries\": {}, \"terms_blasted\": {}, \
         \"terms_blast_reused\": {}, \"prefix_hits\": {}, \
         \"clauses_retained\": {}, \"conflicts\": {}}}",
        r.wall.as_micros(),
        r.stats.queries,
        r.stats.terms_blasted,
        r.stats.terms_blast_reused,
        r.stats.prefix_hits,
        r.stats.clauses_retained,
        r.stats.conflicts
    )
}

/// Runs the sync-point batch in both modes and returns (scratch, session).
fn measure_session_reuse(obligations: usize) -> (ReuseRun, ReuseRun) {
    let mut bank = TermBank::new();
    let wl = keq_bench::sync_point_workload(&mut bank, 32, obligations);

    let mut scratch = Solver::new();
    let before = scratch.stats();
    let start = Instant::now();
    for (delta, expect_sat) in &wl.obligations {
        let mut full = wl.prefix.clone();
        full.extend_from_slice(delta);
        let outcome = scratch.check_sat(&mut bank, &full);
        assert_eq!(matches!(outcome, CheckOutcome::Sat(_)), *expect_sat);
    }
    let scratch_run = ReuseRun { wall: start.elapsed(), stats: scratch.stats().since(&before) };

    let mut warm = Solver::new();
    let before = warm.stats();
    let start = Instant::now();
    let mut session = warm.open_session(&mut bank, &wl.prefix);
    for (delta, expect_sat) in &wl.obligations {
        let outcome = session.check_sat(&mut bank, delta);
        assert_eq!(matches!(outcome, CheckOutcome::Sat(_)), *expect_sat);
    }
    drop(session);
    let session_run = ReuseRun { wall: start.elapsed(), stats: warm.stats().since(&before) };
    (scratch_run, session_run)
}

/// One Fig. 6 corpus sweep; `warm_start` toggles retry context carrying.
fn measure_fig6(seed: u64, n: usize, secs: u64, warm_start: bool) -> String {
    let opts = HarnessOptions {
        keq: KeqOptions {
            time_limit: Some(Duration::from_secs(secs)),
            solver_budget: Budget {
                max_conflicts: 500_000,
                max_terms: 2_000_000,
                max_time: Some(Duration::from_secs(secs / 4 + 1)),
            },
            ..KeqOptions::default()
        },
        retry: RetryPolicy { max_attempts: 2, factor: 4, ..RetryPolicy::default() },
        warm_start,
        ..HarnessOptions::default()
    };
    let start = Instant::now();
    let (_m, summary) = run_corpus_with(seed, n, &opts);
    let wall = start.elapsed();
    // The outcome table is the shared `keq-trace` report type, so this
    // section's keys match `RUN_REPORT.json`'s `outcome` object exactly.
    format!(
        "{{\"wall_ms\": {}, \"outcome\": {}}}",
        wall.as_millis(),
        outcome_table(&summary).to_json_string()
    )
}

fn main() {
    let obligations = env_u64("KEQ_PR2_OBLIGATIONS", 16) as usize;
    let n = env_u64("KEQ_PR2_N", 24) as usize;
    let secs = env_u64("KEQ_PR2_SECS", 10);
    let seed = env_u64("KEQ_PR2_SEED", 2021);
    let out = std::env::var("KEQ_PR2_OUT").unwrap_or_else(|_| "BENCH_PR2.json".to_string());

    eprintln!("session_reuse: {obligations}-obligation sync-point batch...");
    let (scratch, session) = measure_session_reuse(obligations);
    let blast_reduction =
        scratch.stats.terms_blasted as f64 / session.stats.terms_blasted.max(1) as f64;
    assert!(
        session.stats.terms_blasted * 2 <= scratch.stats.terms_blasted,
        "acceptance bar: session must bit-blast >=2x fewer nodes \
         (session {}, scratch {})",
        session.stats.terms_blasted,
        scratch.stats.terms_blasted
    );

    eprintln!("fig6: {n} corpus functions (seed {seed}, {secs}s/function), cold then warm...");
    let fig6_cold = measure_fig6(seed, n, secs, false);
    let fig6_warm = measure_fig6(seed, n, secs, true);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_PR2\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"session_reuse\": {{");
    let _ = writeln!(json, "    \"obligations\": {obligations},");
    let _ = writeln!(json, "    \"scratch\": {},", json_reuse_run(&scratch));
    let _ = writeln!(json, "    \"session\": {},", json_reuse_run(&session));
    let _ = writeln!(json, "    \"blast_reduction\": {blast_reduction:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fig6\": {{");
    let _ = writeln!(json, "    \"n_functions\": {n},");
    let _ = writeln!(json, "    \"per_function_secs\": {secs},");
    let _ = writeln!(json, "    \"cold\": {fig6_cold},");
    let _ = writeln!(json, "    \"warm\": {fig6_warm}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out, &json).expect("write BENCH_PR2 json");
    print!("{json}");
    eprintln!("wrote {out} (blast reduction {blast_reduction:.2}x)");
}
