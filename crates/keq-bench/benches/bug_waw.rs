//! **§5.2 / Fig. 8–9** — the write-after-write store-merging bug.
//!
//! The Fig. 8 LLVM input is compiled four ways — unoptimized, with correct
//! store merging, and with the re-introduced PR25154-style reordering bug —
//! and each translation is validated. The buggy one must be rejected.

use keq_core::KeqOptions;
use keq_isel::{validate_function, BugInjection, IselOptions, VcOptions};
use keq_llvm::parse_module;

fn main() {
    let m = parse_module(keq_llvm::corpus::FIG8_WAW).expect("parses");
    let f = &m.functions[0];
    println!("=== Fig. 8: LLVM input ===\n{f}");
    let cases = [
        ("Fig. 9(a) unoptimized", IselOptions { merge_stores: false, ..Default::default() }),
        ("Fig. 9(c) correct merge", IselOptions::default()),
        (
            "Fig. 9(b) WAW-violating merge (bug)",
            IselOptions { bug: BugInjection::WawStoreMerge, ..Default::default() },
        ),
    ];
    for (label, opts) in cases {
        let out = validate_function(&m, f, opts, VcOptions::default(), KeqOptions::default())
            .expect("supported");
        println!("--- {label} ---\n{}", out.isel.func);
        println!("verdict: {}\n", out.report.verdict);
        let buggy = opts.bug == BugInjection::WawStoreMerge;
        assert_eq!(
            out.report.verdict.is_validated(),
            !buggy,
            "{label}: wrong verdict"
        );
    }
    println!("as in the paper: the miscompilation cannot pass the system, the");
    println!("correct merge (and the unoptimized translation) validate.");
}
