//! **Fig. 4** — the partial-redundancy-elimination example motivating
//! cut-bisimulation: the synchronization relation (black dotted lines only)
//! is a cut-bisimulation, accepted by Algorithm 1, but is *not* a strong
//! bisimulation on the raw transition systems.

use keq_core::{algorithm1, fig4_example, is_cut_bisimulation, is_strong_bisimulation};

fn main() {
    let (p, q, rel) = fig4_example();
    println!("=== Fig. 4: PRE example ===");
    println!("left  (P): P0 -(x=a+b)-> P1, P1 -> {{P2 (y=a+b), P3}};  cut = {{P0, P2, P3}}");
    println!("right (Q): Q0 -> {{Q1 -(t=a+b)-> Q2 (y=t), Q3 (x=a+b)}}; cut = {{Q0, Q2, Q3}}");
    println!("relation (black dotted lines): {rel:?}");
    println!();
    println!("cut validity:          P: {}  Q: {}", p.is_valid_cut(), q.is_valid_cut());
    println!("is cut-bisimulation:   {}", is_cut_bisimulation(&p, &q, &rel));
    println!("Algorithm 1 accepts:   {}", algorithm1(&p, &q, &rel));
    println!("is strong bisimulation (raw states): {}", is_strong_bisimulation(&p, &q, &rel));
    println!();
    println!("paper: the same relation witnesses equivalence under cut-bisimulation");
    println!("       while strong bisimulation would need the unrelatable P1/Q1 states.");
    assert!(is_cut_bisimulation(&p, &q, &rel));
    assert!(algorithm1(&p, &q, &rel));
    assert!(!is_strong_bisimulation(&p, &q, &rel));
}
