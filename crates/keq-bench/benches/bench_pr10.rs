//! **BENCH_PR10** — machine-readable pass-pipeline benchmark.
//!
//! Exercises the two new instantiations of the `ValidatedPass` abstraction
//! end-to-end through the harness, one leg each:
//!
//! * **regalloc** — a corpus generated with the high-register-pressure
//!   profile (`GenConfig::pressure`), validated under `PassId::Regalloc`;
//!   every function exceeds the register pool, so the leg measures the
//!   *spilling* allocator's translation-validation throughput;
//! * **gvn** — the default corpus validated under `PassId::Gvn` (LLVM IR
//!   to LLVM IR), measuring the mid-end pass's validation throughput.
//!
//! Emits `BENCH_PR10.json` with per-leg wall time, functions/second,
//! the Fig. 6 outcome table, and the obligation-cache hit ratio, plus leg
//! ground truth: how many regalloc functions actually spilled and how many
//! values GVN eliminated corpus-wide.
//!
//! In-bench acceptance bars (the run aborts when missed):
//!
//! * every unit of both legs validates (no timeouts, crashes, or refusals);
//! * every regalloc-leg function takes the spill path (the pressure
//!   profile does its job);
//! * the GVN leg eliminates at least one value somewhere in the corpus
//!   (the pass is not a corpus-wide no-op).
//!
//! Environment knobs:
//!
//! * `KEQ_PR10_N`        — corpus functions per leg (default 16)
//! * `KEQ_PR10_SECS`     — per-function time limit (default 10)
//! * `KEQ_PR10_SEED`     — corpus seed (default 2021)
//! * `KEQ_PR10_PRESSURE` — regalloc-leg pressure pins (default 10)
//! * `KEQ_PR10_OUT`      — output path (default `BENCH_PR10.json`)
//!
//! `scripts/bench.sh pr10` drives this target; CI runs it smoke-sized.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use keq_bench::{outcome_table, run_corpus_cfg, CorpusSummary, GenConfig, HarnessOptions};
use keq_core::KeqOptions;
use keq_isel::{allocate_with_options, select, IselOptions, PassId, RaOptions};
use keq_llvm::ast::Module;
use keq_llvm::gvn::{run_gvn, GvnOptions};
use keq_llvm::Layout;
use keq_smt::Budget;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One single-pass corpus sweep through the full harness.
fn measure(cfg: GenConfig, n: usize, secs: u64, pass: PassId) -> (Duration, Module, CorpusSummary) {
    let opts = HarnessOptions {
        keq: KeqOptions {
            time_limit: Some(Duration::from_secs(secs)),
            solver_budget: Budget {
                max_conflicts: 500_000,
                max_terms: 2_000_000,
                max_time: Some(Duration::from_secs(secs / 4 + 1)),
            },
            ..KeqOptions::default()
        },
        passes: vec![pass],
        ..HarnessOptions::default()
    };
    let start = Instant::now();
    let (m, summary) = run_corpus_cfg(cfg, n, &opts);
    (start.elapsed(), m, summary)
}

fn json_leg(wall: Duration, summary: &CorpusSummary) -> String {
    let funcs_per_sec = summary.total() as f64 / wall.as_secs_f64().max(1e-9);
    format!(
        "{{\"wall_ms\": {}, \"functions\": {}, \"functions_per_sec\": {:.3}, \
         \"obligation_cache_hit_ratio\": {:.4}, \"solver_queries\": {}, \"outcome\": {}}}",
        wall.as_millis(),
        summary.total(),
        funcs_per_sec,
        summary.obligation_cache_hit_ratio(),
        summary.solver.queries,
        outcome_table(summary).to_json_string()
    )
}

fn assert_all_succeeded(leg: &str, summary: &CorpusSummary) {
    for row in &summary.rows {
        assert_eq!(
            row.result.kind().name(),
            "succeeded",
            "acceptance bar ({leg}): {} [{}] finished {:?}",
            row.name,
            row.pass.name(),
            row.result
        );
    }
}

fn main() {
    let n = env_u64("KEQ_PR10_N", 16) as usize;
    let secs = env_u64("KEQ_PR10_SECS", 10);
    let seed = env_u64("KEQ_PR10_SEED", 2021);
    let pressure = env_u64("KEQ_PR10_PRESSURE", 10) as usize;
    let out = std::env::var("KEQ_PR10_OUT").unwrap_or_else(|_| "BENCH_PR10.json".to_string());

    eprintln!(
        "regalloc leg: {n} high-pressure functions (seed {seed}, pressure {pressure}, \
         {secs}s/function)..."
    );
    let ra_cfg = GenConfig { seed, pressure, ..GenConfig::default() };
    let (ra_wall, ra_module, ra_summary) = measure(ra_cfg, n, secs, PassId::Regalloc);
    assert_all_succeeded("regalloc", &ra_summary);

    // Ground truth: re-run selection + allocation outside the harness to
    // count which functions actually spilled.
    let mut spilled_functions = 0usize;
    let mut spilled_values = 0usize;
    for f in &ra_module.functions {
        let layout = Layout::of(&ra_module, f);
        let pre = select(&ra_module, f, &layout, IselOptions::default())
            .expect("corpus functions select")
            .func;
        let (_, map) =
            allocate_with_options(&pre, RaOptions::default(), None).expect("uncancelled");
        if !map.spills.is_empty() {
            spilled_functions += 1;
            spilled_values += map.spills.len();
        }
    }
    assert_eq!(
        spilled_functions, n,
        "acceptance bar: the pressure profile must force every function to spill"
    );

    eprintln!("gvn leg: {n} corpus functions (seed {seed}, {secs}s/function)...");
    let gvn_cfg = GenConfig { seed, ..GenConfig::default() };
    let (gvn_wall, gvn_module, gvn_summary) = measure(gvn_cfg, n, secs, PassId::Gvn);
    assert_all_succeeded("gvn", &gvn_summary);

    let eliminated: usize = gvn_module
        .functions
        .iter()
        .map(|f| run_gvn(f, GvnOptions::default()).eliminated.len())
        .sum();
    assert!(
        eliminated > 0,
        "acceptance bar: GVN must eliminate something somewhere in the corpus"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_PR10\",");
    let _ = writeln!(json, "  \"functions_per_leg\": {n},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"pressure\": {pressure},");
    let _ = writeln!(json, "  \"regalloc\": {},", json_leg(ra_wall, &ra_summary));
    let _ = writeln!(json, "  \"spilled_functions\": {spilled_functions},");
    let _ = writeln!(json, "  \"spilled_values\": {spilled_values},");
    let _ = writeln!(json, "  \"gvn\": {},", json_leg(gvn_wall, &gvn_summary));
    let _ = writeln!(json, "  \"gvn_values_eliminated\": {eliminated}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out, &json).expect("write BENCH_PR10 json");
    print!("{json}");
    eprintln!(
        "wrote {out} (regalloc {}ms with {spilled_values} spilled values, gvn {}ms with \
         {eliminated} eliminations)",
        ra_wall.as_millis(),
        gvn_wall.as_millis()
    );
}
