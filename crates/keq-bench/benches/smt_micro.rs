//! Criterion micro-benchmarks:
//!
//! * **§3 ablation** — the positive-form path-condition query
//!   (`φ₁ ∧ Ψ₂`) versus the naive negated query (`φ₁ ∧ ¬φ₂`);
//! * solver scaling on arithmetic identities by bit width;
//! * end-to-end validation latency of the running example.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use keq_core::KeqOptions;
use keq_isel::{validate_function, IselOptions, VcOptions};
use keq_llvm::parse_module;
use keq_smt::{Solver, Sort, TermBank, TermId};

/// A branchy path-condition pair like the ones ISel validation produces:
/// `φ₁ = (i - n <u 0 … layered comparisons)`, target `φ₂`, sibling `¬φ₂`.
fn path_conditions(bank: &mut TermBank, w: u32) -> (TermId, TermId, TermId) {
    let i = bank.mk_var("i", Sort::BitVec(w));
    let n = bank.mk_var("n", Sort::BitVec(w));
    let d = bank.mk_var("d", Sort::BitVec(w));
    // φ₁: (i + d) <u n  — the LLVM-side branch condition.
    let id = bank.mk_bvadd(i, d);
    let phi1 = bank.mk_bvult(id, n);
    // φ₂: ¬(n <=u i + d) — the equivalent x86-side form (no borrow after
    // the `sub`, complemented). Syntactically different, so the solver has
    // real work; the sibling is the other branch's condition.
    let sibling = bank.mk_bvule(n, id);
    let phi2 = bank.mk_not(sibling);
    (phi1, phi2, sibling)
}

fn bench_positive_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("s3_positive_form_ablation");
    group.sample_size(20);
    for w in [16u32, 32, 64] {
        group.bench_with_input(BenchmarkId::new("positive", w), &w, |b, &w| {
            b.iter(|| {
                let mut bank = TermBank::new();
                let (phi1, _phi2, sibling) = path_conditions(&mut bank, w);
                let mut solver = Solver::new();
                assert!(solver
                    .prove_implies_positive(&mut bank, &[phi1], &[sibling])
                    .is_proved());
            });
        });
        group.bench_with_input(BenchmarkId::new("negated", w), &w, |b, &w| {
            b.iter(|| {
                let mut bank = TermBank::new();
                let (phi1, phi2, _sibling) = path_conditions(&mut bank, w);
                let mut solver = Solver::new();
                assert!(solver.prove_implies(&mut bank, &[phi1], phi2).is_proved());
            });
        });
    }
    group.finish();
}

fn bench_solver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_width_scaling");
    group.sample_size(10);
    for w in [8u32, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::new("add_sub_roundtrip", w), &w, |b, &w| {
            b.iter(|| {
                let mut bank = TermBank::new();
                let x = bank.mk_var("x", Sort::BitVec(w));
                let y = bank.mk_var("y", Sort::BitVec(w));
                let s = bank.mk_bvadd(x, y);
                let d = bank.mk_bvsub(s, y);
                let mut solver = Solver::new();
                assert!(solver.prove_equiv(&mut bank, &[], d, x).is_proved());
            });
        });
    }
    group.finish();
}

fn bench_running_example(c: &mut Criterion) {
    let m = parse_module(keq_llvm::corpus::ARITHM_SEQ_SUM).expect("parses");
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("validate_arithm_seq_sum", |b| {
        b.iter(|| {
            let f = m.function("arithm_seq_sum").expect("present");
            let out = validate_function(
                &m,
                f,
                IselOptions::default(),
                VcOptions::default(),
                KeqOptions::default(),
            )
            .expect("supported");
            assert!(out.report.verdict.is_validated());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_positive_form, bench_solver_scaling, bench_running_example);
criterion_main!(benches);
