//! Micro-benchmarks (plain timing harness — no external bench framework,
//! so the workspace builds offline):
//!
//! * **§3 ablation** — the positive-form path-condition query
//!   (`φ₁ ∧ Ψ₂`) versus the naive negated query (`φ₁ ∧ ¬φ₂`);
//! * solver scaling on arithmetic identities by bit width;
//! * end-to-end validation latency of the running example;
//! * **session prefix reuse** — a multi-obligation sync-point batch in
//!   scratch mode versus session mode, with the bit-blast counters that
//!   back the PR's ≥2× reuse acceptance bar.

use std::time::{Duration, Instant};

use keq_core::KeqOptions;
use keq_isel::{validate_function, IselOptions, VcOptions};
use keq_llvm::parse_module;
use keq_smt::{Solver, Sort, TermBank, TermId};

/// Times `iters` runs of `f` and prints the mean per-iteration latency.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    // One warm-up run outside the timed window.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let mean = start.elapsed() / iters;
    println!("{name:<44} {:>12}", format_duration(mean));
}

fn format_duration(d: Duration) -> String {
    if d < Duration::from_millis(1) {
        format!("{:.1} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{:.2} ms", d.as_secs_f64() * 1e3)
    }
}

/// A branchy path-condition pair like the ones ISel validation produces:
/// `φ₁ = (i - n <u 0 … layered comparisons)`, target `φ₂`, sibling `¬φ₂`.
fn path_conditions(bank: &mut TermBank, w: u32) -> (TermId, TermId, TermId) {
    let i = bank.mk_var("i", Sort::BitVec(w));
    let n = bank.mk_var("n", Sort::BitVec(w));
    let d = bank.mk_var("d", Sort::BitVec(w));
    // φ₁: (i + d) <u n  — the LLVM-side branch condition.
    let id = bank.mk_bvadd(i, d);
    let phi1 = bank.mk_bvult(id, n);
    // φ₂: ¬(n <=u i + d) — the equivalent x86-side form (no borrow after
    // the `sub`, complemented). Syntactically different, so the solver has
    // real work; the sibling is the other branch's condition.
    let sibling = bank.mk_bvule(n, id);
    let phi2 = bank.mk_not(sibling);
    (phi1, phi2, sibling)
}

fn bench_positive_form() {
    println!("--- s3_positive_form_ablation ---");
    for w in [16u32, 32, 64] {
        bench(&format!("positive/{w}"), 20, || {
            let mut bank = TermBank::new();
            let (phi1, _phi2, sibling) = path_conditions(&mut bank, w);
            let mut solver = Solver::new();
            assert!(solver.prove_implies_positive(&mut bank, &[phi1], &[sibling]).is_proved());
        });
        bench(&format!("negated/{w}"), 20, || {
            let mut bank = TermBank::new();
            let (phi1, phi2, _sibling) = path_conditions(&mut bank, w);
            let mut solver = Solver::new();
            assert!(solver.prove_implies(&mut bank, &[phi1], phi2).is_proved());
        });
    }
}

fn bench_solver_scaling() {
    println!("--- solver_width_scaling ---");
    for w in [8u32, 16, 32, 64] {
        bench(&format!("add_sub_roundtrip/{w}"), 10, || {
            let mut bank = TermBank::new();
            let x = bank.mk_var("x", Sort::BitVec(w));
            let y = bank.mk_var("y", Sort::BitVec(w));
            let s = bank.mk_bvadd(x, y);
            let d = bank.mk_bvsub(s, y);
            let mut solver = Solver::new();
            assert!(solver.prove_equiv(&mut bank, &[], d, x).is_proved());
        });
    }
}

fn bench_running_example() {
    println!("--- end_to_end ---");
    let m = parse_module(keq_llvm::corpus::ARITHM_SEQ_SUM).expect("parses");
    bench("validate_arithm_seq_sum", 10, || {
        let f = m.function("arithm_seq_sum").expect("present");
        let out = validate_function(
            &m,
            f,
            IselOptions::default(),
            VcOptions::default(),
            KeqOptions::default(),
        )
        .expect("supported");
        assert!(out.report.verdict.is_validated());
    });
}

/// One sync point, many obligations: scratch mode re-blasts the prefix
/// per query, session mode blasts it once and adds each delta under an
/// activation literal. The `terms_blasted` counter ratio is the PR's
/// acceptance metric (session must blast ≥2× fewer nodes).
fn bench_session_reuse() {
    println!("--- session_prefix_reuse ---");
    let obligations = 12usize;
    let mut bank = TermBank::new();
    let wl = keq_bench::sync_point_workload(&mut bank, 32, obligations);

    let mut scratch = Solver::new();
    let scratch_before = scratch.stats();
    let scratch_start = Instant::now();
    for (delta, expect_sat) in &wl.obligations {
        let mut full = wl.prefix.clone();
        full.extend_from_slice(delta);
        let outcome = scratch.check_sat(&mut bank, &full);
        assert_eq!(matches!(outcome, keq_smt::CheckOutcome::Sat(_)), *expect_sat);
    }
    let scratch_time = scratch_start.elapsed();
    let scratch_stats = scratch.stats().since(&scratch_before);

    let mut warm = Solver::new();
    let warm_before = warm.stats();
    let session_start = Instant::now();
    let mut session = warm.open_session(&mut bank, &wl.prefix);
    for (delta, expect_sat) in &wl.obligations {
        let outcome = session.check_sat(&mut bank, delta);
        assert_eq!(matches!(outcome, keq_smt::CheckOutcome::Sat(_)), *expect_sat);
    }
    drop(session);
    let session_time = session_start.elapsed();
    let session_stats = warm.stats().since(&warm_before);

    println!(
        "scratch/{obligations}-obligations {:>23}   blasted {:>6}",
        format_duration(scratch_time),
        scratch_stats.terms_blasted
    );
    println!(
        "session/{obligations}-obligations {:>23}   blasted {:>6}  reused {:>6}  retained-clauses {:>6}",
        format_duration(session_time),
        session_stats.terms_blasted,
        session_stats.terms_blast_reused,
        session_stats.clauses_retained
    );
    assert!(
        session_stats.terms_blasted * 2 <= scratch_stats.terms_blasted,
        "session mode must bit-blast at least 2x fewer nodes \
         (session {}, scratch {})",
        session_stats.terms_blasted,
        scratch_stats.terms_blasted
    );
}

/// Cold-path cost of obligation fingerprinting: the same sync-point batch
/// solved by a detached solver (no shared cache — fingerprinting skipped
/// entirely) versus one attached to an empty shared cache (every query
/// fingerprints, looks up, misses, and — for unsat verdicts — stores).
/// The attached run's overhead over the detached run is the PR's ≤5%
/// acceptance bar; it is asserted with headroom for timer noise since a
/// micro-run's wall clock jitters more than the fingerprint pass costs.
fn bench_fingerprint_overhead() {
    println!("--- obligation_fingerprint_overhead ---");
    let obligations = 12usize;
    let iters = 8u32;

    let run = |attach: bool| -> Duration {
        let mut total = Duration::ZERO;
        for i in 0..=iters {
            let mut bank = TermBank::new();
            let wl = keq_bench::sync_point_workload(&mut bank, 32, obligations);
            let mut solver = Solver::new();
            if attach {
                let cache = std::sync::Arc::new(keq_smt::SharedObligationCache::new());
                solver.set_obligation_cache(Some(cache));
            }
            let start = Instant::now();
            for (delta, expect_sat) in &wl.obligations {
                let mut full = wl.prefix.clone();
                full.extend_from_slice(delta);
                let outcome = solver.check_sat(&mut bank, &full);
                assert_eq!(matches!(outcome, keq_smt::CheckOutcome::Sat(_)), *expect_sat);
            }
            // Iteration 0 is the warm-up, outside the timed total.
            if i > 0 {
                total += start.elapsed();
            }
        }
        total / iters
    };

    let detached = run(false);
    let attached = run(true);
    let overhead = attached.as_secs_f64() / detached.as_secs_f64().max(1e-9) - 1.0;
    println!("detached/{obligations}-obligations {:>21}", format_duration(detached));
    println!(
        "attached/{obligations}-obligations {:>21}   overhead {:>6.1}%",
        format_duration(attached),
        overhead * 100.0
    );
    assert!(
        attached <= detached.mul_f64(1.05) + Duration::from_millis(5),
        "cold fingerprinting must cost <=5% over a detached solver \
         (detached {detached:?}, attached {attached:?})"
    );
}

/// Obligation normalization: the same redundancy-heavy micro corpus solved
/// with the saturating rewriter on (the default) and off. The rewriter-on
/// leg must bit-blast ≥20% fewer term nodes — the PR's acceptance bar —
/// without regressing wall time on this easy mass.
fn bench_normalization() {
    println!("--- obligation_normalization ---");
    let obligations = 20usize;

    let run = |rewrite: bool| -> (Duration, keq_smt::SolverStats) {
        let mut bank = TermBank::new();
        let wl = keq_bench::normalization_workload(&mut bank, 32, obligations, 0);
        let mut solver = Solver::new();
        solver.set_rewrite_enabled(rewrite);
        let before = solver.stats();
        let start = Instant::now();
        for (delta, expect_sat) in &wl.obligations {
            let mut full = wl.prefix.clone();
            full.extend_from_slice(delta);
            let outcome = solver.check_sat(&mut bank, &full);
            assert_eq!(matches!(outcome, keq_smt::CheckOutcome::Sat(_)), *expect_sat);
        }
        (start.elapsed(), solver.stats().since(&before))
    };

    let (off_time, off_stats) = run(false);
    let (on_time, on_stats) = run(true);
    println!(
        "rewrite-off/{obligations}-obligations {:>18}   blasted {:>6}",
        format_duration(off_time),
        off_stats.terms_blasted
    );
    println!(
        "rewrite-on/{obligations}-obligations  {:>18}   blasted {:>6}  rules_fired {:>5}  nodes_saved {:>5}",
        format_duration(on_time),
        on_stats.terms_blasted,
        on_stats.rewrite_rules_fired,
        on_stats.rewrite_nodes_saved
    );
    assert!(
        on_stats.terms_blasted * 100 <= off_stats.terms_blasted * 80,
        "acceptance bar: normalization must cut blasted terms by >=20% \
         (on {}, off {})",
        on_stats.terms_blasted,
        off_stats.terms_blasted
    );
    assert!(
        on_time <= off_time.mul_f64(1.05) + Duration::from_millis(250),
        "acceptance bar: normalization must not regress wall time \
         (off {off_time:?}, on {on_time:?})"
    );
}

fn main() {
    bench_positive_form();
    bench_solver_scaling();
    bench_running_example();
    bench_session_reuse();
    bench_fingerprint_overhead();
    bench_normalization();
}
