//! **BENCH_PR9** — machine-readable obligation-normalization benchmark.
//!
//! Two "functions" (variant 0 and variant 1 of the redundancy-heavy
//! [`keq_bench::normalization_workload`]) pose the same proof obligations
//! in different surface syntax against one shared obligation cache, cold.
//! The run happens twice:
//!
//! * **baseline** — saturating rewriting disabled: exactly the pre-rewrite
//!   pipeline (the BENCH_PR4 cold behavior), where the two spellings
//!   fingerprint apart and every function-B lookup misses;
//! * **rewrite** — rewriting enabled (the default): both spellings
//!   normalize to the same obligation, so function B discharges its
//!   unsatisfiable obligations from function A's verdicts on a *cold*
//!   store, and the blaster only ever sees normal forms.
//!
//! Emits `BENCH_PR9.json` with one section per leg — wall time, blasted
//! terms, rewrite counters, shared-cache counters, and the headline
//! function-B cold hit ratio.
//!
//! In-bench acceptance bars (the run aborts when missed):
//!
//! * the rewrite leg bit-blasts ≥ 20% fewer term nodes than the baseline;
//! * the rewrite leg's function-B cold hit ratio beats the baseline's by
//!   ≥ 0.2 (cross-function fingerprint collisions actually happened);
//! * the rewrite leg is not slower than the baseline (with slack for
//!   timer noise on smoke-sized runs).
//!
//! Environment knobs:
//!
//! * `KEQ_PR9_N`     — obligations per function (default 40)
//! * `KEQ_PR9_WIDTH` — bitvector width (default 32)
//! * `KEQ_PR9_OUT`   — output path (default `BENCH_PR9.json`)
//!
//! `scripts/bench.sh pr9` drives this target; CI runs it smoke-sized.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use keq_smt::{CheckOutcome, SharedObligationCache, Solver, SolverStats, TermBank};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct Leg {
    wall: Duration,
    total: SolverStats,
    b_hits: u64,
    b_misses: u64,
}

impl Leg {
    fn b_hit_ratio(&self) -> f64 {
        let lookups = self.b_hits + self.b_misses;
        if lookups == 0 { 0.0 } else { self.b_hits as f64 / lookups as f64 }
    }
}

/// Runs both functions against one cold shared cache; function B gets a
/// fresh solver so its only reuse channel is the cross-function cache.
fn run_leg(rewrite: bool, width: u32, count: usize) -> Leg {
    let mut bank = TermBank::new();
    let cache = Arc::new(SharedObligationCache::new());
    let start = Instant::now();
    let mut total = SolverStats::default();
    let mut b_hits = 0;
    let mut b_misses = 0;
    for variant in 0..2u64 {
        let wl = keq_bench::normalization_workload(&mut bank, width, count, variant);
        let mut solver = Solver::new();
        solver.set_rewrite_enabled(rewrite);
        solver.set_obligation_cache(Some(cache.clone()));
        for (delta, expect_sat) in &wl.obligations {
            let mut full = wl.prefix.clone();
            full.extend_from_slice(delta);
            let outcome = solver.check_sat(&mut bank, &full);
            assert_eq!(
                matches!(outcome, CheckOutcome::Sat(_)),
                *expect_sat,
                "verdict drift (rewrite={rewrite}, variant={variant})"
            );
        }
        let stats = solver.stats();
        if variant == 1 {
            b_hits = stats.obligation_cache_hits;
            b_misses = stats.obligation_cache_misses;
        }
        total.merge(&stats);
    }
    Leg { wall: start.elapsed(), total, b_hits, b_misses }
}

fn json_leg(leg: &Leg) -> String {
    let s = &leg.total;
    format!(
        "{{\"wall_ms\": {}, \"queries\": {}, \"terms_blasted\": {}, \
         \"rewrite_rules_fired\": {}, \"rewrite_passes\": {}, \
         \"rewrite_nodes_saved\": {}, \"obligation_cache_hits\": {}, \
         \"obligation_cache_misses\": {}, \"obligation_cache_stores\": {}, \
         \"cold_b_hit_ratio\": {:.4}}}",
        leg.wall.as_millis(),
        s.queries,
        s.terms_blasted,
        s.rewrite_rules_fired,
        s.rewrite_passes,
        s.rewrite_nodes_saved,
        s.obligation_cache_hits,
        s.obligation_cache_misses,
        s.obligation_cache_stores,
        leg.b_hit_ratio(),
    )
}

fn main() {
    let count = env_u64("KEQ_PR9_N", 40) as usize;
    let width = env_u64("KEQ_PR9_WIDTH", 32) as u32;
    let out = std::env::var("KEQ_PR9_OUT").unwrap_or_else(|_| "BENCH_PR9.json".to_string());

    eprintln!("baseline: 2 functions x {count} obligations (width {width}), rewriting off...");
    let baseline = run_leg(false, width, count);
    eprintln!("rewrite: same workload, saturating normalization on...");
    let rewrite = run_leg(true, width, count);

    let blasted_reduction = 1.0
        - rewrite.total.terms_blasted as f64 / (baseline.total.terms_blasted as f64).max(1.0);
    assert!(
        rewrite.total.terms_blasted * 100 <= baseline.total.terms_blasted * 80,
        "acceptance bar: normalization must cut blasted terms by >=20% \
         (rewrite {}, baseline {})",
        rewrite.total.terms_blasted,
        baseline.total.terms_blasted
    );
    assert!(
        rewrite.b_hits > 0 && rewrite.b_hit_ratio() >= baseline.b_hit_ratio() + 0.2,
        "acceptance bar: cross-function collisions must lift the cold hit ratio by >=0.2 \
         (rewrite {:.2}, baseline {:.2})",
        rewrite.b_hit_ratio(),
        baseline.b_hit_ratio()
    );
    assert!(
        rewrite.wall <= baseline.wall.mul_f64(1.05) + Duration::from_millis(250),
        "acceptance bar: normalization must not be slower \
         (baseline {:?}, rewrite {:?})",
        baseline.wall,
        rewrite.wall
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_PR9\",");
    let _ = writeln!(json, "  \"obligations_per_function\": {count},");
    let _ = writeln!(json, "  \"width\": {width},");
    let _ = writeln!(json, "  \"baseline\": {},", json_leg(&baseline));
    let _ = writeln!(json, "  \"rewrite\": {},", json_leg(&rewrite));
    let _ = writeln!(json, "  \"blasted_reduction\": {blasted_reduction:.4},");
    let _ = writeln!(json, "  \"cold_hit_ratio_baseline\": {:.4},", baseline.b_hit_ratio());
    let _ = writeln!(json, "  \"cold_hit_ratio_rewrite\": {:.4}", rewrite.b_hit_ratio());
    let _ = writeln!(json, "}}");

    std::fs::write(&out, &json).expect("write BENCH_PR9 json");
    print!("{json}");
    eprintln!(
        "wrote {out} (blasted -{:.0}%, cold B hit ratio {:.2} vs {:.2})",
        blasted_reduction * 100.0,
        rewrite.b_hit_ratio(),
        baseline.b_hit_ratio()
    );
}
