//! **Fig. 7** — distributions of validation time and code size over the
//! corpus. The paper reports a heavily right-skewed time distribution
//! (median 0.8 s, mean 150 s) and a long-tailed code-size distribution;
//! this harness prints the same two histograms plus the mean/median
//! summary. Knobs: `KEQ_FIG7_N` (default 60), `KEQ_FIG7_SECS` (default 20),
//! `KEQ_FIG7_SEED` (default 2021).

use std::time::Duration;

use keq_bench::{run_corpus, Histogram};
use keq_core::KeqOptions;
use keq_smt::Budget;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let n = env_u64("KEQ_FIG7_N", 60) as usize;
    let secs = env_u64("KEQ_FIG7_SECS", 20);
    let seed = env_u64("KEQ_FIG7_SEED", 2021);
    let opts = KeqOptions {
        time_limit: Some(Duration::from_secs(secs)),
        solver_budget: Budget {
            max_conflicts: 500_000,
            max_terms: 2_000_000,
            max_time: Some(Duration::from_secs(secs / 4 + 1)),
        },
        ..KeqOptions::default()
    };
    eprintln!("validating {n} corpus functions (seed {seed})...");
    let (_m, summary) = run_corpus(seed, n, opts);

    println!("=== Fig. 7: distributions of validation time and code size ===\n");
    let mut time_hist = Histogram::new(
        "validation time (seconds)",
        vec![0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0],
    );
    let mut size_hist =
        Histogram::new("code size (instructions)", vec![10.0, 25.0, 50.0, 100.0, 200.0, 400.0]);
    for row in &summary.rows {
        time_hist.add(row.time.as_secs_f64());
        size_hist.add(row.size as f64);
    }
    println!("{}", time_hist.render());
    println!("{}", size_hist.render());

    let mut times: Vec<f64> = summary.rows.iter().map(|r| r.time.as_secs_f64()).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
    let median = times.get(times.len() / 2).copied().unwrap_or(0.0);
    println!("time: mean {mean:.3} s, median {median:.3} s");
    println!("(paper shape: mean >> median — a heavy right tail of hard functions)");
}
