//! **Fig. 1–3** — the running example: `arithm_seq_sum` in LLVM IR, its
//! Virtual x86 translation (Fig. 2(b)), the generated synchronization
//! points (Fig. 3), and the KEQ verdict.

use keq_core::KeqOptions;
use keq_isel::{render_sync_table, validate_function, IselOptions, VcOptions};
use keq_llvm::parse_module;

fn main() {
    let m = parse_module(keq_llvm::corpus::ARITHM_SEQ_SUM).expect("parses");
    let f = m.function("arithm_seq_sum").expect("present");
    println!("=== Fig. 2(a): LLVM IR ===\n{f}");
    let out = validate_function(
        &m,
        f,
        IselOptions::default(),
        VcOptions::default(),
        KeqOptions::default(),
    )
    .expect("supported");
    println!("=== Fig. 2(b): Virtual x86 (Instruction Selection output) ===\n{}", out.isel.func);
    println!("=== Fig. 3: synchronization points ===\n{}", render_sync_table(&out.sync));
    println!("=== KEQ verdict ===\n{}", out.report.verdict);
    println!(
        "stats: {} start points, {} pairs, {} obligations, {} symbolic steps, {} solver queries",
        out.report.stats.start_points,
        out.report.stats.pairs_checked,
        out.report.stats.obligations_proved,
        out.report.stats.steps,
        out.report.stats.solver.queries,
    );
    assert!(out.report.verdict.is_validated(), "the running example must validate");
}
