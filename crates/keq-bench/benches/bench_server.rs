//! **BENCH_SERVER** — machine-readable `keq-server` daemon benchmark.
//!
//! Boots an in-process server on a loopback port, streams a seeded corpus
//! through the wire protocol once to warm the resident obligation cache,
//! then measures a sustained steady-state window: `rounds` full corpus
//! passes split round-robin over `conns` parallel connections, every
//! request one function wrapped with the corpus globals/declarations (what
//! `keq_client` sends). The whole lifecycle runs **twice** — once with
//! live telemetry disabled and once with it enabled — so the bench also
//! prices the instrumentation itself. Emits `BENCH_SERVER.json`
//! (hand-rolled writer; the workspace is dependency-free) with the
//! sustained request rate, the client-observed round-trip latency
//! quantiles (p50/p90/p99), the steady-state cache hit ratio taken from
//! `stats`-op counter deltas across the measured window only — the cold
//! warm-up pass does not dilute it — and the metrics-enabled window's
//! rate beside the overhead ratio.
//!
//! In-bench acceptance bars (the run aborts when missed):
//!
//! * the steady-state window discharges ≥ 74% of its obligation lookups
//!   from the resident cache — the daemon's reason to exist is that the
//!   cache stays warm across requests;
//! * every measured round reproduces the warm-up round's verdict table —
//!   residency must be invisible in verdicts;
//! * the drain accounts for every admitted submission (no losses, no
//!   disconnects) and the server-side latency histogram saw them all;
//! * the metrics-enabled window sustains ≥ 95% of the disabled window's
//!   request rate (`KEQ_SRV_METRICS_RATIO` overrides the bar) — telemetry
//!   must be cheap enough to leave on.
//!
//! Environment knobs:
//!
//! * `KEQ_SRV_N`             — corpus functions (default 16)
//! * `KEQ_SRV_ROUNDS`        — measured steady-state corpus passes (default 4)
//! * `KEQ_SRV_CONNS`         — parallel client connections (default 2)
//! * `KEQ_SRV_SECS`          — per-function wall-clock limit (default 10)
//! * `KEQ_SRV_SEED`          — corpus seed (default 2021)
//! * `KEQ_SRV_OUT`           — output path (default `BENCH_SERVER.json`)
//! * `KEQ_SRV_METRICS_RATIO` — enabled/disabled req/s acceptance bar
//!   (default 0.95)
//!
//! `scripts/bench.sh server` drives this target; CI runs it smoke-sized.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use keq_core::KeqOptions;
use keq_harness::protocol::{ClientRequest, MetricsReport, ServerResponse, StatsSnapshot};
use keq_harness::{connect, HarnessOptions, MetricsConfig, Server, ServerOptions};
use keq_llvm::ast::Module;
use keq_smt::Budget;
use keq_trace::Histogram;
use keq_workload::{generate_corpus, GenConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Corpus function `i` as a self-contained request module (the corpus
/// globals and external declarations ride along), `unit` = corpus index —
/// the same payload `keq_client` sends.
fn request_ir(corpus: &Module, i: usize) -> String {
    Module {
        globals: corpus.globals.clone(),
        functions: vec![corpus.functions[i].clone()],
        declarations: corpus.declarations.clone(),
    }
    .to_string()
}

/// One full corpus pass over an existing connection; returns the verdict
/// kind per function and feeds client-observed round-trip latencies into
/// `latency`.
fn stream_pass(
    conn: &mut keq_harness::ClientConn,
    corpus: &Module,
    units: &[usize],
    tag_base: u64,
    latency: &mut Histogram,
) -> BTreeMap<usize, String> {
    let mut verdicts = BTreeMap::new();
    for &i in units {
        let req = ClientRequest::Validate {
            tag: tag_base + i as u64,
            unit: i as u64,
            pass: keq_isel::PassId::Isel,
            ir: request_ir(corpus, i),
            deadline_ms: None,
            max_attempts: None,
        };
        let start = Instant::now();
        let resp = conn.roundtrip(&req).expect("validate round trip");
        latency.add(start.elapsed().as_micros() as f64);
        let ServerResponse::Validated { results, .. } = resp else {
            panic!("expected a verdict table for f{i}, got {resp:?}");
        };
        assert_eq!(results.len(), 1, "one function per request module");
        verdicts.insert(i, results[0].result.clone());
    }
    verdicts
}

fn stats(conn: &mut keq_harness::ClientConn) -> StatsSnapshot {
    match conn.roundtrip(&ClientRequest::Stats).expect("stats round trip") {
        ServerResponse::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// One measured server lifecycle: boot → warm-up pass → steady-state
/// window → (optional `metrics`-op scrape) → drain. The per-window
/// acceptance bars run inside, so both lifecycles are held to the same
/// contract.
struct Window {
    warmup_wall: Duration,
    warmup_latency: Histogram,
    measured_wall: Duration,
    latency: Histogram,
    hits: u64,
    misses: u64,
    hit_ratio: f64,
    req_per_sec: f64,
    fin_requests: u64,
    fin_completed: u64,
    server_latency: Histogram,
    metrics: Option<Box<MetricsReport>>,
}

#[allow(clippy::too_many_lines)]
fn run_window(
    corpus: &Module,
    n: usize,
    rounds: usize,
    conns: usize,
    secs: u64,
    seed: u64,
    metrics_enabled: bool,
) -> Window {
    let label = if metrics_enabled { "metrics ON" } else { "metrics OFF" };
    let opts = ServerOptions {
        harness: HarnessOptions {
            keq: KeqOptions {
                time_limit: Some(Duration::from_secs(secs)),
                solver_budget: Budget {
                    max_conflicts: 500_000,
                    max_terms: 2_000_000,
                    max_time: Some(Duration::from_secs(secs / 4 + 1)),
                },
                ..KeqOptions::default()
            },
            metrics: MetricsConfig {
                enabled: metrics_enabled,
                // Fast sampling so even a smoke-sized measured window
                // lands collector samples to report.
                sample_interval: Duration::from_millis(50),
                ..MetricsConfig::default()
            },
            ..HarnessOptions::default()
        },
        ..ServerOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", &opts).expect("bind server");
    let addr = server.local_addr();
    let run = std::thread::spawn(move || server.run());

    // Warm-up: one cold corpus pass fills the resident obligation cache.
    eprintln!("[{label}] warm-up: {n} corpus functions (seed {seed}) through {addr}...");
    let mut ctl = connect(&addr).expect("connect control connection");
    let mut warmup_latency = Histogram::log_us("warm-up round trip (µs)");
    let units: Vec<usize> = (0..n).collect();
    let warmup_start = Instant::now();
    let baseline = stream_pass(&mut ctl, corpus, &units, 0, &mut warmup_latency);
    let warmup_wall = warmup_start.elapsed();
    let before = stats(&mut ctl);

    // Steady state: `rounds` further corpus passes, split round-robin over
    // `conns` parallel connections. The tag space is partitioned per
    // connection; the unit stays the corpus function index everywhere.
    eprintln!(
        "[{label}] steady state: {rounds} rounds x {n} functions over {conns} connection(s)..."
    );
    let measured_start = Instant::now();
    let (latency, verdict_tables): (Histogram, Vec<BTreeMap<usize, String>>) =
        std::thread::scope(|scope| {
            let addr = addr.as_str();
            let handles: Vec<_> = (0..conns)
                .map(|c| {
                    let units: Vec<usize> = (0..n).filter(|i| i % conns == c).collect();
                    scope.spawn(move || {
                        let mut conn = connect(addr).expect("connect load connection");
                        let mut latency = Histogram::log_us("round trip (µs)");
                        let mut tables = Vec::with_capacity(rounds);
                        for round in 0..rounds {
                            let tag_base = ((1 + round) * n + c * rounds * n) as u64;
                            tables.push(stream_pass(
                                &mut conn,
                                corpus,
                                &units,
                                tag_base,
                                &mut latency,
                            ));
                        }
                        (latency, tables)
                    })
                })
                .collect();
            let mut latency = Histogram::log_us("round trip (µs)");
            // Per-round tables arrive split by connection; merge each
            // round's shards back into one table per round.
            let mut merged: Vec<BTreeMap<usize, String>> = vec![BTreeMap::new(); rounds];
            for handle in handles {
                let (shard_latency, shard_tables) = handle.join().expect("load connection");
                latency.merge(&shard_latency);
                for (round, shard) in shard_tables.into_iter().enumerate() {
                    merged[round].extend(shard);
                }
            }
            (latency, merged)
        });
    let measured_wall = measured_start.elapsed();
    let after = stats(&mut ctl);

    // The instrumented window must actually have telemetry to show for
    // its overhead: collector samples and a populated slow table.
    let metrics = metrics_enabled.then(|| {
        match ctl.roundtrip(&ClientRequest::Metrics).expect("metrics round trip") {
            ServerResponse::Metrics(m) => {
                assert!(m.enabled, "the instrumented window must report metrics enabled");
                assert!(m.samples > 0, "the collector must have sampled the measured window");
                assert!(!m.slow.is_empty(), "the slow-obligation table must be populated");
                m
            }
            other => panic!("expected metrics, got {other:?}"),
        }
    });

    match ctl.roundtrip(&ClientRequest::Shutdown).expect("shutdown round trip") {
        ServerResponse::ShuttingDown => {}
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    let summary = run.join().expect("server thread");

    // Residency must be invisible in verdicts: every steady-state round
    // reproduces the warm-up round's table.
    for (round, table) in verdict_tables.iter().enumerate() {
        assert_eq!(
            table, &baseline,
            "[{label}] steady-state round {round} drifted from the warm-up verdicts"
        );
    }

    // The drain accounts for everything the bench admitted.
    let requests = (rounds * n) as u64;
    let fin = &summary.fin.server;
    assert_eq!(fin.requests, requests + n as u64, "every submission was admitted");
    assert_eq!(fin.completed, fin.requests, "every admitted submission finalized");
    assert_eq!(fin.disconnects, 0, "no reply channel died");
    assert_eq!(
        summary.fin.latency.total() as u64,
        fin.completed,
        "the server-side latency histogram saw every finalization"
    );

    // The headline: steady-state obligation lookups ride the resident
    // cache. Counter deltas across the measured window only — the cold
    // warm-up pass is excluded by construction.
    let hits = after.cache_hits - before.cache_hits;
    let misses = after.cache_misses - before.cache_misses;
    let lookups = hits + misses;
    let hit_ratio = if lookups == 0 { 1.0 } else { hits as f64 / lookups as f64 };
    assert!(
        lookups > 0,
        "the steady-state window performed no cache lookups — nothing was measured"
    );
    assert!(
        hit_ratio >= 0.74,
        "acceptance bar: steady-state requests must discharge >=74% of obligation \
         lookups from the resident cache (hits {hits}, misses {misses}, \
         ratio {hit_ratio:.3})"
    );

    Window {
        warmup_wall,
        warmup_latency,
        measured_wall,
        latency,
        hits,
        misses,
        hit_ratio,
        req_per_sec: requests as f64 / measured_wall.as_secs_f64().max(1e-9),
        fin_requests: fin.requests,
        fin_completed: fin.completed,
        server_latency: summary.fin.latency.clone(),
        metrics,
    }
}

fn main() {
    let n = env_u64("KEQ_SRV_N", 16) as usize;
    let rounds = env_u64("KEQ_SRV_ROUNDS", 4) as usize;
    let conns = (env_u64("KEQ_SRV_CONNS", 2) as usize).clamp(1, n.max(1));
    let secs = env_u64("KEQ_SRV_SECS", 10);
    let seed = env_u64("KEQ_SRV_SEED", 2021);
    let out = std::env::var("KEQ_SRV_OUT").unwrap_or_else(|_| "BENCH_SERVER.json".to_string());
    let metrics_ratio_bar = env_f64("KEQ_SRV_METRICS_RATIO", 0.95);

    let corpus = generate_corpus(GenConfig { seed, ..GenConfig::default() }, n);

    // Lifecycle 1: telemetry disabled — the headline numbers.
    let base = run_window(&corpus, n, rounds, conns, secs, seed, false);
    // Lifecycle 2: telemetry enabled — what the instrumentation costs.
    let inst = run_window(&corpus, n, rounds, conns, secs, seed, true);

    let requests = (rounds * n) as u64;
    let metrics_ratio = inst.req_per_sec / base.req_per_sec.max(1e-9);
    assert!(
        metrics_ratio >= metrics_ratio_bar,
        "acceptance bar: the metrics-enabled window must sustain >={:.0}% of the \
         disabled window's rate (disabled {:.1} req/s, enabled {:.1} req/s, \
         ratio {metrics_ratio:.3})",
        metrics_ratio_bar * 100.0,
        base.req_per_sec,
        inst.req_per_sec,
    );

    let req_per_sec = base.req_per_sec;
    let p50 = base.latency.p50().unwrap_or(0.0);
    let p90 = base.latency.p90().unwrap_or(0.0);
    let p99 = base.latency.p99().unwrap_or(0.0);
    let hits = base.hits;
    let misses = base.misses;
    let hit_ratio = base.hit_ratio;
    let m = inst.metrics.as_ref().expect("instrumented window scraped metrics");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_SERVER\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"n_functions\": {n},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"connections\": {conns},");
    let _ = writeln!(json, "  \"per_function_secs\": {secs},");
    let _ = writeln!(
        json,
        "  \"warmup\": {{\"wall_ms\": {}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \
         \"p99_us\": {:.1}}},",
        base.warmup_wall.as_millis(),
        base.warmup_latency.p50().unwrap_or(0.0),
        base.warmup_latency.p90().unwrap_or(0.0),
        base.warmup_latency.p99().unwrap_or(0.0)
    );
    let _ = writeln!(json, "  \"steady_state\": {{");
    let _ = writeln!(json, "    \"requests\": {requests},");
    let _ = writeln!(json, "    \"wall_ms\": {},", base.measured_wall.as_millis());
    let _ = writeln!(json, "    \"req_per_sec\": {req_per_sec:.2},");
    let _ = writeln!(json, "    \"p50_us\": {p50:.1},");
    let _ = writeln!(json, "    \"p90_us\": {p90:.1},");
    let _ = writeln!(json, "    \"p99_us\": {p99:.1},");
    let _ = writeln!(json, "    \"cache_hits\": {hits},");
    let _ = writeln!(json, "    \"cache_misses\": {misses},");
    let _ = writeln!(json, "    \"hit_ratio\": {hit_ratio:.4}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"metrics_enabled\": {{");
    let _ = writeln!(json, "    \"wall_ms\": {},", inst.measured_wall.as_millis());
    let _ = writeln!(json, "    \"req_per_sec\": {:.2},", inst.req_per_sec);
    let _ = writeln!(json, "    \"p50_us\": {:.1},", inst.latency.p50().unwrap_or(0.0));
    let _ = writeln!(json, "    \"p90_us\": {:.1},", inst.latency.p90().unwrap_or(0.0));
    let _ = writeln!(json, "    \"p99_us\": {:.1},", inst.latency.p99().unwrap_or(0.0));
    let _ = writeln!(json, "    \"hit_ratio\": {:.4},", inst.hit_ratio);
    let _ = writeln!(json, "    \"collector_samples\": {},", m.samples);
    let _ = writeln!(json, "    \"slow_rows\": {},", m.slow.len());
    let _ = writeln!(json, "    \"overhead_ratio\": {metrics_ratio:.4}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"server\": {{");
    let _ = writeln!(json, "    \"requests\": {},", base.fin_requests);
    let _ = writeln!(json, "    \"completed\": {},", base.fin_completed);
    let _ = writeln!(
        json,
        "    \"server_p50_us\": {:.1},",
        base.server_latency.p50().unwrap_or(0.0)
    );
    let _ = writeln!(
        json,
        "    \"server_p90_us\": {:.1},",
        base.server_latency.p90().unwrap_or(0.0)
    );
    let _ = writeln!(
        json,
        "    \"server_p99_us\": {:.1}",
        base.server_latency.p99().unwrap_or(0.0)
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out, &json).expect("write BENCH_SERVER json");
    print!("{json}");
    eprintln!(
        "wrote {out} (sustained {req_per_sec:.0} req/s, p99 {p99:.0}µs, steady-state hit \
         ratio {hit_ratio:.2}, metrics overhead ratio {metrics_ratio:.2})"
    );
}
