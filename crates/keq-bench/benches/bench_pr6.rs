//! **BENCH_PR6** — machine-readable crash-safety benchmark.
//!
//! Quantifies the two costs PR 6 introduced and the one saving it bought:
//!
//! 1. `bare`      — the corpus run with no journal (baseline wall time);
//! 2. `journaled` — the same corpus with the write-ahead verdict journal
//!    armed (the overhead side: one framed, checksummed record per
//!    finalized function);
//! 3. `resumed`   — the same corpus again after the journal is truncated
//!    to roughly half its records, as a mid-run kill would leave it
//!    (the saving side: recovered functions skip validation entirely).
//!
//! Emits `BENCH_PR6.json` (hand-rolled writer; the workspace is
//! dependency-free) with one section per run plus the headline overhead
//! and resume ratios.
//!
//! In-bench acceptance bars (the run aborts when missed):
//!
//! * journaling costs ≤ 10% wall time over the bare run (with absolute
//!   slack for timer noise on CI-sized corpora);
//! * the resumed run after a ~50% truncation finishes in ≤ 70% of the
//!   journaled cold wall (same slack), and actually skips work;
//! * all three runs classify every function identically — neither the
//!   journal nor resume may be visible in verdicts.
//!
//! Environment knobs:
//!
//! * `KEQ_PR6_N`    — corpus functions (default 24)
//! * `KEQ_PR6_SECS` — per-function wall-clock limit (default 10)
//! * `KEQ_PR6_SEED` — corpus seed (default 2021)
//! * `KEQ_PR6_OUT`  — output path (default `BENCH_PR6.json`)
//!
//! `scripts/bench.sh pr6` drives this target; CI runs it smoke-sized.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use keq_bench::{outcome_table, run_corpus_with, CorpusSummary, HarnessOptions};
use keq_core::KeqOptions;
use keq_harness::{corpus_fingerprint, journal, JournalWriter};
use keq_smt::obcache::StdStoreIo;
use keq_smt::Budget;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn base_options(secs: u64) -> HarnessOptions {
    HarnessOptions {
        keq: KeqOptions {
            time_limit: Some(Duration::from_secs(secs)),
            solver_budget: Budget {
                max_conflicts: 500_000,
                max_terms: 2_000_000,
                max_time: Some(Duration::from_secs(secs / 4 + 1)),
            },
            ..KeqOptions::default()
        },
        ..HarnessOptions::default()
    }
}

fn measure(seed: u64, n: usize, opts: &HarnessOptions) -> (Duration, u64, CorpusSummary) {
    let start = Instant::now();
    let (m, summary) = run_corpus_with(seed, n, opts);
    (start.elapsed(), corpus_fingerprint(&m), summary)
}

fn json_run(wall: Duration, summary: &CorpusSummary) -> String {
    format!(
        "{{\"wall_ms\": {}, \"resume_skipped\": {}, \"resume_recovered\": {}, \
         \"resume_corrupt\": {}, \"outcome\": {}}}",
        wall.as_millis(),
        summary.resume.skipped,
        summary.resume.recovered,
        summary.resume.corrupt,
        outcome_table(summary).to_json_string()
    )
}

fn kinds(summary: &CorpusSummary) -> Vec<(String, keq_bench::ResultKind)> {
    summary.rows.iter().map(|r| (r.name.clone(), r.result.kind())).collect()
}

fn main() {
    let n = env_u64("KEQ_PR6_N", 24) as usize;
    let secs = env_u64("KEQ_PR6_SECS", 10);
    let seed = env_u64("KEQ_PR6_SEED", 2021);
    let out = std::env::var("KEQ_PR6_OUT").unwrap_or_else(|_| "BENCH_PR6.json".to_string());

    let journal: PathBuf = std::env::temp_dir()
        .join(format!("keq-bench-pr6-{}-{seed}.keqwal", std::process::id()));
    let _ = std::fs::remove_file(&journal);

    eprintln!("bare: {n} corpus functions (seed {seed}, {secs}s/function), no journal...");
    let (bare_wall, _, bare) = measure(seed, n, &base_options(secs));

    let journaled_opts = HarnessOptions {
        journal_path: Some(journal.clone()),
        ..base_options(secs)
    };
    eprintln!("journaled: same corpus, write-ahead journal armed...");
    let (cold_wall, corpus_fp, cold) = measure(seed, n, &journaled_opts);

    // Truncate the journal at the record where cumulative recorded time
    // crosses 50% of the run's total — the prefix a kill at half wall
    // time would leave behind — then rerun with resume on. (Truncating by
    // bytes would keep half the *records*, not half the *work*: per-
    // function times are skewed, so a byte-half journal can recover only
    // the cheap functions and save almost nothing.)
    let bytes_before = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
    let loaded = journal::load(&journal, corpus_fp, &StdStoreIo);
    assert!(!loaded.records.is_empty(), "cold run produced an empty journal");
    let total_us: u64 = loaded.records.iter().map(|r| r.time_us).sum();
    let mut kept = Vec::new();
    let mut acc_us = 0u64;
    for rec in loaded.records {
        if acc_us * 2 >= total_us {
            break;
        }
        acc_us += rec.time_us;
        kept.push(rec);
    }
    let _ = std::fs::remove_file(&journal);
    let mut rewriter = JournalWriter::start(&journal, corpus_fp, None, Arc::new(StdStoreIo), 3);
    for rec in &kept {
        rewriter.append(rec);
    }
    assert!(!rewriter.degraded, "rewriting the truncated journal failed");
    let keep = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);

    let resumed_opts = HarnessOptions { resume: true, ..journaled_opts.clone() };
    eprintln!(
        "resumed: journal truncated to {} records / {keep} of {bytes_before} bytes \
         ({acc_us} of {total_us} recorded us)...",
        kept.len()
    );
    let (resumed_wall, _, resumed) = measure(seed, n, &resumed_opts);
    let _ = std::fs::remove_file(&journal);

    // Crash safety must be invisible in verdicts: all three runs classify
    // every function identically.
    assert_eq!(kinds(&bare), kinds(&cold), "journaled-run verdicts drifted from the bare run");
    assert_eq!(kinds(&bare), kinds(&resumed), "resumed-run verdicts drifted from the bare run");

    assert!(
        resumed.resume.skipped > 0,
        "resume bar: the truncated journal recovered nothing — resume never engaged"
    );

    let overhead = cold_wall.as_secs_f64() / bare_wall.as_secs_f64().max(1e-9);
    // Absolute slack on both bars: CI-sized corpora finish in tens of
    // milliseconds, where scheduling jitter dwarfs journal I/O.
    assert!(
        cold_wall <= bare_wall.mul_f64(1.10) + Duration::from_millis(250),
        "acceptance bar: journaling must cost <=10% wall \
         (bare {bare_wall:?}, journaled {cold_wall:?}, ratio {overhead:.3})"
    );
    let resume_ratio = resumed_wall.as_secs_f64() / cold_wall.as_secs_f64().max(1e-9);
    assert!(
        resumed_wall <= cold_wall.mul_f64(0.70) + Duration::from_millis(250),
        "acceptance bar: resume after a ~50% kill must finish in <=70% of the \
         cold wall (cold {cold_wall:?}, resumed {resumed_wall:?}, ratio {resume_ratio:.3})"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"BENCH_PR6\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"n_functions\": {n},");
    let _ = writeln!(json, "  \"per_function_secs\": {secs},");
    let _ = writeln!(json, "  \"journal_bytes\": {bytes_before},");
    let _ = writeln!(json, "  \"journal_bytes_after_truncation\": {keep},");
    let _ = writeln!(json, "  \"bare\": {},", json_run(bare_wall, &bare));
    let _ = writeln!(json, "  \"journaled\": {},", json_run(cold_wall, &cold));
    let _ = writeln!(json, "  \"resumed\": {},", json_run(resumed_wall, &resumed));
    let _ = writeln!(json, "  \"journal_overhead_ratio\": {overhead:.4},");
    let _ = writeln!(json, "  \"resume_wall_ratio\": {resume_ratio:.4}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out, &json).expect("write BENCH_PR6 json");
    print!("{json}");
    eprintln!(
        "wrote {out} (journal overhead {overhead:.3}x, resume wall {resume_ratio:.3}x, \
         skipped {}/{n})",
        resumed.resume.skipped
    );
}
