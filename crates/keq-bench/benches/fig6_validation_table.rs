//! **Fig. 6** — translation-validation results table over the corpus.
//!
//! The paper validates 4732 supported GCC/SPEC 2006 functions with a 3-hour
//! per-function timeout, reporting Succeeded / timeout / out-of-memory /
//! other counts (91.52% success). SPEC sources are proprietary, so this
//! harness sweeps the synthetic corpus (DESIGN.md substitution #3) with
//! scaled-down resource limits. Environment knobs:
//!
//! * `KEQ_FIG6_N`      — number of functions (default 60)
//! * `KEQ_FIG6_SECS`   — per-function wall-clock limit (default 20)
//! * `KEQ_FIG6_SEED`   — corpus seed (default 2021)

use std::time::Duration;

use keq_bench::{outcome_table, run_corpus, ResultKind};
use keq_core::KeqOptions;
use keq_smt::Budget;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let n = env_u64("KEQ_FIG6_N", 60) as usize;
    let secs = env_u64("KEQ_FIG6_SECS", 20);
    let seed = env_u64("KEQ_FIG6_SEED", 2021);
    let opts = KeqOptions {
        time_limit: Some(Duration::from_secs(secs)),
        solver_budget: Budget {
            max_conflicts: 500_000,
            max_terms: 2_000_000,
            max_time: Some(Duration::from_secs(secs / 4 + 1)),
        },
        ..KeqOptions::default()
    };
    eprintln!("validating {n} corpus functions (seed {seed}, {secs}s/function)...");
    let (_m, summary) = run_corpus(seed, n, opts);
    println!("=== Fig. 6: translation validation results ===");
    println!("{:<30} {:>10}", "Result", "#Functions");
    println!("{:<30} {:>10}", "Succeeded", summary.count(ResultKind::Succeeded));
    println!("{:<30} {:>10}", "Failed due to timeout", summary.count(ResultKind::Timeout));
    println!(
        "{:<30} {:>10}",
        "Failed due to out-of-memory",
        summary.count(ResultKind::OutOfMemory)
    );
    println!("{:<30} {:>10}", "Crashed (isolated panic)", summary.count(ResultKind::Crashed));
    println!("{:<30} {:>10}", "Other", summary.count(ResultKind::Other));
    println!("{:<30} {:>10}", "Total", summary.total());
    println!();
    println!(
        "success rate: {:.2}%  (paper: 91.52% = 4331/4732)",
        summary.success_rate() * 100.0
    );
    // Machine-readable mirror of the table, in the shared report schema.
    println!("outcome_json: {}", outcome_table(&summary).to_json_string());
    println!("{}", summary.summary_line());
}
