//! **Fig. 6** — translation-validation results table over the corpus.
//!
//! The paper validates 4732 supported GCC/SPEC 2006 functions with a 3-hour
//! per-function timeout, reporting Succeeded / timeout / out-of-memory /
//! other counts (91.52% success). SPEC sources are proprietary, so this
//! harness sweeps the synthetic corpus (DESIGN.md substitution #3) with
//! scaled-down resource limits. Environment knobs:
//!
//! * `KEQ_FIG6_N`      — number of functions (default 60)
//! * `KEQ_FIG6_SECS`   — per-function wall-clock limit (default 20)
//! * `KEQ_FIG6_SEED`   — corpus seed (default 2021)
//! * `KEQ_FIG6_BUGS_N` — functions swept per injected GVN bug (default 20)
//!
//! After the main table, the harness replays the §5.2 bug-study
//! methodology against the GVN mid-end pass: each injectable
//! miscompilation is compiled into a corpus slice, and every function the
//! bug observably miscompiles must be *rejected* by the unmodified
//! checker. Fired bugs the checker accepts are cross-checked with concrete
//! differential runs — any diverging input aborts the bench, so an accept
//! is only ever a benign fire (the miscompiled value was unobservable).

use std::time::Duration;

use keq_bench::{outcome_table, run_corpus, ResultKind};
use keq_core::KeqOptions;
use keq_isel::{validate_gvn_with_context, GvnBug, GvnOptions, ValidationContext};
use keq_llvm::gvn::run_gvn;
use keq_smt::Budget;
use keq_workload::{generate_corpus, GenConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let n = env_u64("KEQ_FIG6_N", 60) as usize;
    let secs = env_u64("KEQ_FIG6_SECS", 20);
    let seed = env_u64("KEQ_FIG6_SEED", 2021);
    let opts = KeqOptions {
        time_limit: Some(Duration::from_secs(secs)),
        solver_budget: Budget {
            max_conflicts: 500_000,
            max_terms: 2_000_000,
            max_time: Some(Duration::from_secs(secs / 4 + 1)),
        },
        ..KeqOptions::default()
    };
    eprintln!("validating {n} corpus functions (seed {seed}, {secs}s/function)...");
    let (_m, summary) = run_corpus(seed, n, opts);
    println!("=== Fig. 6: translation validation results ===");
    println!("{:<30} {:>10}", "Result", "#Functions");
    println!("{:<30} {:>10}", "Succeeded", summary.count(ResultKind::Succeeded));
    println!("{:<30} {:>10}", "Failed due to timeout", summary.count(ResultKind::Timeout));
    println!(
        "{:<30} {:>10}",
        "Failed due to out-of-memory",
        summary.count(ResultKind::OutOfMemory)
    );
    println!("{:<30} {:>10}", "Crashed (isolated panic)", summary.count(ResultKind::Crashed));
    println!("{:<30} {:>10}", "Other", summary.count(ResultKind::Other));
    println!("{:<30} {:>10}", "Total", summary.total());
    println!();
    println!(
        "success rate: {:.2}%  (paper: 91.52% = 4331/4732)",
        summary.success_rate() * 100.0
    );
    // Machine-readable mirror of the table, in the shared report schema.
    println!("outcome_json: {}", outcome_table(&summary).to_json_string());
    println!("{}", summary.summary_line());

    // §5.2 methodology against the GVN pass: every function where an
    // injected miscompilation fires must be caught by the same checker.
    let bugs_n = env_u64("KEQ_FIG6_BUGS_N", 20) as usize;
    let mut module = generate_corpus(GenConfig { seed, ..GenConfig::default() }, bugs_n);
    // Known §5.2-style subjects where each bug observably fires, so the
    // caught column is never vacuously zero; the corpus adds breadth.
    let subjects = keq_llvm::parser::parse_module(
        "define i32 @sub_pair(i32 %a, i32 %b) {\n %x = sub i32 %a, %b\n %y = sub i32 %b, \
         %a\n %z = mul i32 %x, %y\n ret i32 %z\n}\ndefine i32 @const_ret(i32 %a) {\n %c = \
         add i32 20, 22\n %s = add i32 %a, %c\n ret i32 %s\n}",
    )
    .expect("subjects parse");
    module.functions.extend(subjects.functions);
    println!();
    println!("=== GVN injected miscompilations (corpus slice of {bugs_n}) ===");
    println!("{:<30} {:>8} {:>8} {:>8}", "Injected bug", "Fired", "Caught", "Benign");
    for (bug, label) in [
        (GvnBug::CommuteSub, "Commuted sub dedup"),
        (GvnBug::OffByOneFold, "Off-by-one constant fold"),
    ] {
        let mut fired = 0usize;
        let mut caught = 0usize;
        for f in &module.functions {
            // The bug "fires" on a function when it changes the pass's
            // output relative to the clean run.
            let clean = run_gvn(f, GvnOptions::default());
            let bugged = run_gvn(f, GvnOptions { bug });
            if clean.func == bugged.func && clean.eliminated == bugged.eliminated {
                continue;
            }
            fired += 1;
            let mut ctx = ValidationContext::new();
            let (report, out) = validate_gvn_with_context(
                &module,
                f,
                GvnOptions { bug },
                opts,
                None,
                &mut ctx,
            );
            if !report.verdict.is_validated() {
                caught += 1;
                continue;
            }
            // The checker accepted a fired bug: legitimate only when the
            // miscompiled value is unobservable. Cross-check with concrete
            // differential runs — any diverging input is a checker miss.
            for trial in 0..16u128 {
                let layout = keq_llvm::Layout::of(&module, f);
                let args: Vec<keq_llvm::interp::CValue> = f
                    .params
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        keq_llvm::interp::CValue::new(32, trial * 37 + 3 + i as u128)
                    })
                    .collect();
                let mut mem_l = keq_smt::MemValue::default();
                let mut mem_r = keq_smt::MemValue::default();
                let fuel = 100_000;
                let ext = &keq_llvm::interp::default_ext_call;
                let l = keq_llvm::interp::run_function(
                    &module, f, &layout, &args, &mut mem_l, fuel, ext,
                );
                let r = keq_llvm::interp::run_function(
                    &module, &out.func, &layout, &args, &mut mem_r, fuel, ext,
                );
                if let (Ok(lv), Ok(rv)) = (&l, &r) {
                    assert_eq!(
                        lv, rv,
                        "{label}: {} miscompiled observably but the checker validated it",
                        f.name
                    );
                }
            }
        }
        let benign = fired - caught;
        println!("{label:<30} {fired:>8} {caught:>8} {benign:>8}");
        assert!(caught > 0, "{label}: the bug never produced a rejected translation");
    }
    println!(
        "every observably-miscompiled function was rejected; validated fires were \
         differentially confirmed benign"
    );
}
