//! **Extension (paper §1 "ongoing work")** — translation validation of the
//! register allocation pass with the same, unchanged KEQ and a black-box VC
//! generator. Sweeps the corpus: every colorable function's allocation is
//! validated; functions needing spills are reported as unsupported.

use keq_core::KeqOptions;
use keq_isel::{select, validate_regalloc, IselOptions};
use keq_llvm::Layout;
use keq_workload::{generate_corpus, GenConfig};

fn main() {
    let n: usize = std::env::var("KEQ_RA_N").ok().and_then(|v| v.parse().ok()).unwrap_or(25);
    let module = generate_corpus(GenConfig { seed: 11, ..Default::default() }, n);
    let opts = KeqOptions {
        time_limit: Some(std::time::Duration::from_secs(20)),
        ..KeqOptions::default()
    };
    let (mut ok, mut fail, mut spill) = (0, 0, 0);
    for f in &module.functions {
        let layout = Layout::of(&module, f);
        let Ok(out) = select(&module, f, &layout, IselOptions::default()) else { continue };
        match validate_regalloc(&out.func, &layout, opts) {
            Ok((report, _)) if report.verdict.is_validated() => ok += 1,
            Ok((report, _)) => {
                println!("{}: {}", f.name, report.verdict);
                fail += 1;
            }
            Err(_) => spill += 1,
        }
    }
    println!("=== register allocation TV (black-box VC generator) ===");
    println!("{:<30} {:>10}", "Validated", ok);
    println!("{:<30} {:>10}", "Not validated", fail);
    println!("{:<30} {:>10}", "Unsupported (needs spill)", spill);
    assert_eq!(fail, 0, "the honest allocator must always validate");
}
