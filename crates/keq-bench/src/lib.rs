//! # keq-bench — experiment harnesses
//!
//! Bench targets regenerating every table and figure of the paper's
//! evaluation; see EXPERIMENTS.md at the repository root for the index.

pub mod corpus_run;
pub mod normalization_workload;
pub mod session_workload;

pub use corpus_run::{
    build_report, outcome_table, run_corpus, run_corpus_cfg, run_corpus_with, run_module,
    AttemptRecord, CacheSummary, CorpusResult, CorpusRow, CorpusSummary, HarnessOptions,
    ResultKind, RetryPolicy,
};
pub use keq_workload::GenConfig;
/// The shared histogram type (lives in `keq-trace` so the run report's
/// latency distributions and the Fig. 7 plots use the same buckets).
pub use keq_trace::Histogram;
pub use normalization_workload::normalization_workload;
pub use session_workload::{sync_point_workload, SessionWorkload};
