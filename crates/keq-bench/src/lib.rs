//! # keq-bench — experiment harnesses
//!
//! Bench targets regenerating every table and figure of the paper's
//! evaluation; see EXPERIMENTS.md at the repository root for the index.

pub mod corpus_run;
pub mod histogram;
pub mod session_workload;

pub use corpus_run::{
    run_corpus, run_corpus_with, run_module, AttemptRecord, CorpusResult, CorpusRow,
    CorpusSummary, HarnessOptions, ResultKind, RetryPolicy,
};
pub use histogram::Histogram;
pub use session_workload::{sync_point_workload, SessionWorkload};
