//! Corpus-scale validation driver shared by the Fig. 6 and Fig. 7
//! harnesses.

use std::time::{Duration, Instant};

use keq_core::{FailureClass, KeqOptions, Verdict};
use keq_isel::{IselOptions, VcOptions};
use keq_llvm::ast::Module;
use keq_workload::{generate_corpus, GenConfig};

/// Result category of one function (the Fig. 6 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusResult {
    /// Validated (equivalent or refines).
    Succeeded,
    /// Resource exhaustion, solving-time flavor.
    Timeout,
    /// Resource exhaustion, memory flavor.
    OutOfMemory,
    /// Any other failure.
    Other,
}

/// One validated function.
#[derive(Debug, Clone)]
pub struct CorpusRow {
    /// Function name.
    pub name: String,
    /// Instruction count (the Fig. 7 code-size axis).
    pub size: usize,
    /// Validation wall-clock time.
    pub time: Duration,
    /// Category.
    pub result: CorpusResult,
}

/// Aggregated counts.
#[derive(Debug, Clone, Default)]
pub struct CorpusSummary {
    /// Per-function rows.
    pub rows: Vec<CorpusRow>,
}

impl CorpusSummary {
    /// Count of a category.
    pub fn count(&self, r: CorpusResult) -> usize {
        self.rows.iter().filter(|x| x.result == r).count()
    }

    /// Total functions considered.
    pub fn total(&self) -> usize {
        self.rows.len()
    }

    /// Fraction validated.
    pub fn success_rate(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.count(CorpusResult::Succeeded) as f64 / self.total() as f64
    }
}

/// Generates `n` corpus functions and validates each under the given
/// resource limits, mirroring the paper's §5.1 experiment.
pub fn run_corpus(seed: u64, n: usize, keq_opts: KeqOptions) -> (Module, CorpusSummary) {
    let cfg = GenConfig { seed, ..GenConfig::default() };
    let module = generate_corpus(cfg, n);
    let mut summary = CorpusSummary::default();
    for f in &module.functions {
        let size: usize = f.blocks.iter().map(|b| b.instrs.len() + 1).sum();
        let start = Instant::now();
        let outcome = keq_isel::validate_function(
            &module,
            f,
            IselOptions::default(),
            VcOptions::default(),
            keq_opts,
        );
        let time = start.elapsed();
        let result = match outcome {
            Ok(v) => match &v.report.verdict {
                Verdict::Equivalent | Verdict::Refines => CorpusResult::Succeeded,
                Verdict::NotValidated(fail) => match fail.reason.failure_class() {
                    FailureClass::Timeout => CorpusResult::Timeout,
                    FailureClass::OutOfMemory => CorpusResult::OutOfMemory,
                    FailureClass::Other => CorpusResult::Other,
                },
            },
            // Unsupported functions are excluded from the denominator in the
            // paper; the generator only emits supported features, so treat
            // any selection failure as Other.
            Err(_) => CorpusResult::Other,
        };
        summary.rows.push(CorpusRow { name: f.name.clone(), size, time, result });
    }
    (module, summary)
}
