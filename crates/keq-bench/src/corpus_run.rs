//! Corpus-scale validation driver shared by the Fig. 6 and Fig. 7
//! harnesses — a thin wrapper over the fault-isolated [`keq_harness`]
//! supervisor (panic isolation, watchdog deadlines, escalating-budget
//! retry), which also makes this the repo's first *parallel* corpus
//! driver.

use keq_core::KeqOptions;
use keq_llvm::ast::Module;
use keq_workload::{generate_corpus, GenConfig};

pub use keq_harness::{
    build_report, outcome_table, run_module, AttemptRecord, CacheSummary, CorpusResult, CorpusRow,
    CorpusSummary, HarnessOptions, ResultKind, RetryPolicy,
};

/// Generates `n` corpus functions and validates each under the given
/// resource limits, mirroring the paper's §5.1 experiment. Functions are
/// distributed over the harness's worker pool; rows come back ordered by
/// function index, so the output is deterministic in content.
pub fn run_corpus(seed: u64, n: usize, keq_opts: KeqOptions) -> (Module, CorpusSummary) {
    let opts = HarnessOptions { keq: keq_opts, ..HarnessOptions::default() };
    run_corpus_with(seed, n, &opts)
}

/// [`run_corpus`] with full control over the harness (worker count,
/// deadlines, retry policy, fault plan).
pub fn run_corpus_with(seed: u64, n: usize, opts: &HarnessOptions) -> (Module, CorpusSummary) {
    run_corpus_cfg(GenConfig { seed, ..GenConfig::default() }, n, opts)
}

/// [`run_corpus_with`] with full control over the *generator* as well —
/// e.g. the high-register-pressure profile (`cfg.pressure`) that forces
/// the spilling allocator onto its spill path.
pub fn run_corpus_cfg(cfg: GenConfig, n: usize, opts: &HarnessOptions) -> (Module, CorpusSummary) {
    let module = generate_corpus(cfg, n);
    let summary = run_module(&module, opts);
    (module, summary)
}
