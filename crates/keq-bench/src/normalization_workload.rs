//! A redundancy-heavy obligation workload for the rewrite-normalization
//! benches.
//!
//! Each obligation is built around a term that the saturating rewriter
//! ([`keq_smt::rewrite`]) collapses to a much smaller normal form: xor
//! self-cancellation chains, add/sub round trips, multiply-by-power-of-two,
//! adjacent-slice concats, same-condition nested `ite`s, and redundant
//! store chains. Two *variants* produce syntactically different surface
//! terms with identical normal forms — the stand-in for two compiled
//! functions posing the same proof obligation in different spellings:
//!
//! * with normalization **off**, the variants fingerprint apart and the
//!   blaster pays for the full surface term;
//! * with normalization **on**, both variants fingerprint to the same
//!   obligation (cross-function cache collisions on a cold store) and the
//!   blaster sees only the normal form.

use keq_smt::{Sort, TermBank};

use crate::SessionWorkload;

/// Builds `count` obligations over `width`-bit state in the surface syntax
/// of `variant` (0 or 1). Both variants share one prefix (`x = z`,
/// `x <u n`) and normalize to identical obligations.
///
/// Even-numbered obligations are satisfiable feasibility probes; odd ones
/// are unsatisfiable implication-style queries whose contradiction only
/// appears once the redundant term collapses against the prefix.
///
/// # Panics
///
/// Panics when `width` is odd or below 16 (the slice shapes need an even
/// split and room for a shift by two).
pub fn normalization_workload(
    bank: &mut TermBank,
    width: u32,
    count: usize,
    variant: u64,
) -> SessionWorkload {
    assert!(width >= 16 && width.is_multiple_of(2), "width must be even and >= 16");
    let x = bank.mk_var("x", Sort::BitVec(width));
    let y = bank.mk_var("y", Sort::BitVec(width));
    let z = bank.mk_var("z", Sort::BitVec(width));
    let n = bank.mk_var("n", Sort::BitVec(width));
    let p = bank.mk_var("p", Sort::Bool);
    let m = bank.mk_var("m", Sort::Memory);

    let eq_xz = bank.mk_eq(x, z);
    let path = bank.mk_bvult(x, n);
    let prefix = vec![eq_xz, path];

    let mut obligations = Vec::with_capacity(count);
    for k in 0..count {
        let c = bank.mk_bv(width, 1 + k as u128);
        // The redundant core: variant 0 and variant 1 spell the same value
        // differently; both normalize to the `// ->` comment.
        let t = match (k % 5, variant) {
            // -> y
            (0, 0) => {
                let inner = bank.mk_bvxor(x, y);
                bank.mk_bvxor(x, inner)
            }
            (0, _) => {
                let sum = bank.mk_bvadd(x, y);
                bank.mk_bvsub(sum, x)
            }
            // -> x << 2
            (1, 0) => {
                let four = bank.mk_bv(width, 4);
                bank.mk_bvmul(x, four)
            }
            (1, _) => {
                let two = bank.mk_bv(width, 2);
                bank.mk_bvshl(x, two)
            }
            // -> x
            (2, 0) => {
                let hi = bank.mk_extract(x, width - 1, width / 2);
                let lo = bank.mk_extract(x, width / 2 - 1, 0);
                bank.mk_concat(hi, lo)
            }
            (2, _) => x,
            // -> ite(p, x, z)
            (3, 0) => {
                let inner = bank.mk_ite(p, y, z);
                bank.mk_ite(p, x, inner)
            }
            (3, _) => bank.mk_ite(p, x, z),
            // -> zext(select(m, zext(z, 64)), width)
            (4, 0) => {
                let addr = bank.mk_zext(x, 64);
                let held = bank.mk_select(m, addr);
                let rewritten_back = bank.mk_store(m, addr, held);
                let read_addr = bank.mk_zext(z, 64);
                let byte = bank.mk_select(rewritten_back, read_addr);
                bank.mk_zext(byte, width)
            }
            _ => {
                let read_addr = bank.mk_zext(z, 64);
                let byte = bank.mk_select(m, read_addr);
                bank.mk_zext(byte, width)
            }
        };
        if k % 2 == 0 {
            // Feasibility probe: satisfiable for a large enough `n`.
            let probe_base = bank.mk_bvadd(t, c);
            let probe = bank.mk_bvult(probe_base, n);
            obligations.push((vec![probe], true));
        } else {
            // `z ( + t - t ) <u n` follows from the prefix, so its negation
            // is unsatisfiable — but only the collapsed form makes that
            // one propagation step; the surface form buries it under the
            // redundant chain.
            let padded = bank.mk_bvadd(z, t);
            let collapsible = bank.mk_bvsub(padded, t);
            let in_bounds = bank.mk_bvult(collapsible, n);
            let negated = bank.mk_not(in_bounds);
            let distinct = bank.mk_ne(t, c);
            obligations.push((vec![negated, distinct], false));
        }
    }
    SessionWorkload { prefix, obligations }
}
