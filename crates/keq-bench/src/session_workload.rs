//! A multi-obligation synchronization-point workload for the
//! session-reuse benches.
//!
//! Algorithm 1 discharges many solver obligations under one sync point's
//! assumption set: the matching-variable equalities plus the accumulated
//! path condition. This module builds a synthetic but faithfully shaped
//! instance — one shared prefix, many small distinct deltas — so the
//! benches can compare *scratch* mode (each query re-asserts
//! `prefix ++ delta` in a fresh SAT problem) against *session* mode (the
//! prefix is lowered, bit-blasted, and asserted once; each query adds only
//! its delta under an activation literal).
//!
//! Deltas are pairwise distinct on purpose: the solver's whole-query memo
//! cache must not be able to collapse the scratch run, or the comparison
//! would measure the cache instead of prefix reuse.

use keq_smt::{Sort, TermBank, TermId};

/// One prefix plus its batch of obligations.
pub struct SessionWorkload {
    /// The sync point's assumption set, shared by every obligation.
    pub prefix: Vec<TermId>,
    /// `(delta, expect_sat)` pairs: feasibility-style queries expect `Sat`,
    /// implication-style queries (negated goal) expect `Unsat`.
    pub obligations: Vec<(Vec<TermId>, bool)>,
}

/// Builds a sync-point workload of `count` distinct obligations over
/// `width`-bit state.
///
/// The prefix mirrors a KEQ sync point: left/right matching-variable
/// equalities (`iL = iR`, `nL = nR`, `accL = accR`) and a path condition
/// (`iL <u nL`). Obligations alternate between
///
/// * feasibility probes `(accL + c_k) <u nL` — satisfiable, like the
///   checker's sibling-branch pruning queries; and
/// * negated target constraints `¬(iR <u nR) ∧ accR ≠ c_k` — unsatisfiable
///   (the prefix forces `iR <u nR` through the equalities), like the
///   checker's `prove_implies` deltas.
pub fn sync_point_workload(bank: &mut TermBank, width: u32, count: usize) -> SessionWorkload {
    let il = bank.mk_var("iL", Sort::BitVec(width));
    let ir = bank.mk_var("iR", Sort::BitVec(width));
    let nl = bank.mk_var("nL", Sort::BitVec(width));
    let nr = bank.mk_var("nR", Sort::BitVec(width));
    let accl = bank.mk_var("accL", Sort::BitVec(width));
    let accr = bank.mk_var("accR", Sort::BitVec(width));

    let eq_i = bank.mk_eq(il, ir);
    let eq_n = bank.mk_eq(nl, nr);
    let eq_acc = bank.mk_eq(accl, accr);
    let path = bank.mk_bvult(il, nl);
    let prefix = vec![eq_i, eq_n, eq_acc, path];

    let mut obligations = Vec::with_capacity(count);
    for k in 0..count {
        let c = bank.mk_bv(width, 1 + k as u128);
        if k % 2 == 0 {
            let probe_base = bank.mk_bvadd(accl, c);
            let probe = bank.mk_bvult(probe_base, nl);
            obligations.push((vec![probe], true));
        } else {
            let in_bounds = bank.mk_bvult(ir, nr);
            let negated = bank.mk_not(in_bounds);
            let distinct = bank.mk_ne(accr, c);
            obligations.push((vec![negated, distinct], false));
        }
    }
    SessionWorkload { prefix, obligations }
}
