//! Golden-file pin of the Prometheus text exposition: a populated registry
//! plus a hand-built family with adversarial label values renders
//! byte-identically to the checked-in golden file, so accidental format
//! drift (ordering, escaping, number rendering) fails loudly. A minimal
//! line-shape check doubles as the parser a scrape endpoint would apply.
//!
//! Regenerate after an *intentional* format change with
//! `KEQ_BLESS_GOLDEN=1 cargo test -p keq-trace --test prometheus_golden`.

use keq_trace::metrics::{prom_from_registry, render_prometheus, PromKind, PromMetric, PromSample};
use keq_trace::{CounterId, GaugeId, HistId, Registry};

/// A registry with deterministic traffic on every metric kind.
fn populated_registry() -> Registry {
    let r = Registry::new();
    r.counter_add(CounterId::Requests, 7);
    r.counter_add(CounterId::Completed, 6);
    r.counter_add(CounterId::RejectedQueueFull, 1);
    r.counter_add(CounterId::ObligationCacheHits, 40);
    r.counter_add(CounterId::ObligationCacheMisses, 9);
    r.counter_add(CounterId::CdclConflicts, 1234);
    r.gauge_set(GaugeId::QueueDepth, 3);
    r.gauge_set(GaugeId::WorkersBusy, 2);
    r.gauge_set(GaugeId::WorkersIdle, 2);
    r.gauge_set(GaugeId::ObcacheBytes, 4096);
    r.observe_us(HistId::RequestLatencyUs, 90);
    r.observe_us(HistId::RequestLatencyUs, 850);
    r.observe_us(HistId::RequestLatencyUs, 2_000_000);
    r.observe_us(HistId::AttemptWallUs, 500);
    r
}

/// The slow-obligation family with label values chosen to hit every escape
/// rule: backslashes, double quotes, and newlines.
fn adversarial_slow_family() -> PromMetric {
    PromMetric {
        name: "keq_slow_obligation_wall_us".to_string(),
        // HELP escapes backslash and newline (not quotes).
        help: "slow \\ table\nsecond \"line\"".to_string(),
        kind: PromKind::Gauge,
        samples: vec![
            PromSample {
                suffix: "",
                labels: vec![
                    ("fingerprint".to_string(), "00c0ffee00c0ffee".to_string()),
                    ("label".to_string(), "@\"quoted\" \\ path\nnewline".to_string()),
                    ("result".to_string(), "succeeded".to_string()),
                ],
                value: 1_900_000.0,
            },
            PromSample {
                suffix: "",
                labels: vec![
                    ("fingerprint".to_string(), "0000000000000001".to_string()),
                    ("label".to_string(), "f1".to_string()),
                    ("result".to_string(), "timeout".to_string()),
                ],
                value: 0.5,
            },
        ],
    }
}

#[test]
fn prometheus_exposition_matches_golden_file() {
    let mut families = prom_from_registry(&populated_registry());
    families.push(adversarial_slow_family());
    let rendered = render_prometheus(&families);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/PROMETHEUS.golden.txt");

    if std::env::var("KEQ_BLESS_GOLDEN").is_ok() {
        std::fs::write(golden_path, &rendered).expect("bless golden file");
    }
    let golden = std::fs::read_to_string(golden_path).expect(
        "golden file missing — run with KEQ_BLESS_GOLDEN=1 once to create it",
    );
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from the golden file; if the format change \
         is intentional, regenerate with KEQ_BLESS_GOLDEN=1"
    );

    // Line-shape check: what a scrape endpoint's parser enforces. Escaped
    // newlines keep every logical sample on one physical line.
    let mut samples = 0usize;
    for line in rendered.lines() {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        assert!(!line.is_empty(), "no blank lines inside the exposition");
        let (name_part, value_part) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("unsplittable line: {line}"));
        assert!(
            value_part == "+Inf" || value_part.parse::<f64>().is_ok(),
            "unparseable value in: {line}"
        );
        let metric_name = name_part.split('{').next().unwrap();
        assert!(
            metric_name.starts_with("keq_")
                && metric_name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name in: {line}"
        );
        samples += 1;
    }
    assert!(samples > 40, "registry exposition unexpectedly small: {samples} samples");

    // Escaping spot checks, independent of the golden bytes.
    assert!(
        rendered.contains(r#"label="@\"quoted\" \\ path\nnewline""#),
        "label escaping drifted:\n{rendered}"
    );
    assert!(
        rendered.contains("# HELP keq_slow_obligation_wall_us slow \\\\ table\\nsecond \"line\""),
        "HELP escaping drifted:\n{rendered}"
    );

    // Cumulative-bucket invariant on the request-latency histogram.
    let bucket_counts: Vec<f64> = rendered
        .lines()
        .filter(|l| l.starts_with("keq_request_latency_us_bucket"))
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<f64>().unwrap())
        .collect();
    assert!(!bucket_counts.is_empty());
    assert!(
        bucket_counts.windows(2).all(|w| w[0] <= w[1]),
        "histogram buckets must be cumulative: {bucket_counts:?}"
    );
    assert_eq!(*bucket_counts.last().unwrap(), 3.0, "+Inf bucket counts all observations");
}
