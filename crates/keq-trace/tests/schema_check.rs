//! CI schema gate: point `KEQ_RUN_REPORT` at a `RUN_REPORT.json` produced
//! by a real run (e.g. `scripts/report.sh --smoke`) and this test fails the
//! build if the report is missing required keys, its outcome counts don't
//! sum, attempt timestamps are non-monotonic, a span window is inverted, or
//! per-phase span time doesn't account for each function's wall time
//! within tolerance. With the variable unset the test is a no-op so plain
//! `cargo test` stays hermetic.

use keq_trace::{check_phase_coverage, validate, Json};

/// Fraction of a function's wall time its top-level phase spans may
/// under-account for (harness overhead: spawn, channel, warm-start map).
const PHASE_SLACK_FRAC: f64 = 0.10;
/// Absolute per-function slack in µs, so scheduler jitter on very short
/// functions doesn't fail the relative check.
const PHASE_SLACK_US: u64 = 2_000;
/// Functions faster than this are dominated by fixed overhead; skip them.
const MIN_WALL_US: u64 = 5_000;

#[test]
fn run_report_is_schema_valid() {
    let path = match std::env::var("KEQ_RUN_REPORT") {
        Ok(p) => p,
        Err(_) => {
            eprintln!("KEQ_RUN_REPORT not set; skipping schema check");
            return;
        }
    };
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e}"));
    let doc = Json::parse(&raw).unwrap_or_else(|e| panic!("{path}: not valid JSON: {e}"));

    if let Err(violations) = validate(&doc) {
        panic!(
            "{path}: schema violations:\n  {}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n  ")
        );
    }
    if let Err(violations) =
        check_phase_coverage(&doc, PHASE_SLACK_FRAC, PHASE_SLACK_US, MIN_WALL_US)
    {
        panic!(
            "{path}: phase coverage violations:\n  {}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n  ")
        );
    }
    eprintln!("{path}: schema and phase coverage OK");
}
