//! The disabled-path contract: with no recorder installed, probe sites
//! perform **zero heap allocations** and record **zero events** — the cost
//! is one thread-local flag read and a branch, so production runs can keep
//! the instrumentation compiled in.
//!
//! A counting global allocator observes every allocation in the process;
//! the test is the only one in this binary so no concurrent test can
//! perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use keq_trace::{emit, enabled, span, Event, Journal, Phase, TraceSink};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn disabled_probes_allocate_nothing_and_record_nothing() {
    // A journal that must stay empty: it exists, but is never installed.
    let journal = Arc::new(Journal::new(64));
    let sink = TraceSink::from(Arc::clone(&journal));

    // Warm up: touch every thread-local once (first access may lazily
    // initialize) and exercise the enabled path so its allocations are
    // out of the way.
    {
        let _g = keq_trace::install(&sink);
        let _ctx = keq_trace::with_attempt(0, 1);
        emit(Event::Counter { name: "warmup", delta: 1 });
        span(Phase::Check).done();
    }
    let recorded_after_warmup = journal.recorded();
    assert!(!enabled(), "guard dropped, tracing disabled again");

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        emit(Event::Counter { name: "steps", delta: i });
        let s = span(Phase::SyncPoint);
        s.done();
        let _ = keq_trace::current_attempt();
        emit(Event::SolverQuery {
            mode: "session",
            outcome: "unsat",
            cache_hit: false,
            dur_us: i,
            conflicts: 0,
            terms_blasted: 0,
            terms_blast_reused: 0,
            prefix_hits: 0,
            clauses_retained: 0,
            cache_evictions: 0,
        });
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(after - before, 0, "disabled probe sites must not allocate");
    assert_eq!(
        journal.recorded(),
        recorded_after_warmup,
        "disabled probe sites must not record events"
    );
}
