//! The disabled-metrics contract: with no registry installed, the metrics
//! free functions perform **zero heap allocations** and mutate nothing —
//! the cost is one thread-local flag read and a branch, mirroring the
//! trace probes' disabled path (`no_op_fast_path.rs`). This is what lets
//! the scheduler instrument every admission, journal append, and solver
//! probe unconditionally while runs without `--metrics` stay at full
//! speed.
//!
//! A counting global allocator observes every allocation in the process;
//! the test is the only one in this binary so no concurrent test can
//! perturb the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use keq_trace::metrics::{counter_add, observe_us};
use keq_trace::{install_metrics, metrics_enabled, CounterId, HistId, Registry};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn uninstalled_metrics_probes_allocate_nothing_and_count_nothing() {
    // A registry that must stay zero: it exists, but after the warmup its
    // guard is dropped and nothing may reach it.
    let registry = Arc::new(Registry::new());

    // Warm up: exercise the installed path once so thread-local
    // initialization and any lazy setup allocate outside the window.
    {
        let _g = install_metrics(&registry);
        assert!(metrics_enabled());
        counter_add(CounterId::Attempts, 1);
        observe_us(HistId::AttemptWallUs, 250);
    }
    assert!(!metrics_enabled(), "guard dropped, metrics disabled again");
    let attempts_after_warmup = registry.counter(CounterId::Attempts);
    let observations_after_warmup = registry.histogram(HistId::AttemptWallUs).total();

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        counter_add(CounterId::Attempts, 1);
        counter_add(CounterId::JournalAppends, i);
        observe_us(HistId::AttemptWallUs, i);
        let _ = metrics_enabled();
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(after - before, 0, "disabled metrics probes must not allocate");
    assert_eq!(
        registry.counter(CounterId::Attempts),
        attempts_after_warmup,
        "disabled probes must not reach the registry"
    );
    assert_eq!(
        registry.histogram(HistId::AttemptWallUs).total(),
        observations_after_warmup,
        "disabled observations must not reach the histogram"
    );
}
