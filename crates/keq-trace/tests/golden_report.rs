//! Golden-file round-trip of `RUN_REPORT.json`: the serialized form of a
//! fully-populated report is byte-identical to the checked-in golden file
//! (so accidental schema drift fails loudly), parses back into an
//! equivalent document, validates, and preserves panic messages containing
//! quotes, newlines, backslashes, and non-ASCII through the round trip.
//!
//! Regenerate after an *intentional* schema change with
//! `KEQ_BLESS_GOLDEN=1 cargo test -p keq-trace --test golden_report`.

use keq_trace::{
    check_phase_coverage, validate, AttemptReport, CacheCounters, FunctionReport, Histogram, Json,
    OutcomeTable, PassSection, Phase, PhaseSummary, ResumeSection, RunReport, ServerSection,
    SlowObligation, SolverCounters, TelemetrySection,
};

const TRICKY_MESSAGE: &str = "boom \"quoted\"\nsecond line\twith tab \\ backslash and π";

fn golden_report() -> RunReport {
    let mut hist = Histogram::log_us("check span time (µs)");
    hist.add(120.0);
    hist.add(80_000.0);
    RunReport {
        seed: 2021,
        n_functions: 2,
        trace_enabled: true,
        outcome: OutcomeTable {
            succeeded: 1,
            timeout: 0,
            out_of_memory: 0,
            crashed: 1,
            quarantined: 0,
            other: 0,
            total: 2,
            attempts: 3,
        },
        passes: vec![
            PassSection {
                pass: "isel".into(),
                outcome: OutcomeTable {
                    succeeded: 1,
                    timeout: 0,
                    out_of_memory: 0,
                    crashed: 0,
                    quarantined: 0,
                    other: 0,
                    total: 1,
                    attempts: 2,
                },
            },
            PassSection {
                pass: "gvn".into(),
                outcome: OutcomeTable {
                    succeeded: 0,
                    timeout: 0,
                    out_of_memory: 0,
                    crashed: 1,
                    quarantined: 0,
                    other: 0,
                    total: 1,
                    attempts: 1,
                },
            },
        ],
        solver: SolverCounters {
            queries: 40,
            sat: 22,
            unsat: 17,
            budget: 1,
            conflicts: 90,
            restarts: 3,
            cache_hits: 6,
            cache_evictions: 2,
            sessions_opened: 4,
            prefix_hits: 30,
            clauses_retained: 55,
            terms_blasted: 1000,
            terms_blast_reused: 400,
            rewrite_rules_fired: 120,
            rewrite_passes: 48,
            rewrite_nodes_saved: 310,
            lbd_kept: 11,
            time_us: 80_120,
        },
        cache: CacheCounters {
            obligations: 34,
            hits: 9,
            misses: 25,
            stores: 14,
            evictions: 1,
            entries: 13,
            disk_loaded: 5,
            disk_rejected: 1,
            disk_persisted: 14,
            disk_bytes: 370,
            flushes: 2,
            flush_failures: 1,
            degraded: false,
        },
        resume: ResumeSection { enabled: true, skipped: 1, recovered: 1, corrupt: 1 },
        server: ServerSection {
            enabled: true,
            requests: 6,
            completed: 5,
            rejected_queue_full: 1,
            rejected_quota: 1,
            disconnects: 1,
            p50_us: 12_000,
            p90_us: 44_000,
            p99_us: 80_000,
        },
        telemetry: TelemetrySection {
            enabled: true,
            samples: 12,
            slow: vec![SlowObligation {
                fingerprint: "00000000000000000000ffee00c0ffee".into(),
                label: "f0".into(),
                wall_us: 90_000,
                result: "succeeded".into(),
                attempts: 2,
                retries: 1,
                phase_us: vec![
                    (Phase::Check, 83_000),
                    (Phase::Lower, 9_000),
                    (Phase::Blast, 14_000),
                    (Phase::Cdcl, 31_000),
                ],
                solver: SolverCounters {
                    queries: 25,
                    sat: 14,
                    unsat: 10,
                    budget: 1,
                    conflicts: 80,
                    restarts: 3,
                    cache_hits: 2,
                    cache_evictions: 0,
                    sessions_opened: 2,
                    prefix_hits: 18,
                    clauses_retained: 40,
                    terms_blasted: 700,
                    terms_blast_reused: 250,
                    rewrite_rules_fired: 70,
                    rewrite_passes: 25,
                    rewrite_nodes_saved: 180,
                    lbd_kept: 6,
                    time_us: 61_000,
                },
            }],
        },
        phases: vec![PhaseSummary { phase: Phase::Check, count: 2, total_us: 80_120, histogram: hist }],
        functions: vec![
            FunctionReport {
                name: "f0".into(),
                index: 0,
                pass: "isel".into(),
                size: 12,
                wall_us: 90_000,
                result: "succeeded".into(),
                recovered: false,
                attempts: vec![
                    AttemptReport {
                        attempt: 1,
                        budget_scale: 1,
                        wall_us: 30_000,
                        start_us: 100,
                        end_us: 30_100,
                        result: "timeout".into(),
                        abandoned: false,
                        panic_message: None,
                        panic_location: None,
                        faults: vec!["force_budget_conflicts".into()],
                        phase_us: vec![(Phase::Isel, 2_000), (Phase::Check, 27_000)],
                    },
                    AttemptReport {
                        attempt: 2,
                        budget_scale: 4,
                        wall_us: 60_000,
                        start_us: 30_200,
                        end_us: 90_200,
                        result: "succeeded".into(),
                        abandoned: false,
                        panic_message: None,
                        panic_location: None,
                        faults: vec![],
                        phase_us: vec![(Phase::Isel, 2_000), (Phase::Check, 56_000)],
                    },
                ],
            },
            FunctionReport {
                name: "f1".into(),
                index: 1,
                pass: "gvn".into(),
                size: 7,
                wall_us: 1_500,
                result: "crashed".into(),
                recovered: false,
                attempts: vec![AttemptReport {
                    attempt: 1,
                    budget_scale: 1,
                    wall_us: 1_500,
                    start_us: 95_000,
                    end_us: 96_500,
                    result: "crashed".into(),
                    abandoned: false,
                    panic_message: Some(TRICKY_MESSAGE.into()),
                    panic_location: Some("crates/keq-smt/src/fault.rs:246:17".into()),
                    faults: vec!["panic".into()],
                    phase_us: vec![(Phase::Isel, 300), (Phase::Check, 1_100)],
                }],
            },
        ],
        events_recorded: 123,
        events_dropped: 0,
    }
}

#[test]
fn report_matches_golden_file_and_round_trips() {
    let rendered = golden_report().to_json();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/RUN_REPORT.golden.json");

    if std::env::var("KEQ_BLESS_GOLDEN").is_ok() {
        std::fs::write(golden_path, &rendered).expect("bless golden file");
    }
    let golden = std::fs::read_to_string(golden_path).expect(
        "golden file missing — run with KEQ_BLESS_GOLDEN=1 once to create it",
    );
    assert_eq!(
        rendered, golden,
        "RUN_REPORT.json drifted from the golden file; if the schema change is \
         intentional, regenerate with KEQ_BLESS_GOLDEN=1"
    );

    // Round trip: parse, validate, and recover the tricky panic message.
    let doc = Json::parse(&rendered).expect("golden report parses");
    validate(&doc).expect("golden report validates");
    check_phase_coverage(&doc, 0.10, 2_000, 5_000).expect("golden report covers its phases");

    let functions = doc.get("functions").and_then(Json::as_arr).expect("functions");
    let crashed = functions[1].get("attempts").and_then(Json::as_arr).expect("attempts");
    assert_eq!(
        crashed[0].get("panic_message").and_then(Json::as_str),
        Some(TRICKY_MESSAGE),
        "quotes, newlines, tabs, backslashes, and non-ASCII must survive the round trip"
    );
    assert_eq!(
        crashed[0].get("panic_location").and_then(Json::as_str),
        Some("crates/keq-smt/src/fault.rs:246:17")
    );

    // v7: the per-pass sections partition the merged outcome table, and
    // every function row names its validated pass.
    let passes = doc.get("passes").and_then(Json::as_arr).expect("passes");
    assert_eq!(passes.len(), 2);
    assert_eq!(passes[0].get("pass").and_then(Json::as_str), Some("isel"));
    assert_eq!(passes[1].get("pass").and_then(Json::as_str), Some("gvn"));
    let total_of = |p: &Json| {
        p.get("outcome").and_then(|o| o.get("total")).and_then(Json::as_u64).expect("total")
    };
    assert_eq!(
        total_of(&passes[0]) + total_of(&passes[1]),
        doc.get("outcome").and_then(|o| o.get("total")).and_then(Json::as_u64).expect("total"),
        "per-pass totals must partition the merged table"
    );
    assert_eq!(functions[0].get("pass").and_then(Json::as_str), Some("isel"));
    assert_eq!(functions[1].get("pass").and_then(Json::as_str), Some("gvn"));
}
