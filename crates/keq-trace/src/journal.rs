//! Event sinks: the in-memory ring journal and the JSONL stream.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

use crate::event::TraceEvent;
use crate::recorder::Recorder;

/// Default journal capacity (events). Generous for corpus runs at smoke
/// and bench scale; older events are dropped (and counted) beyond it.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 20;

struct JournalInner {
    events: VecDeque<TraceEvent>,
    recorded: u64,
    dropped: u64,
}

/// A bounded in-memory ring of trace events, shared by every thread of a
/// run. Oldest events are dropped once the capacity is exceeded; the drop
/// count is reported so consumers (e.g. the report coverage check) can
/// tell a complete journal from a truncated one.
pub struct Journal {
    epoch: Instant,
    cap: usize,
    inner: Mutex<JournalInner>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("cap", &self.cap).finish_non_exhaustive()
    }
}

impl Journal {
    /// Creates a journal holding at most `capacity` events. The journal's
    /// epoch is the creation instant; all event timestamps are offsets
    /// from it.
    pub fn new(capacity: usize) -> Self {
        Journal {
            epoch: Instant::now(),
            cap: capacity.max(1),
            inner: Mutex::new(JournalInner {
                events: VecDeque::new(),
                recorded: 0,
                dropped: 0,
            }),
        }
    }

    /// A journal with [`DEFAULT_JOURNAL_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        Journal::new(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Copies out the retained events, in record order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("journal poisoned");
        inner.events.iter().cloned().collect()
    }

    /// Total events ever recorded (including later-dropped ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("journal poisoned").recorded
    }

    /// Events dropped to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("journal poisoned").dropped
    }

    /// Renders the retained events as JSONL, one event per line.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("journal poisoned");
        let mut out = String::new();
        for ev in &inner.events {
            ev.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }
}

impl Recorder for Journal {
    fn record(&self, ev: TraceEvent) {
        let mut inner = self.inner.lock().expect("journal poisoned");
        inner.recorded += 1;
        if inner.events.len() == self.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(ev);
    }

    fn epoch(&self) -> Instant {
        self.epoch
    }
}

/// A streaming sink serializing every event as one JSONL line into a
/// writer (a file, a pipe, a `Vec<u8>` in tests). Lines are written under
/// an internal lock, so concurrent workers never interleave mid-line.
pub struct JsonlSink<W: Write + Send> {
    epoch: Instant,
    out: Mutex<W>,
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer. The sink's epoch is its creation instant.
    pub fn new(out: W) -> Self {
        JsonlSink { epoch: Instant::now(), out: Mutex::new(out) }
    }

    /// Flushes and returns the writer.
    pub fn into_inner(self) -> W {
        let mut w = self.out.into_inner().expect("jsonl sink poisoned");
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> Recorder for JsonlSink<W> {
    fn record(&self, ev: TraceEvent) {
        let mut line = String::new();
        ev.write_jsonl(&mut line);
        line.push('\n');
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        // One write per complete line (never split across calls), so a
        // kill between records can lose whole lines but not tear one. A
        // full disk mid-trace must not take the validation run down.
        let _ = out.write_all(line.as_bytes());
    }

    fn epoch(&self) -> Instant {
        self.epoch
    }

    fn flush(&self) {
        // Same fail-soft rule as `record`: flush failure must not take
        // the run down. Guard drops, store degradation, and drains all
        // route here so buffered writers leave no torn tail behind.
        let _ = self.out.lock().expect("jsonl sink poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Phase};
    use crate::json::Json;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent {
            t_us: n,
            func: None,
            attempt: None,
            event: Event::Counter { name: "n", delta: n },
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let j = Journal::new(3);
        for i in 0..5 {
            j.record(ev(i));
        }
        assert_eq!(j.recorded(), 5);
        assert_eq!(j.dropped(), 2);
        let kept: Vec<u64> = j.snapshot().iter().map(|e| e.t_us).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(TraceEvent {
            t_us: 9,
            func: Some(0),
            attempt: Some(1),
            event: Event::Span { phase: Phase::Check, start_us: 1, dur_us: 8 },
        });
        sink.record(ev(10));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Json::parse(line).expect("each line is a JSON document");
        }
    }

    #[test]
    fn journal_jsonl_matches_event_count() {
        let j = Journal::new(16);
        for i in 0..4 {
            j.record(ev(i));
        }
        assert_eq!(j.to_jsonl().lines().count(), 4);
    }

    /// A writer whose visible contents only advance on `flush`, modelling
    /// a buffered stream whose tail a kill would lose.
    #[derive(Clone, Default)]
    struct SharedBuf {
        pending: Vec<u8>,
        flushed: std::sync::Arc<Mutex<Vec<u8>>>,
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.pending.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            self.flushed.lock().unwrap().extend_from_slice(&self.pending);
            self.pending.clear();
            Ok(())
        }
    }

    #[test]
    fn guard_drop_flushes_buffered_trace_output() {
        let buf = SharedBuf::default();
        let flushed = std::sync::Arc::clone(&buf.flushed);
        let sink = crate::TraceSink::from(std::sync::Arc::new(JsonlSink::new(buf)));
        {
            let _g = crate::install(&sink);
            crate::emit(Event::Counter { name: "n", delta: 1 });
            assert!(
                flushed.lock().unwrap().is_empty(),
                "the buffered line must still be pending before the guard drops"
            );
        }
        let text = String::from_utf8(flushed.lock().unwrap().clone()).expect("utf8");
        assert_eq!(text.lines().count(), 1);
        Json::parse(text.lines().next().unwrap()).expect("flushed line is complete JSON");
    }

    #[test]
    fn explicit_sink_flush_pushes_the_tail() {
        let buf = SharedBuf::default();
        let flushed = std::sync::Arc::clone(&buf.flushed);
        let sink = JsonlSink::new(buf);
        sink.record(ev(1));
        Recorder::flush(&sink);
        assert_eq!(
            String::from_utf8(flushed.lock().unwrap().clone()).unwrap().lines().count(),
            1
        );
    }
}
