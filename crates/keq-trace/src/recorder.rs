//! Probe points and per-thread recorder installation.
//!
//! Mirrors the fault-injection design in `keq-smt::fault`: a sink is
//! *installed per thread* via [`install`] (returning a guard that restores
//! the previous sink on drop, including across panics), and every probe
//! site funnels through [`emit`]/[`span`]. When nothing is installed the
//! probes cost one thread-local flag read and a branch — no allocation, no
//! lock, no clock read — so instrumented hot paths are essentially free in
//! production runs.
//!
//! The harness installs the *same* shared sink on the supervisor thread
//! and on every worker, so one [`Journal`](crate::Journal) collects a
//! coherent, epoch-aligned event stream for the whole corpus run.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{Event, Phase, TraceEvent};

/// A sink for stamped trace events. Implementations must be cheap to call
/// from many threads (the built-in sinks take a short internal lock).
pub trait Recorder: Send + Sync {
    /// Receives one stamped event.
    fn record(&self, ev: TraceEvent);
    /// The instant timestamps are measured from. All sinks installed
    /// during one run must share an epoch for their timestamps to align.
    fn epoch(&self) -> Instant;
    /// Pushes buffered output to its destination. A no-op for in-memory
    /// sinks; streaming sinks (the JSONL file stream) override it so a
    /// guard drop, a store degradation, or a drain leaves no buffered
    /// tail behind.
    fn flush(&self) {}
}

/// A cloneable handle to a shared [`Recorder`], carried in options structs
/// (e.g. the harness's) and installed per thread.
#[derive(Clone)]
pub struct TraceSink {
    rec: Arc<dyn Recorder>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceSink")
    }
}

impl TraceSink {
    /// Wraps a recorder.
    pub fn new(rec: Arc<dyn Recorder>) -> Self {
        TraceSink { rec }
    }

    /// The underlying recorder.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.rec
    }

    /// Flushes the underlying recorder's buffered output.
    pub fn flush(&self) {
        self.rec.flush();
    }
}

impl<R: Recorder + 'static> From<Arc<R>> for TraceSink {
    fn from(rec: Arc<R>) -> Self {
        TraceSink { rec }
    }
}

/// Duplicates every event to each inner sink (e.g. a ring journal plus a
/// JSONL stream). Epochs are taken from the first sink.
pub struct Fanout {
    sinks: Vec<TraceSink>,
    epoch: Instant,
}

impl Fanout {
    /// Builds a fanout over `sinks` (panics when empty).
    pub fn new(sinks: Vec<TraceSink>) -> Self {
        assert!(!sinks.is_empty(), "Fanout needs at least one sink");
        let epoch = sinks[0].recorder().epoch();
        Fanout { sinks, epoch }
    }
}

impl Recorder for Fanout {
    fn record(&self, ev: TraceEvent) {
        for s in &self.sinks {
            s.recorder().record(ev.clone());
        }
    }

    fn epoch(&self) -> Instant {
        self.epoch
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.recorder().flush();
        }
    }
}

struct Active {
    rec: Arc<dyn Recorder>,
    epoch: Instant,
}

thread_local! {
    /// Fast-path flag mirroring `ACTIVE.is_some()`; the only thing probe
    /// sites touch when tracing is disabled.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
    /// `(func, attempt)` of the validation attempt running on this thread;
    /// `u32::MAX` encodes "none" so the hot path stays a plain Cell.
    static CTX: Cell<(u32, u32)> = const { Cell::new((u32::MAX, u32::MAX)) };
}

/// Installs `sink` as this thread's recorder, returning a guard that
/// restores the previous state (usually "nothing") on drop — including
/// during a panic unwind, so a crashed worker attempt cannot leak its sink
/// into the next job on the same thread.
#[must_use]
pub fn install(sink: &TraceSink) -> TraceGuard {
    let epoch = sink.recorder().epoch();
    let prev = ACTIVE.with(|a| {
        a.borrow_mut().replace(Active { rec: Arc::clone(sink.recorder()), epoch })
    });
    let prev_enabled = ENABLED.with(|e| e.replace(true));
    TraceGuard { prev, prev_enabled }
}

/// Restores the previous recorder on drop.
pub struct TraceGuard {
    prev: Option<Active>,
    prev_enabled: bool,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE.with(|a| {
            let mut active = a.borrow_mut();
            // Flush the sink being uninstalled so a thread that stops
            // tracing leaves no buffered tail (the crash-safety torn-line
            // test pins this).
            if let Some(cur) = active.as_ref() {
                cur.rec.flush();
            }
            *active = prev;
        });
        ENABLED.with(|e| e.set(self.prev_enabled));
    }
}

/// Whether a recorder is installed on this thread. This is the ~1-branch
/// disabled-path check every probe site performs first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Flushes this thread's installed recorder (a no-op when none is). Called
/// at durability edges — store degradation, journal degradation — so a
/// buffered JSONL stream leaves no torn tail behind the moment the run
/// starts losing its storage.
pub fn flush_sink() {
    if !enabled() {
        return;
    }
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow().as_ref() {
            active.rec.flush();
        }
    });
}

/// Sets this thread's attempt context; every event emitted while the guard
/// lives is stamped with `(func, attempt)`. Restores the previous context
/// on drop.
#[must_use]
pub fn with_attempt(func: u32, attempt: u32) -> CtxGuard {
    let prev = CTX.with(|c| c.replace((func, attempt)));
    CtxGuard { prev }
}

/// Restores the previous attempt context on drop.
pub struct CtxGuard {
    prev: (u32, u32),
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// The current attempt context, if any.
pub fn current_attempt() -> Option<(u32, u32)> {
    let (f, a) = CTX.with(Cell::get);
    if f == u32::MAX {
        None
    } else {
        Some((f, a))
    }
}

/// Emits one event through this thread's recorder; a no-op (one flag read)
/// when tracing is disabled.
///
/// Variants with heap payloads (e.g. [`Event::PanicCaptured`]) should be
/// constructed behind an [`enabled`] check at the call site so the
/// disabled path allocates nothing.
#[inline]
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    emit_slow(event);
}

#[cold]
fn emit_slow(event: Event) {
    ACTIVE.with(|a| {
        let borrow = a.borrow();
        let Some(active) = borrow.as_ref() else { return };
        let t_us = duration_us(active.epoch.elapsed());
        let (func, attempt) = match CTX.with(Cell::get) {
            (u32::MAX, _) => (None, None),
            (f, at) => (Some(f), Some(at)),
        };
        active.rec.record(TraceEvent { t_us, func, attempt, event });
    });
}

/// Starts a span for `phase`. When both tracing and metrics are disabled
/// this reads two flags and touches no clock; when enabled, dropping the
/// returned guard emits an [`Event::Span`] (tracing) and/or adds the
/// duration to the per-thread phase accumulator (metrics — see
/// [`crate::metrics::take_phase_totals`]).
#[inline]
#[must_use]
pub fn span(phase: Phase) -> Span {
    if !enabled() && !crate::metrics::phase_timing_enabled() {
        return Span { live: None };
    }
    Span { live: Some((phase, Instant::now())) }
}

/// An in-flight span; emits its [`Event::Span`] on drop (also during
/// panic unwinds, so a crashed attempt still reports where it was).
pub struct Span {
    live: Option<(Phase, Instant)>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn done(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((phase, start)) = self.live.take() else { return };
        let dur_us = duration_us(start.elapsed());
        if crate::metrics::phase_timing_enabled() {
            crate::metrics::record_phase(phase, dur_us);
        }
        if !enabled() {
            return;
        }
        ACTIVE.with(|a| {
            let borrow = a.borrow();
            let Some(active) = borrow.as_ref() else { return };
            let start_us = duration_us(start.duration_since(active.epoch));
            let t_us = duration_us(active.epoch.elapsed());
            let (func, attempt) = match CTX.with(Cell::get) {
                (u32::MAX, _) => (None, None),
                (f, at) => (Some(f), Some(at)),
            };
            active.rec.record(TraceEvent {
                t_us,
                func,
                attempt,
                event: Event::Span { phase, start_us, dur_us },
            });
        });
    }
}

fn duration_us(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    #[test]
    fn disabled_probes_do_nothing() {
        assert!(!enabled());
        emit(Event::Counter { name: "x", delta: 1 });
        let s = span(Phase::Check);
        drop(s);
        assert!(current_attempt().is_none());
    }

    #[test]
    fn install_records_and_guard_restores() {
        let journal = Arc::new(Journal::new(128));
        {
            let sink = TraceSink::from(Arc::clone(&journal));
            let _g = install(&sink);
            assert!(enabled());
            let _ctx = with_attempt(3, 2);
            emit(Event::Counter { name: "steps", delta: 7 });
            let s = span(Phase::Isel);
            s.done();
        }
        assert!(!enabled(), "guard must disable tracing again");
        let events = journal.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].func, Some(3));
        assert_eq!(events[0].attempt, Some(2));
        assert!(matches!(events[1].event, Event::Span { phase: Phase::Isel, .. }));
        // Journal stamps are monotone in append order.
        assert!(events[0].t_us <= events[1].t_us);
    }

    #[test]
    fn nested_install_restores_outer_sink() {
        let outer = Arc::new(Journal::new(16));
        let inner = Arc::new(Journal::new(16));
        let _go = install(&TraceSink::from(Arc::clone(&outer)));
        {
            let _gi = install(&TraceSink::from(Arc::clone(&inner)));
            emit(Event::Counter { name: "inner", delta: 1 });
        }
        emit(Event::Counter { name: "outer", delta: 1 });
        assert_eq!(inner.snapshot().len(), 1);
        assert_eq!(outer.snapshot().len(), 1);
    }

    #[test]
    fn ctx_guard_restores_previous_context() {
        let journal = Arc::new(Journal::new(16));
        let _g = install(&TraceSink::from(Arc::clone(&journal)));
        let _outer = with_attempt(1, 1);
        {
            let _inner = with_attempt(2, 3);
            assert_eq!(current_attempt(), Some((2, 3)));
        }
        assert_eq!(current_attempt(), Some((1, 1)));
    }

    #[test]
    fn fanout_duplicates_events() {
        let a = Arc::new(Journal::new(16));
        let b = Arc::new(Journal::new(16));
        let fan = Arc::new(Fanout::new(vec![
            TraceSink::from(Arc::clone(&a)),
            TraceSink::from(Arc::clone(&b)),
        ]));
        let _g = install(&TraceSink::from(fan));
        emit(Event::SessionOpened { prefix_len: 2 });
        assert_eq!(a.snapshot().len(), 1);
        assert_eq!(b.snapshot().len(), 1);
    }
}
