//! `keq-trace`: zero-dependency structured observability for the KEQ
//! validation pipeline.
//!
//! Every layer of the pipeline — LLVM parsing, instruction selection,
//! register allocation, VC generation, the cut-bisimulation checker, the
//! solver, and the corpus harness — reports through one typed event
//! vocabulary ([`Event`]) into a per-thread [`Recorder`]. The design
//! follows three rules:
//!
//! 1. **Zero dependencies.** The workspace is hermetic (DESIGN.md §5);
//!    JSON emission and parsing are hand-rolled in [`json`].
//! 2. **Free when off.** Probe sites ([`emit`], [`span`]) cost one
//!    thread-local flag read and a branch when no recorder is installed:
//!    no allocation, no lock, no clock read. Heap-carrying events are
//!    constructed behind [`enabled`] checks at the call sites.
//! 3. **One schema end to end.** The in-memory ring [`Journal`], the
//!    streaming [`JsonlSink`], and the aggregated [`RunReport`]
//!    (`RUN_REPORT.json`, schema [`REPORT_SCHEMA`]) all serialize the same
//!    events, and [`report::validate`] checks emitted reports against the
//!    same definitions — whatever one side writes, the other parses.
//!
//! Installation is per-thread and guard-scoped (mirroring the fault
//! injector in `keq-smt`): the harness supervisor installs a shared sink
//! for its own watchdog events and each worker installs the same sink plus
//! a [`with_attempt`] context, so every event lands stamped with the
//! `(function, attempt)` it belongs to.

pub mod event;
pub mod histogram;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;

pub use event::{Event, Phase, TraceEvent};
pub use histogram::Histogram;
pub use journal::{Journal, JsonlSink, DEFAULT_JOURNAL_CAPACITY};
pub use json::{Json, JsonError};
pub use metrics::{
    install_metrics, metrics_enabled, take_phase_totals, Collector, CounterId, GaugeId, HistId,
    MetricsGuard, Registry, Series,
};
pub use recorder::{
    current_attempt, emit, enabled, flush_sink, install, span, with_attempt, CtxGuard, Fanout,
    Recorder, Span, TraceGuard, TraceSink,
};
pub use report::{
    check_phase_coverage, phase_summaries, validate, AttemptReport, CacheCounters, FunctionReport,
    OutcomeTable, PassSection, PhaseSummary, ResumeSection, RunReport, ServerSection,
    SlowObligation, SolverCounters, TelemetrySection, Violation, REPORT_SCHEMA,
};
