//! The typed event vocabulary of the validation pipeline.
//!
//! Every pipeline layer reports through this one enum, so the journal, the
//! JSONL stream, and the aggregated run report all share a single schema.
//! Hot-path variants are `Copy`-cheap (no heap payloads); only events that
//! fire at most once per attempt (panic capture) carry strings.

use std::fmt::Write as _;

use crate::json;

/// A pipeline phase a span can cover.
///
/// *Top-level* phases partition an attempt's wall clock (no two top-level
/// spans overlap on one thread); the rest nest inside [`Phase::Check`] and
/// attribute where the checker spends its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// LLVM IR parsing (`keq_llvm::parse_module`).
    Parse,
    /// Instruction selection.
    Isel,
    /// Register allocation.
    Regalloc,
    /// The GVN mid-end pass.
    Gvn,
    /// Synchronization-point generation.
    Vcgen,
    /// The whole KEQ check of one translation.
    Check,
    /// One startable synchronization point (nested in `Check`).
    SyncPoint,
    /// A feasibility-pruning query (nested in `SyncPoint`).
    Feasibility,
    /// An error-rule discharge of a successor pair (nested in `SyncPoint`).
    ErrorRule,
    /// A target-constraint proof batch (nested in `SyncPoint`).
    TargetConstraint,
    /// Term lowering inside one solver query (nested in the solver).
    Lower,
    /// Bit-blasting lowered terms to CNF (nested in the solver).
    Blast,
    /// The CDCL search itself (nested in the solver).
    Cdcl,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 13] = [
        Phase::Parse,
        Phase::Isel,
        Phase::Regalloc,
        Phase::Gvn,
        Phase::Vcgen,
        Phase::Check,
        Phase::SyncPoint,
        Phase::Feasibility,
        Phase::ErrorRule,
        Phase::TargetConstraint,
        Phase::Lower,
        Phase::Blast,
        Phase::Cdcl,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Isel => "isel",
            Phase::Regalloc => "regalloc",
            Phase::Gvn => "gvn",
            Phase::Vcgen => "vcgen",
            Phase::Check => "check",
            Phase::SyncPoint => "sync_point",
            Phase::Feasibility => "feasibility",
            Phase::ErrorRule => "error_rule",
            Phase::TargetConstraint => "target_constraint",
            Phase::Lower => "lower",
            Phase::Blast => "blast",
            Phase::Cdcl => "cdcl",
        }
    }

    /// Whether spans of this phase partition an attempt's wall clock
    /// (used by the report coverage check: top-level spans of one attempt
    /// must sum to its wall time).
    pub fn is_top_level(self) -> bool {
        matches!(
            self,
            Phase::Parse
                | Phase::Isel
                | Phase::Regalloc
                | Phase::Gvn
                | Phase::Vcgen
                | Phase::Check
        )
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A completed span: `phase` ran from `start_us` for `dur_us`
    /// (microseconds since the recorder epoch).
    Span {
        /// Which phase.
        phase: Phase,
        /// Start offset from the recorder epoch, µs.
        start_us: u64,
        /// Duration, µs.
        dur_us: u64,
    },
    /// A named monotonic counter increment.
    Counter {
        /// Stable counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
    },
    /// A worker began one validation attempt.
    AttemptStart {
        /// Function index in the module.
        func: u32,
        /// 1-based attempt number.
        attempt: u32,
        /// The escalating-retry budget multiplier of this attempt.
        budget_scale: u64,
    },
    /// A worker finished one validation attempt.
    AttemptEnd {
        /// Function index in the module.
        func: u32,
        /// 1-based attempt number.
        attempt: u32,
        /// Result category (stable wire name, e.g. `"succeeded"`).
        result: &'static str,
        /// Attempt wall-clock duration, µs.
        dur_us: u64,
    },
    /// The supervisor isolated a panic from this attempt.
    PanicCaptured {
        /// Function index.
        func: u32,
        /// 1-based attempt number.
        attempt: u32,
        /// The panic message (without the location).
        message: String,
        /// Source location `file:line:col`, when the hook saw it.
        location: Option<String>,
    },
    /// The supervisor raised the attempt's cancellation token at its hard
    /// deadline.
    DeadlineCancelled {
        /// Function index.
        func: u32,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The watchdog abandoned a worker that ignored cancellation past the
    /// grace period.
    WatchdogAbandoned {
        /// Function index.
        func: u32,
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The solver opened an incremental session.
    SessionOpened {
        /// Number of prefix assertions.
        prefix_len: u64,
    },
    /// One solver query completed; counter fields are the
    /// `SolverStats::since` delta attributable to this query alone.
    SolverQuery {
        /// `"scratch"` or `"session"`.
        mode: &'static str,
        /// `"sat"`, `"unsat"`, or `"budget"`.
        outcome: &'static str,
        /// Whether the memo cache answered it.
        cache_hit: bool,
        /// Wall-clock duration, µs.
        dur_us: u64,
        /// CDCL conflicts spent.
        conflicts: u64,
        /// Term nodes bit-blasted.
        terms_blasted: u64,
        /// Term nodes served from the blast memo.
        terms_blast_reused: u64,
        /// Session queries that reused an asserted prefix (0 or 1 here).
        prefix_hits: u64,
        /// Learnt clauses already present when the query started.
        clauses_retained: u64,
        /// Query-cache entries evicted while caching this outcome.
        cache_evictions: u64,
    },
    /// A seeded fault-injection site fired.
    FaultInjected {
        /// Poll site (stable wire name, e.g. `"solver_query"`).
        site: &'static str,
        /// Fault kind (stable wire name, e.g. `"force_budget_conflicts"`).
        fault: &'static str,
    },
    /// The shared obligation cache answered a query (low 64 fingerprint
    /// bits identify the obligation across workers and runs).
    CacheHit {
        /// Low 64 bits of the canonical obligation fingerprint.
        fp: u64,
    },
    /// A query consulted the shared obligation cache and missed.
    CacheMiss {
        /// Low 64 bits of the canonical obligation fingerprint.
        fp: u64,
    },
    /// A proven verdict was recorded into the shared obligation cache.
    CacheStore {
        /// Low 64 bits of the canonical obligation fingerprint.
        fp: u64,
    },
    /// A persistent-storage operation (obligation store flush, journal
    /// append) failed; the run continues.
    StoreError {
        /// Which artifact (`"store"` or `"journal"`).
        target: &'static str,
        /// Operation (`"flush"`, `"append"`, `"open"`, …).
        op: &'static str,
        /// The I/O error, rendered.
        detail: String,
    },
    /// K consecutive storage failures tripped the circuit breaker: the
    /// artifact degrades to memory-only for the rest of the run.
    StoreDegraded {
        /// Which artifact (`"store"` or `"journal"`).
        target: &'static str,
        /// Consecutive failures that tripped the breaker.
        failures: u32,
    },
    /// Resume skipped a function whose verdict was recovered from the
    /// write-ahead journal.
    ResumeSkipped {
        /// Function index in the module.
        func: u32,
    },
    /// The server front end accepted one request frame from a client
    /// (request-level events are server-mode only: batch runs never emit
    /// them, so their event stream is unchanged).
    RequestReceived {
        /// Server-assigned client connection id.
        client: u64,
        /// Client-chosen request tag, echoed back in the response.
        tag: u64,
    },
    /// The scheduler refused a submission at the admission gate
    /// (backpressure or quota) — the request never entered the queue.
    RequestRejected {
        /// Client connection id.
        client: u64,
        /// Client request tag.
        tag: u64,
        /// Stable reason name: `"queue_full"`, `"quota"`, or `"draining"`.
        reason: &'static str,
    },
    /// One scheduled request finalized and its completion was delivered
    /// (or dropped, if the client had disconnected).
    RequestCompleted {
        /// Client connection id.
        client: u64,
        /// Client request tag.
        tag: u64,
        /// Result category (stable wire name, e.g. `"succeeded"`).
        result: &'static str,
        /// Time spent queued before the first attempt started, µs.
        queue_us: u64,
        /// Submission-to-finalize wall clock, µs.
        wall_us: u64,
    },
}

impl Event {
    /// Stable wire name of the variant (the JSONL `"ev"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Span { .. } => "span",
            Event::Counter { .. } => "counter",
            Event::AttemptStart { .. } => "attempt_start",
            Event::AttemptEnd { .. } => "attempt_end",
            Event::PanicCaptured { .. } => "panic",
            Event::DeadlineCancelled { .. } => "deadline_cancelled",
            Event::WatchdogAbandoned { .. } => "watchdog_abandoned",
            Event::SessionOpened { .. } => "session_opened",
            Event::SolverQuery { .. } => "solver_query",
            Event::FaultInjected { .. } => "fault",
            Event::CacheHit { .. } => "cache_hit",
            Event::CacheMiss { .. } => "cache_miss",
            Event::CacheStore { .. } => "cache_store",
            Event::StoreError { .. } => "store_error",
            Event::StoreDegraded { .. } => "store_degraded",
            Event::ResumeSkipped { .. } => "resume_skipped",
            Event::RequestReceived { .. } => "request_received",
            Event::RequestRejected { .. } => "request_rejected",
            Event::RequestCompleted { .. } => "request_completed",
        }
    }
}

/// An [`Event`] stamped with its emit time and the attempt context of the
/// emitting thread — what a [`Recorder`](crate::Recorder) receives.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the recorder epoch, stamped at emit time on a
    /// monotonic clock.
    pub t_us: u64,
    /// Function index of the attempt context, if one was installed.
    pub func: Option<u32>,
    /// 1-based attempt number of the attempt context.
    pub attempt: Option<u32>,
    /// The event payload.
    pub event: Event,
}

impl TraceEvent {
    /// Serializes the event as one JSONL line (no trailing newline).
    ///
    /// Events whose payload names an attempt (`AttemptStart`, panic
    /// capture, …) win over the thread's attempt-context stamp, so each
    /// line carries `func`/`attempt` exactly once.
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = write!(out, "{{\"t_us\":{}", self.t_us);
        let (func, attempt) = match self.event {
            Event::AttemptStart { func, attempt, .. }
            | Event::AttemptEnd { func, attempt, .. }
            | Event::PanicCaptured { func, attempt, .. }
            | Event::DeadlineCancelled { func, attempt }
            | Event::WatchdogAbandoned { func, attempt } => (Some(func), Some(attempt)),
            Event::ResumeSkipped { func } => (Some(func), None),
            _ => (self.func, self.attempt),
        };
        if let Some(f) = func {
            let _ = write!(out, ",\"func\":{f}");
        }
        if let Some(a) = attempt {
            let _ = write!(out, ",\"attempt\":{a}");
        }
        let _ = write!(out, ",\"ev\":\"{}\"", self.event.kind());
        match &self.event {
            Event::Span { phase, start_us, dur_us } => {
                let _ = write!(
                    out,
                    ",\"phase\":\"{}\",\"start_us\":{start_us},\"dur_us\":{dur_us}",
                    phase.name()
                );
            }
            Event::Counter { name, delta } => {
                let _ = write!(out, ",\"name\":\"{name}\",\"delta\":{delta}");
            }
            Event::AttemptStart { budget_scale, .. } => {
                let _ = write!(out, ",\"budget_scale\":{budget_scale}");
            }
            Event::AttemptEnd { result, dur_us, .. } => {
                let _ = write!(out, ",\"result\":\"{result}\",\"dur_us\":{dur_us}");
            }
            Event::PanicCaptured { message, location, .. } => {
                out.push_str(",\"message\":");
                json::write_str(message, out);
                out.push_str(",\"location\":");
                match location {
                    Some(loc) => json::write_str(loc, out),
                    None => out.push_str("null"),
                }
            }
            Event::DeadlineCancelled { .. } | Event::WatchdogAbandoned { .. } => {}
            Event::SessionOpened { prefix_len } => {
                let _ = write!(out, ",\"prefix_len\":{prefix_len}");
            }
            Event::SolverQuery {
                mode,
                outcome,
                cache_hit,
                dur_us,
                conflicts,
                terms_blasted,
                terms_blast_reused,
                prefix_hits,
                clauses_retained,
                cache_evictions,
            } => {
                let _ = write!(
                    out,
                    ",\"mode\":\"{mode}\",\"outcome\":\"{outcome}\",\"cache_hit\":{cache_hit},\
                     \"dur_us\":{dur_us},\"conflicts\":{conflicts},\
                     \"terms_blasted\":{terms_blasted},\"terms_blast_reused\":{terms_blast_reused},\
                     \"prefix_hits\":{prefix_hits},\"clauses_retained\":{clauses_retained},\
                     \"cache_evictions\":{cache_evictions}"
                );
            }
            Event::FaultInjected { site, fault } => {
                let _ = write!(out, ",\"site\":\"{site}\",\"fault\":\"{fault}\"");
            }
            Event::CacheHit { fp } | Event::CacheMiss { fp } | Event::CacheStore { fp } => {
                let _ = write!(out, ",\"fp\":{fp}");
            }
            Event::StoreError { target, op, detail } => {
                let _ = write!(out, ",\"target\":\"{target}\",\"op\":\"{op}\",\"detail\":");
                json::write_str(detail, out);
            }
            Event::StoreDegraded { target, failures } => {
                let _ = write!(out, ",\"target\":\"{target}\",\"failures\":{failures}");
            }
            Event::ResumeSkipped { .. } => {}
            Event::RequestReceived { client, tag } => {
                let _ = write!(out, ",\"client\":{client},\"tag\":{tag}");
            }
            Event::RequestRejected { client, tag, reason } => {
                let _ = write!(out, ",\"client\":{client},\"tag\":{tag},\"reason\":\"{reason}\"");
            }
            Event::RequestCompleted { client, tag, result, queue_us, wall_us } => {
                let _ = write!(
                    out,
                    ",\"client\":{client},\"tag\":{tag},\"result\":\"{result}\",\
                     \"queue_us\":{queue_us},\"wall_us\":{wall_us}"
                );
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let events = vec![
            Event::Span { phase: Phase::Isel, start_us: 10, dur_us: 5 },
            Event::Counter { name: "steps", delta: 3 },
            Event::AttemptStart { func: 1, attempt: 2, budget_scale: 4 },
            Event::AttemptEnd { func: 1, attempt: 2, result: "succeeded", dur_us: 99 },
            Event::PanicCaptured {
                func: 0,
                attempt: 1,
                message: "boom \"quoted\"\nline2".into(),
                location: Some("src/x.rs:3:5".into()),
            },
            Event::DeadlineCancelled { func: 7, attempt: 1 },
            Event::WatchdogAbandoned { func: 7, attempt: 1 },
            Event::SessionOpened { prefix_len: 4 },
            Event::SolverQuery {
                mode: "session",
                outcome: "unsat",
                cache_hit: false,
                dur_us: 12,
                conflicts: 2,
                terms_blasted: 30,
                terms_blast_reused: 4,
                prefix_hits: 1,
                clauses_retained: 5,
                cache_evictions: 0,
            },
            Event::FaultInjected { site: "solver_query", fault: "force_budget_terms" },
            Event::CacheHit { fp: 0xdead_beef },
            Event::CacheMiss { fp: 7 },
            Event::CacheStore { fp: 0x7fff_ffff },
            Event::StoreError {
                target: "journal",
                op: "append",
                detail: "injected \"quoted\" failure".into(),
            },
            Event::StoreDegraded { target: "store", failures: 3 },
            Event::ResumeSkipped { func: 9 },
            Event::RequestReceived { client: 2, tag: 40 },
            Event::RequestRejected { client: 2, tag: 41, reason: "queue_full" },
            Event::RequestCompleted {
                client: 2,
                tag: 40,
                result: "succeeded",
                queue_us: 15,
                wall_us: 1200,
            },
        ];
        for (i, event) in events.into_iter().enumerate() {
            let te = TraceEvent { t_us: 100 + i as u64, func: Some(3), attempt: Some(1), event };
            let mut line = String::new();
            te.write_jsonl(&mut line);
            let v = Json::parse(&line).unwrap_or_else(|e| panic!("line {i} invalid: {e}\n{line}"));
            assert_eq!(v.get("t_us").and_then(Json::as_u64), Some(100 + i as u64));
            assert!(v.get("ev").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn panic_event_preserves_message_and_location_fields() {
        let te = TraceEvent {
            t_us: 1,
            func: None,
            attempt: None,
            event: Event::PanicCaptured {
                func: 2,
                attempt: 1,
                message: "msg with \"quotes\" and\nnewline".into(),
                location: None,
            },
        };
        let mut line = String::new();
        te.write_jsonl(&mut line);
        let v = Json::parse(&line).expect("valid");
        assert_eq!(
            v.get("message").and_then(Json::as_str),
            Some("msg with \"quotes\" and\nnewline")
        );
        assert_eq!(v.get("location"), Some(&Json::Null));
    }
}
