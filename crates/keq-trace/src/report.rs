//! The aggregated machine-readable run report (`RUN_REPORT.json`).
//!
//! One [`RunReport`] summarizes a corpus run: the Fig. 6 outcome table,
//! per-phase span-time histograms, the merged solver counters, and one row
//! per function with per-attempt timing, phase attribution, structured
//! panic capture, and injected-fault markers. The same type backs the
//! `--report` harness option and the bench targets, so bench JSON and
//! harness telemetry share one schema.
//!
//! [`validate`] is the schema checker CI runs against an emitted report:
//! it rejects missing keys, malformed tables, and non-monotonic span
//! timestamps. [`check_phase_coverage`] is the accounting bar: top-level
//! phase spans of each fully-observed function must sum to (almost) its
//! recorded wall time, or the instrumentation has a blind spot.

use crate::event::{Event, Phase, TraceEvent};
use crate::histogram::Histogram;
use crate::json::{self, Json};

/// Schema identifier of the current report format.
///
/// v2 added the `cache` section (shared obligation-cache counters); v3
/// added the `resume` section (write-ahead journal recovery), the
/// `quarantined` outcome category, per-function `recovered` flags, and
/// the incremental-flush / circuit-breaker cache counters; v4 added the
/// `server` section (request counters and latency quantiles of the
/// long-lived `keq-server` front end — all-zero for batch runs); v5 added
/// `p90_us` to the server section, the solver `restarts` counter, and the
/// `telemetry` section (metrics sampling plus the slow-obligation table);
/// v6 added the obligation-normalization counters (`rewrite_rules_fired`,
/// `rewrite_passes`, `rewrite_nodes_saved`) and the CDCL glue-retention
/// counter (`lbd_kept`) to the solver section; v7 made the report
/// pass-aware: every function row carries the validated pass's stable
/// name (`pass`), and the new top-level `passes` array holds one outcome
/// table per validated pass, so a run that validates the same corpus
/// under ISel, regalloc, and GVN reports each pass's Fig. 6 row
/// separately.
pub const REPORT_SCHEMA: &str = "keq-run-report/v7";

/// The Fig. 6 outcome table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTable {
    /// Validated (equivalent or refines).
    pub succeeded: u64,
    /// Timeout-class resource exhaustion.
    pub timeout: u64,
    /// Memory-class resource exhaustion.
    pub out_of_memory: u64,
    /// Isolated panics.
    pub crashed: u64,
    /// Still crashing after exhausting every retry attempt.
    pub quarantined: u64,
    /// Everything else.
    pub other: u64,
    /// Total functions.
    pub total: u64,
    /// Total attempts across all functions (≥ total when retries fired).
    pub attempts: u64,
}

impl OutcomeTable {
    fn to_json(self) -> Json {
        json::obj(vec![
            ("succeeded", json::num(self.succeeded)),
            ("timeout", json::num(self.timeout)),
            ("out_of_memory", json::num(self.out_of_memory)),
            ("crashed", json::num(self.crashed)),
            ("quarantined", json::num(self.quarantined)),
            ("other", json::num(self.other)),
            ("total", json::num(self.total)),
            ("attempts", json::num(self.attempts)),
        ])
    }

    /// Serializes the table as one compact JSON object (the form the bench
    /// targets embed).
    pub fn to_json_string(self) -> String {
        let mut s = String::new();
        self.to_json().write_compact(&mut s);
        s
    }
}

/// One validated pass's section of the v7 schema: the pass's stable wire
/// name and its own Fig. 6 outcome table, aggregated over the rows that
/// validated under it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassSection {
    /// Stable pass name (`"isel"`, `"regalloc"`, `"gvn"`).
    pub pass: String,
    /// The pass's outcome table.
    pub outcome: OutcomeTable,
}

impl PassSection {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("pass", Json::Str(self.pass.clone())),
            ("outcome", self.outcome.to_json()),
        ])
    }
}

/// The merged solver counters of a run (`SolverStats`, flattened to stable
/// wire names).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Total queries issued.
    pub queries: u64,
    /// Queries answered `Sat`.
    pub sat: u64,
    /// Queries answered `Unsat`.
    pub unsat: u64,
    /// Queries that exhausted a budget.
    pub budget: u64,
    /// Total CDCL conflicts.
    pub conflicts: u64,
    /// Total CDCL restarts.
    pub restarts: u64,
    /// Queries answered from the memo cache.
    pub cache_hits: u64,
    /// Entries evicted from the bounded query cache.
    pub cache_evictions: u64,
    /// Incremental sessions opened.
    pub sessions_opened: u64,
    /// Session queries that reused an asserted prefix.
    pub prefix_hits: u64,
    /// Learnt clauses retained across session queries.
    pub clauses_retained: u64,
    /// Term nodes bit-blasted.
    pub terms_blasted: u64,
    /// Term nodes served from a blast memo.
    pub terms_blast_reused: u64,
    /// Rewrite rules fired by obligation normalization.
    pub rewrite_rules_fired: u64,
    /// Normalization passes over obligation roots.
    pub rewrite_passes: u64,
    /// Term-DAG nodes eliminated by obligation normalization.
    pub rewrite_nodes_saved: u64,
    /// Glue clauses (LBD ≤ 2) exempted from CDCL database reduction.
    pub lbd_kept: u64,
    /// Total solver wall-clock, µs.
    pub time_us: u64,
}

impl SolverCounters {
    const FIELDS: [&'static str; 18] = [
        "queries",
        "sat",
        "unsat",
        "budget",
        "conflicts",
        "restarts",
        "cache_hits",
        "cache_evictions",
        "sessions_opened",
        "prefix_hits",
        "clauses_retained",
        "terms_blasted",
        "terms_blast_reused",
        "rewrite_rules_fired",
        "rewrite_passes",
        "rewrite_nodes_saved",
        "lbd_kept",
        "time_us",
    ];

    /// Serializes to the stable wire shape (shared by `RUN_REPORT.json`
    /// and the server protocol's slow-obligation rows).
    pub fn to_json(self) -> Json {
        json::obj(vec![
            ("queries", json::num(self.queries)),
            ("sat", json::num(self.sat)),
            ("unsat", json::num(self.unsat)),
            ("budget", json::num(self.budget)),
            ("conflicts", json::num(self.conflicts)),
            ("restarts", json::num(self.restarts)),
            ("cache_hits", json::num(self.cache_hits)),
            ("cache_evictions", json::num(self.cache_evictions)),
            ("sessions_opened", json::num(self.sessions_opened)),
            ("prefix_hits", json::num(self.prefix_hits)),
            ("clauses_retained", json::num(self.clauses_retained)),
            ("terms_blasted", json::num(self.terms_blasted)),
            ("terms_blast_reused", json::num(self.terms_blast_reused)),
            ("rewrite_rules_fired", json::num(self.rewrite_rules_fired)),
            ("rewrite_passes", json::num(self.rewrite_passes)),
            ("rewrite_nodes_saved", json::num(self.rewrite_nodes_saved)),
            ("lbd_kept", json::num(self.lbd_kept)),
            ("time_us", json::num(self.time_us)),
        ])
    }

    /// Parses the [`SolverCounters::to_json`] shape. Missing fields read
    /// zero (forward compatibility on the wire); a non-object is `None`.
    pub fn from_json(doc: &Json) -> Option<SolverCounters> {
        let Json::Obj(_) = doc else { return None };
        let f = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
        Some(SolverCounters {
            queries: f("queries"),
            sat: f("sat"),
            unsat: f("unsat"),
            budget: f("budget"),
            conflicts: f("conflicts"),
            restarts: f("restarts"),
            cache_hits: f("cache_hits"),
            cache_evictions: f("cache_evictions"),
            sessions_opened: f("sessions_opened"),
            prefix_hits: f("prefix_hits"),
            clauses_retained: f("clauses_retained"),
            terms_blasted: f("terms_blasted"),
            terms_blast_reused: f("terms_blast_reused"),
            rewrite_rules_fired: f("rewrite_rules_fired"),
            rewrite_passes: f("rewrite_passes"),
            rewrite_nodes_saved: f("rewrite_nodes_saved"),
            lbd_kept: f("lbd_kept"),
            time_us: f("time_us"),
        })
    }
}

/// The shared obligation-cache counters of a run (`cache.*` in the v2
/// schema): canonical-fingerprint lookups, verdict reuse, and the on-disk
/// store traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Obligations fingerprinted and looked up (must equal hits + misses).
    pub obligations: u64,
    /// Lookups answered by the shared cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Verdicts recorded into the shared cache.
    pub stores: u64,
    /// Entries evicted by the byte bound.
    pub evictions: u64,
    /// Live entries at end of run.
    pub entries: u64,
    /// Records accepted from the persisted store at startup.
    pub disk_loaded: u64,
    /// Records rejected while loading (corruption, stale revision).
    pub disk_rejected: u64,
    /// Records written across all flushes of the run.
    pub disk_persisted: u64,
    /// Size of the persisted store after the run, bytes (0 when not
    /// persisting).
    pub disk_bytes: u64,
    /// Successful incremental store flushes (including the final one).
    pub flushes: u64,
    /// Failed flush attempts (each also emitted a `StoreError` event).
    pub flush_failures: u64,
    /// Whether the store circuit breaker tripped: the run finished
    /// memory-only and the final state was not persisted.
    pub degraded: bool,
}

impl CacheCounters {
    const FIELDS: [&'static str; 12] = [
        "obligations",
        "hits",
        "misses",
        "stores",
        "evictions",
        "entries",
        "disk_loaded",
        "disk_rejected",
        "disk_persisted",
        "disk_bytes",
        "flushes",
        "flush_failures",
    ];

    fn to_json(self) -> Json {
        json::obj(vec![
            ("obligations", json::num(self.obligations)),
            ("hits", json::num(self.hits)),
            ("misses", json::num(self.misses)),
            ("stores", json::num(self.stores)),
            ("evictions", json::num(self.evictions)),
            ("entries", json::num(self.entries)),
            ("disk_loaded", json::num(self.disk_loaded)),
            ("disk_rejected", json::num(self.disk_rejected)),
            ("disk_persisted", json::num(self.disk_persisted)),
            ("disk_bytes", json::num(self.disk_bytes)),
            ("flushes", json::num(self.flushes)),
            ("flush_failures", json::num(self.flush_failures)),
            ("degraded", Json::Bool(self.degraded)),
        ])
    }
}

/// The journal-recovery section of the v3 schema: what resume recovered
/// from the write-ahead verdict journal before scheduling any work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumeSection {
    /// Whether this run resumed from a journal.
    pub enabled: bool,
    /// Functions skipped because a journal record decided them.
    pub skipped: u64,
    /// Valid records recovered from the journal.
    pub recovered: u64,
    /// Corrupt records skipped fail-soft while loading the journal.
    pub corrupt: u64,
}

impl ResumeSection {
    fn to_json(self) -> Json {
        json::obj(vec![
            ("enabled", Json::Bool(self.enabled)),
            ("skipped", json::num(self.skipped)),
            ("recovered", json::num(self.recovered)),
            ("corrupt", json::num(self.corrupt)),
        ])
    }
}

/// The request-serving section of the v4 schema: how the long-lived
/// `keq-server` front end fared. Batch runs carry the all-zero default
/// (`enabled: false`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerSection {
    /// Whether this report came from a server run.
    pub enabled: bool,
    /// Validation requests accepted into the scheduler.
    pub requests: u64,
    /// Requests that ran to a final verdict.
    pub completed: u64,
    /// Requests bounced by queue-depth backpressure.
    pub rejected_queue_full: u64,
    /// Requests bounced by a per-client inflight quota.
    pub rejected_quota: u64,
    /// Requests whose client disconnected before the verdict was delivered.
    pub disconnects: u64,
    /// Median request latency (submit → verdict), µs.
    pub p50_us: u64,
    /// 90th-percentile request latency, µs.
    pub p90_us: u64,
    /// 99th-percentile request latency, µs.
    pub p99_us: u64,
}

impl ServerSection {
    const FIELDS: [&'static str; 8] = [
        "requests",
        "completed",
        "rejected_queue_full",
        "rejected_quota",
        "disconnects",
        "p50_us",
        "p90_us",
        "p99_us",
    ];

    fn to_json(self) -> Json {
        json::obj(vec![
            ("enabled", Json::Bool(self.enabled)),
            ("requests", json::num(self.requests)),
            ("completed", json::num(self.completed)),
            ("rejected_queue_full", json::num(self.rejected_queue_full)),
            ("rejected_quota", json::num(self.rejected_quota)),
            ("disconnects", json::num(self.disconnects)),
            ("p50_us", json::num(self.p50_us)),
            ("p90_us", json::num(self.p90_us)),
            ("p99_us", json::num(self.p99_us)),
        ])
    }
}

/// One row of the slow-obligation table: a validation unit whose total
/// wall time made the bounded top-K, with enough attached context —
/// canonical fingerprint, per-phase time split, and the solver-counter
/// delta it alone accrued — to profile the tail without re-running it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlowObligation {
    /// PR 4 canonical obligation fingerprint, rendered as a hex string
    /// (u64 fingerprints can exceed 2^53, the JSON integer precision
    /// bound, so they never travel as numbers).
    pub fingerprint: String,
    /// Function name or client-supplied request tag.
    pub label: String,
    /// Total wall-clock across attempts, µs.
    pub wall_us: u64,
    /// Final result category (stable wire name).
    pub result: String,
    /// Attempts run.
    pub attempts: u64,
    /// Retries after the first attempt (`attempts - 1`, floored at 0).
    pub retries: u64,
    /// Summed span time per phase across attempts, µs (pipeline order;
    /// phases with no spans omitted).
    pub phase_us: Vec<(Phase, u64)>,
    /// Solver counters accrued by this obligation alone.
    pub solver: SolverCounters,
}

impl SlowObligation {
    /// Serializes one slow-table row (shared by `RUN_REPORT.json` and the
    /// server protocol's `metrics` op).
    pub fn to_json(&self) -> Json {
        json::obj(vec![
            ("fingerprint", Json::Str(self.fingerprint.clone())),
            ("label", Json::Str(self.label.clone())),
            ("wall_us", json::num(self.wall_us)),
            ("result", Json::Str(self.result.clone())),
            ("attempts", json::num(self.attempts)),
            ("retries", json::num(self.retries)),
            (
                "phase_us",
                Json::Obj(
                    self.phase_us
                        .iter()
                        .map(|(p, us)| (p.name().to_string(), json::num(*us)))
                        .collect(),
                ),
            ),
            ("solver", self.solver.to_json()),
        ])
    }

    /// Parses the [`SlowObligation::to_json`] shape; `None` on a row that
    /// is not an object or lacks the string identity fields. Phase keys
    /// that name no known [`Phase`] are skipped (forward compatibility).
    pub fn from_json(doc: &Json) -> Option<SlowObligation> {
        let fingerprint = doc.get("fingerprint")?.as_str()?.to_string();
        let label = doc.get("label")?.as_str()?.to_string();
        let result = doc.get("result")?.as_str()?.to_string();
        let num = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
        let mut phase_us = Vec::new();
        if let Some(Json::Obj(pairs)) = doc.get("phase_us") {
            for (name, v) in pairs {
                if let (Some(phase), Some(us)) =
                    (Phase::ALL.iter().find(|p| p.name() == name), v.as_u64())
                {
                    phase_us.push((*phase, us));
                }
            }
        }
        Some(SlowObligation {
            fingerprint,
            label,
            wall_us: num("wall_us"),
            result,
            attempts: num("attempts"),
            retries: num("retries"),
            phase_us,
            solver: doc.get("solver").and_then(SolverCounters::from_json).unwrap_or_default(),
        })
    }
}

/// The live-telemetry section of the v5 schema: whether the metrics
/// registry was on, how many collector samples were taken, and the
/// slow-obligation table (descending wall time). All-default when the run
/// had metrics disabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySection {
    /// Whether the metrics registry was enabled for the run.
    pub enabled: bool,
    /// Time-series samples the collector took.
    pub samples: u64,
    /// Top-K slowest obligations, descending wall time.
    pub slow: Vec<SlowObligation>,
}

impl TelemetrySection {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("enabled", Json::Bool(self.enabled)),
            ("samples", json::num(self.samples)),
            ("slow", Json::Arr(self.slow.iter().map(SlowObligation::to_json).collect())),
        ])
    }
}

/// Aggregated span times of one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// The phase.
    pub phase: Phase,
    /// Completed spans.
    pub count: u64,
    /// Summed span durations, µs.
    pub total_us: u64,
    /// Log-bucketed span-duration distribution (µs).
    pub histogram: Histogram,
}

impl PhaseSummary {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("phase", Json::Str(self.phase.name().to_string())),
            ("count", json::num(self.count)),
            ("total_us", json::num(self.total_us)),
            (
                "histogram",
                json::obj(vec![
                    (
                        "bounds_us",
                        Json::Arr(self.histogram.bounds.iter().map(|&b| Json::Num(b)).collect()),
                    ),
                    (
                        "counts",
                        Json::Arr(
                            self.histogram.counts.iter().map(|&c| json::num(c as u64)).collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }
}

/// One attempt of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptReport {
    /// 1-based attempt number.
    pub attempt: u32,
    /// Escalating-retry budget multiplier.
    pub budget_scale: u64,
    /// Attempt wall-clock, µs.
    pub wall_us: u64,
    /// Journal offset when the attempt started, µs (0 without a journal).
    pub start_us: u64,
    /// Journal offset when the attempt ended, µs.
    pub end_us: u64,
    /// Result category (stable wire name).
    pub result: String,
    /// Whether the watchdog abandoned the worker.
    pub abandoned: bool,
    /// Captured panic message, for crashed attempts.
    pub panic_message: Option<String>,
    /// Captured panic source location (`file:line:col`), when available.
    pub panic_location: Option<String>,
    /// Injected faults observed during the attempt (stable wire names).
    pub faults: Vec<String>,
    /// Summed span time per phase, µs (pipeline order).
    pub phase_us: Vec<(Phase, u64)>,
}

impl AttemptReport {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("attempt", json::num(u64::from(self.attempt))),
            ("budget_scale", json::num(self.budget_scale)),
            ("wall_us", json::num(self.wall_us)),
            ("start_us", json::num(self.start_us)),
            ("end_us", json::num(self.end_us)),
            ("result", Json::Str(self.result.clone())),
            ("abandoned", Json::Bool(self.abandoned)),
            ("panic_message", json::opt_str(&self.panic_message)),
            ("panic_location", json::opt_str(&self.panic_location)),
            (
                "faults",
                Json::Arr(self.faults.iter().map(|f| Json::Str(f.clone())).collect()),
            ),
            (
                "phase_us",
                Json::Obj(
                    self.phase_us
                        .iter()
                        .map(|(p, us)| (p.name().to_string(), json::num(*us)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One corpus function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Index in the validated module.
    pub index: u64,
    /// Stable name of the validated pass this row's verdict is about.
    pub pass: String,
    /// Instruction count.
    pub size: u64,
    /// Total wall-clock across attempts, µs.
    pub wall_us: u64,
    /// Final result category (stable wire name).
    pub result: String,
    /// Whether the verdict was recovered from the write-ahead journal by a
    /// resumed run (such rows have no observed attempts).
    pub recovered: bool,
    /// Every attempt, in order.
    pub attempts: Vec<AttemptReport>,
}

impl FunctionReport {
    fn to_json(&self) -> Json {
        json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("index", json::num(self.index)),
            ("pass", Json::Str(self.pass.clone())),
            ("size", json::num(self.size)),
            ("wall_us", json::num(self.wall_us)),
            ("result", Json::Str(self.result.clone())),
            ("recovered", Json::Bool(self.recovered)),
            ("attempts", Json::Arr(self.attempts.iter().map(AttemptReport::to_json).collect())),
        ])
    }
}

/// The aggregated report of one corpus run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Corpus seed.
    pub seed: u64,
    /// Functions in the run.
    pub n_functions: u64,
    /// Whether a trace journal backed the phase/fault sections.
    pub trace_enabled: bool,
    /// The outcome table (all passes merged).
    pub outcome: OutcomeTable,
    /// Per-pass outcome tables, in validation order.
    pub passes: Vec<PassSection>,
    /// Merged solver counters.
    pub solver: SolverCounters,
    /// Shared obligation-cache counters.
    pub cache: CacheCounters,
    /// Write-ahead journal recovery.
    pub resume: ResumeSection,
    /// Request serving (`keq-server` runs; all-zero default for batch).
    pub server: ServerSection,
    /// Live telemetry (metrics sampling and the slow-obligation table;
    /// all-default when metrics were disabled).
    pub telemetry: TelemetrySection,
    /// Per-phase span aggregates (phases with no spans are omitted).
    pub phases: Vec<PhaseSummary>,
    /// Per-function rows, ordered by index.
    pub functions: Vec<FunctionReport>,
    /// Events recorded into the journal.
    pub events_recorded: u64,
    /// Events the journal dropped to its capacity bound.
    pub events_dropped: u64,
}

impl RunReport {
    /// Serializes the report as pretty-printed JSON (the `RUN_REPORT.json`
    /// payload).
    pub fn to_json(&self) -> String {
        let doc = json::obj(vec![
            ("schema", Json::Str(REPORT_SCHEMA.to_string())),
            ("seed", json::num(self.seed)),
            ("n_functions", json::num(self.n_functions)),
            ("trace_enabled", Json::Bool(self.trace_enabled)),
            ("outcome", self.outcome.to_json()),
            ("passes", Json::Arr(self.passes.iter().map(PassSection::to_json).collect())),
            ("solver", self.solver.to_json()),
            ("cache", self.cache.to_json()),
            ("resume", self.resume.to_json()),
            ("server", self.server.to_json()),
            ("telemetry", self.telemetry.to_json()),
            ("phases", Json::Arr(self.phases.iter().map(PhaseSummary::to_json).collect())),
            (
                "functions",
                Json::Arr(self.functions.iter().map(FunctionReport::to_json).collect()),
            ),
            ("events_recorded", json::num(self.events_recorded)),
            ("events_dropped", json::num(self.events_dropped)),
        ]);
        let mut out = String::new();
        doc.write_pretty(&mut out);
        out
    }
}

/// Aggregates [`Event::Span`] events into per-phase summaries with
/// log-bucketed latency histograms. Phases with no spans are omitted.
pub fn phase_summaries(events: &[TraceEvent]) -> Vec<PhaseSummary> {
    let mut out: Vec<PhaseSummary> = Vec::new();
    for phase in Phase::ALL {
        let mut summary = PhaseSummary {
            phase,
            count: 0,
            total_us: 0,
            histogram: Histogram::log_us(format!("{} span time (µs)", phase.name())),
        };
        for ev in events {
            if let Event::Span { phase: p, dur_us, .. } = ev.event {
                if p == phase {
                    summary.count += 1;
                    summary.total_us += dur_us;
                    summary.histogram.add(dur_us as f64);
                }
            }
        }
        if summary.count > 0 {
            out.push(summary);
        }
    }
    out
}

/// A schema violation found by [`validate`].
pub type Violation = String;

fn require<'a>(doc: &'a Json, path: &str, key: &str, out: &mut Vec<Violation>) -> Option<&'a Json> {
    let v = doc.get(key);
    if v.is_none() {
        out.push(format!("{path}: missing key \"{key}\""));
    }
    v
}

fn require_u64(doc: &Json, path: &str, key: &str, out: &mut Vec<Violation>) -> Option<u64> {
    let v = require(doc, path, key, out)?;
    let n = v.as_u64();
    if n.is_none() {
        out.push(format!("{path}.{key}: expected a non-negative integer"));
    }
    n
}

fn require_str<'a>(
    doc: &'a Json,
    path: &str,
    key: &str,
    out: &mut Vec<Violation>,
) -> Option<&'a str> {
    let v = require(doc, path, key, out)?;
    let s = v.as_str();
    if s.is_none() {
        out.push(format!("{path}.{key}: expected a string"));
    }
    s
}

/// Validates a parsed `RUN_REPORT.json` document against the v1 schema:
/// every required key present and well-typed, the outcome table internally
/// consistent, and span timestamps monotonic (attempt windows ordered and
/// non-inverted within every function).
///
/// # Errors
///
/// Returns the full list of violations (never just the first).
pub fn validate(doc: &Json) -> Result<(), Vec<Violation>> {
    let mut v: Vec<Violation> = Vec::new();
    match require_str(doc, "$", "schema", &mut v) {
        Some(s) if s == REPORT_SCHEMA => {}
        Some(s) => v.push(format!("$.schema: unknown schema \"{s}\" (expected {REPORT_SCHEMA})")),
        None => {}
    }
    require_u64(doc, "$", "seed", &mut v);
    require_u64(doc, "$", "n_functions", &mut v);
    require(doc, "$", "trace_enabled", &mut v);
    require_u64(doc, "$", "events_recorded", &mut v);
    require_u64(doc, "$", "events_dropped", &mut v);

    if let Some(outcome) = require(doc, "$", "outcome", &mut v) {
        validate_outcome_table(outcome, "$.outcome", &mut v);
    }

    if let Some(passes) = require(doc, "$", "passes", &mut v) {
        match passes.as_arr() {
            None => v.push("$.passes: expected an array".into()),
            Some(items) => {
                let mut pass_total = 0u64;
                for (i, p) in items.iter().enumerate() {
                    let path = format!("$.passes[{i}]");
                    require_str(p, &path, "pass", &mut v);
                    if let Some(outcome) = require(p, &path, "outcome", &mut v) {
                        validate_outcome_table(outcome, &format!("{path}.outcome"), &mut v);
                        pass_total +=
                            outcome.get("total").and_then(Json::as_u64).unwrap_or(0);
                    }
                }
                // Per-pass tables must partition the merged one.
                if let Some(t) =
                    doc.get("outcome").and_then(|o| o.get("total")).and_then(Json::as_u64)
                {
                    if !items.is_empty() && pass_total != t {
                        v.push(format!(
                            "$.passes: per-pass totals sum to {pass_total} but \
                             $.outcome.total is {t}"
                        ));
                    }
                }
            }
        }
    }

    if let Some(solver) = require(doc, "$", "solver", &mut v) {
        for key in SolverCounters::FIELDS {
            require_u64(solver, "$.solver", key, &mut v);
        }
    }

    if let Some(cache) = require(doc, "$", "cache", &mut v) {
        for key in CacheCounters::FIELDS {
            require_u64(cache, "$.cache", key, &mut v);
        }
        if require(cache, "$.cache", "degraded", &mut v)
            .is_some_and(|d| d.as_bool().is_none())
        {
            v.push("$.cache.degraded: expected a boolean".into());
        }
        let hits = cache.get("hits").and_then(Json::as_u64);
        let misses = cache.get("misses").and_then(Json::as_u64);
        let obligations = cache.get("obligations").and_then(Json::as_u64);
        if let (Some(h), Some(m), Some(o)) = (hits, misses, obligations) {
            if h + m != o {
                v.push(format!(
                    "$.cache: hits ({h}) + misses ({m}) disagree with obligations ({o})"
                ));
            }
        }
    }

    if let Some(phases) = require(doc, "$", "phases", &mut v) {
        match phases.as_arr() {
            None => v.push("$.phases: expected an array".into()),
            Some(items) => {
                for (i, p) in items.iter().enumerate() {
                    let path = format!("$.phases[{i}]");
                    if let Some(name) = require_str(p, &path, "phase", &mut v) {
                        if Phase::from_name(name).is_none() {
                            v.push(format!("{path}.phase: unknown phase \"{name}\""));
                        }
                    }
                    require_u64(p, &path, "count", &mut v);
                    require_u64(p, &path, "total_us", &mut v);
                    if let Some(h) = require(p, &path, "histogram", &mut v) {
                        let bounds = h.get("bounds_us").and_then(Json::as_arr);
                        let counts = h.get("counts").and_then(Json::as_arr);
                        match (bounds, counts) {
                            (Some(b), Some(c)) if c.len() == b.len() + 1 => {}
                            (Some(_), Some(_)) => v.push(format!(
                                "{path}.histogram: counts must have bounds_us+1 entries"
                            )),
                            _ => v.push(format!(
                                "{path}.histogram: missing bounds_us/counts arrays"
                            )),
                        }
                    }
                }
            }
        }
    }

    if let Some(resume) = require(doc, "$", "resume", &mut v) {
        if require(resume, "$.resume", "enabled", &mut v)
            .is_some_and(|d| d.as_bool().is_none())
        {
            v.push("$.resume.enabled: expected a boolean".into());
        }
        for key in ["skipped", "recovered", "corrupt"] {
            require_u64(resume, "$.resume", key, &mut v);
        }
    }

    if let Some(server) = require(doc, "$", "server", &mut v) {
        if require(server, "$.server", "enabled", &mut v)
            .is_some_and(|d| d.as_bool().is_none())
        {
            v.push("$.server.enabled: expected a boolean".into());
        }
        for key in ServerSection::FIELDS {
            require_u64(server, "$.server", key, &mut v);
        }
        let requests = server.get("requests").and_then(Json::as_u64);
        let completed = server.get("completed").and_then(Json::as_u64);
        if let (Some(r), Some(c)) = (requests, completed) {
            if c > r {
                v.push(format!(
                    "$.server: completed ({c}) exceeds accepted requests ({r})"
                ));
            }
        }
    }

    if let Some(telemetry) = require(doc, "$", "telemetry", &mut v) {
        if require(telemetry, "$.telemetry", "enabled", &mut v)
            .is_some_and(|d| d.as_bool().is_none())
        {
            v.push("$.telemetry.enabled: expected a boolean".into());
        }
        require_u64(telemetry, "$.telemetry", "samples", &mut v);
        match require(telemetry, "$.telemetry", "slow", &mut v).map(Json::as_arr) {
            Some(None) => v.push("$.telemetry.slow: expected an array".into()),
            Some(Some(rows)) => {
                let mut prev_wall = u64::MAX;
                for (i, row) in rows.iter().enumerate() {
                    let path = format!("$.telemetry.slow[{i}]");
                    require_str(row, &path, "fingerprint", &mut v);
                    require_str(row, &path, "label", &mut v);
                    require_str(row, &path, "result", &mut v);
                    let wall = require_u64(row, &path, "wall_us", &mut v);
                    require_u64(row, &path, "attempts", &mut v);
                    require_u64(row, &path, "retries", &mut v);
                    require(row, &path, "phase_us", &mut v);
                    if let Some(solver) = require(row, &path, "solver", &mut v) {
                        for key in SolverCounters::FIELDS {
                            require_u64(solver, &format!("{path}.solver"), key, &mut v);
                        }
                    }
                    if let Some(w) = wall {
                        if w > prev_wall {
                            v.push(format!(
                                "{path}: slow table must be sorted by descending wall_us"
                            ));
                        }
                        prev_wall = w;
                    }
                }
            }
            None => {}
        }
    }

    if let Some(functions) = require(doc, "$", "functions", &mut v) {
        match functions.as_arr() {
            None => v.push("$.functions: expected an array".into()),
            Some(items) => {
                for (i, f) in items.iter().enumerate() {
                    validate_function(f, i, &mut v);
                }
            }
        }
    }

    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

fn validate_outcome_table(outcome: &Json, path: &str, v: &mut Vec<Violation>) {
    let mut parts = 0u64;
    for key in ["succeeded", "timeout", "out_of_memory", "crashed", "quarantined", "other"] {
        parts += require_u64(outcome, path, key, v).unwrap_or(0);
    }
    let total = require_u64(outcome, path, "total", v);
    require_u64(outcome, path, "attempts", v);
    if let Some(t) = total {
        if t != parts {
            v.push(format!("{path}: categories sum to {parts} but total is {t}"));
        }
    }
}

fn validate_function(f: &Json, i: usize, v: &mut Vec<Violation>) {
    let path = format!("$.functions[{i}]");
    require_str(f, &path, "name", v);
    require_u64(f, &path, "index", v);
    require_str(f, &path, "pass", v);
    require_u64(f, &path, "size", v);
    require_u64(f, &path, "wall_us", v);
    require_str(f, &path, "result", v);
    if require(f, &path, "recovered", v).is_some_and(|d| d.as_bool().is_none()) {
        v.push(format!("{path}.recovered: expected a boolean"));
    }
    let Some(attempts) = require(f, &path, "attempts", v) else { return };
    let Some(items) = attempts.as_arr() else {
        v.push(format!("{path}.attempts: expected an array"));
        return;
    };
    let mut prev_attempt = 0u64;
    let mut prev_start = 0u64;
    for (j, a) in items.iter().enumerate() {
        let apath = format!("{path}.attempts[{j}]");
        let n = require_u64(a, &apath, "attempt", v);
        require_u64(a, &apath, "budget_scale", v);
        require_u64(a, &apath, "wall_us", v);
        let start = require_u64(a, &apath, "start_us", v);
        let end = require_u64(a, &apath, "end_us", v);
        require_str(a, &apath, "result", v);
        require(a, &apath, "abandoned", v);
        require(a, &apath, "panic_message", v);
        require(a, &apath, "panic_location", v);
        require(a, &apath, "faults", v);
        require(a, &apath, "phase_us", v);
        if let Some(n) = n {
            if n <= prev_attempt {
                v.push(format!("{apath}: attempt numbers must increase (got {n} after {prev_attempt})"));
            }
            prev_attempt = n;
        }
        if let (Some(s), Some(e)) = (start, end) {
            if e < s {
                v.push(format!("{apath}: span inverted (end_us {e} < start_us {s})"));
            }
            if s < prev_start {
                v.push(format!(
                    "{apath}: non-monotonic span timestamps (start_us {s} before previous attempt's start {prev_start})"
                ));
            }
            prev_start = s;
        }
    }
}

/// Checks the span-accounting bar: for every function whose attempts all
/// completed under observation (no watchdog abandonment, journal not
/// truncated), the top-level phase spans must sum to the function's
/// recorded wall time within `slack_frac` (plus `slack_us` absolute noise
/// floor). Functions shorter than `min_wall_us` are skipped — at that
/// scale scheduler noise dominates any phase accounting.
///
/// # Errors
///
/// Returns one violation per function outside the tolerance.
pub fn check_phase_coverage(
    doc: &Json,
    slack_frac: f64,
    slack_us: u64,
    min_wall_us: u64,
) -> Result<(), Vec<Violation>> {
    let mut v = Vec::new();
    if doc.get("events_dropped").and_then(Json::as_u64).unwrap_or(0) > 0 {
        // A truncated journal under-reports spans by construction.
        return Ok(());
    }
    if doc.get("trace_enabled").and_then(Json::as_bool) != Some(true) {
        return Ok(());
    }
    let functions = doc.get("functions").and_then(Json::as_arr).unwrap_or(&[]);
    for f in functions {
        let name = f.get("name").and_then(Json::as_str).unwrap_or("?");
        let wall = f.get("wall_us").and_then(Json::as_u64).unwrap_or(0);
        let attempts = f.get("attempts").and_then(Json::as_arr).unwrap_or(&[]);
        let abandoned = attempts
            .iter()
            .any(|a| a.get("abandoned").and_then(Json::as_bool).unwrap_or(false));
        // Recovered rows carry journal-recorded wall time but no observed
        // attempts (their spans happened in the killed run), so they have
        // nothing to account for.
        if abandoned || attempts.is_empty() || wall < min_wall_us {
            continue;
        }
        let mut phase_sum = 0u64;
        for a in attempts {
            if let Some(Json::Obj(fields)) = a.get("phase_us") {
                for (key, val) in fields {
                    if Phase::from_name(key).is_some_and(Phase::is_top_level) {
                        phase_sum += val.as_u64().unwrap_or(0);
                    }
                }
            }
        }
        let tolerance = (wall as f64 * slack_frac) as u64 + slack_us;
        if phase_sum.abs_diff(wall) > tolerance {
            v.push(format!(
                "function {name}: top-level phase spans sum to {phase_sum} µs but wall time is \
                 {wall} µs (tolerance {tolerance} µs)"
            ));
        }
    }
    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but fully-populated report used across the tests.
    pub(crate) fn sample_report() -> RunReport {
        let mut hist = Histogram::log_us("check span time (µs)");
        hist.add(120.0);
        hist.add(80_000.0);
        RunReport {
            seed: 2021,
            n_functions: 2,
            trace_enabled: true,
            outcome: OutcomeTable {
                succeeded: 1,
                timeout: 0,
                out_of_memory: 0,
                crashed: 1,
                quarantined: 0,
                other: 0,
                total: 2,
                attempts: 3,
            },
            passes: vec![PassSection {
                pass: "isel".into(),
                outcome: OutcomeTable {
                    succeeded: 1,
                    crashed: 1,
                    total: 2,
                    attempts: 3,
                    ..OutcomeTable::default()
                },
            }],
            solver: SolverCounters {
                queries: 40,
                sat: 22,
                unsat: 17,
                budget: 1,
                conflicts: 90,
                restarts: 3,
                cache_hits: 6,
                cache_evictions: 2,
                sessions_opened: 4,
                prefix_hits: 30,
                clauses_retained: 55,
                terms_blasted: 1000,
                terms_blast_reused: 400,
                rewrite_rules_fired: 120,
                rewrite_passes: 48,
                rewrite_nodes_saved: 310,
                lbd_kept: 11,
                time_us: 80_120,
            },
            cache: CacheCounters {
                obligations: 34,
                hits: 9,
                misses: 25,
                stores: 14,
                evictions: 1,
                entries: 13,
                disk_loaded: 5,
                disk_rejected: 1,
                disk_persisted: 14,
                disk_bytes: 370,
                flushes: 2,
                flush_failures: 0,
                degraded: false,
            },
            resume: ResumeSection { enabled: false, skipped: 0, recovered: 0, corrupt: 0 },
            server: ServerSection {
                enabled: true,
                requests: 5,
                completed: 4,
                rejected_queue_full: 1,
                rejected_quota: 0,
                disconnects: 1,
                p50_us: 12_000,
                p90_us: 44_000,
                p99_us: 80_000,
            },
            telemetry: TelemetrySection {
                enabled: true,
                samples: 12,
                slow: vec![SlowObligation {
                    fingerprint: "00000000000000000000ffee00c0ffee".into(),
                    label: "f0".into(),
                    wall_us: 90_000,
                    result: "succeeded".into(),
                    attempts: 2,
                    retries: 1,
                    phase_us: vec![
                        (Phase::Check, 83_000),
                        (Phase::Lower, 9_000),
                        (Phase::Blast, 14_000),
                        (Phase::Cdcl, 31_000),
                    ],
                    solver: SolverCounters {
                        queries: 25,
                        sat: 14,
                        unsat: 10,
                        budget: 1,
                        conflicts: 80,
                        restarts: 3,
                        cache_hits: 2,
                        cache_evictions: 0,
                        sessions_opened: 2,
                        prefix_hits: 18,
                        clauses_retained: 40,
                        terms_blasted: 700,
                        terms_blast_reused: 250,
                        rewrite_rules_fired: 70,
                        rewrite_passes: 25,
                        rewrite_nodes_saved: 180,
                        lbd_kept: 6,
                        time_us: 61_000,
                    },
                }],
            },
            phases: vec![PhaseSummary {
                phase: Phase::Check,
                count: 2,
                total_us: 80_120,
                histogram: hist,
            }],
            functions: vec![
                FunctionReport {
                    name: "f0".into(),
                    index: 0,
                    pass: "isel".into(),
                    size: 12,
                    wall_us: 90_000,
                    result: "succeeded".into(),
                    recovered: false,
                    attempts: vec![
                        AttemptReport {
                            attempt: 1,
                            budget_scale: 1,
                            wall_us: 30_000,
                            start_us: 100,
                            end_us: 30_100,
                            result: "timeout".into(),
                            abandoned: false,
                            panic_message: None,
                            panic_location: None,
                            faults: vec!["force_budget_conflicts".into()],
                            phase_us: vec![(Phase::Isel, 2_000), (Phase::Check, 27_000)],
                        },
                        AttemptReport {
                            attempt: 2,
                            budget_scale: 4,
                            wall_us: 60_000,
                            start_us: 30_200,
                            end_us: 90_200,
                            result: "succeeded".into(),
                            abandoned: false,
                            panic_message: None,
                            panic_location: None,
                            faults: vec![],
                            phase_us: vec![(Phase::Isel, 2_000), (Phase::Check, 56_000)],
                        },
                    ],
                },
                FunctionReport {
                    name: "f1".into(),
                    index: 1,
                    pass: "isel".into(),
                    size: 7,
                    wall_us: 1_500,
                    result: "crashed".into(),
                    recovered: false,
                    attempts: vec![AttemptReport {
                        attempt: 1,
                        budget_scale: 1,
                        wall_us: 1_500,
                        start_us: 95_000,
                        end_us: 96_500,
                        result: "crashed".into(),
                        abandoned: false,
                        panic_message: Some("boom \"quoted\"\nwith newline \\ and π".into()),
                        panic_location: Some("crates/keq-smt/src/fault.rs:222:17".into()),
                        faults: vec!["panic".into()],
                        phase_us: vec![(Phase::Isel, 300), (Phase::Check, 1_100)],
                    }],
                },
            ],
            events_recorded: 123,
            events_dropped: 0,
        }
    }

    #[test]
    fn sample_report_serializes_and_validates() {
        let text = sample_report().to_json();
        let doc = Json::parse(&text).expect("report JSON parses");
        validate(&doc).expect("report validates");
        check_phase_coverage(&doc, 0.10, 2_000, 5_000).expect("coverage holds");
    }

    #[test]
    fn missing_keys_are_reported() {
        let text = sample_report().to_json();
        let mut doc = Json::parse(&text).expect("parses");
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "solver");
        }
        let errs = validate(&doc).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("missing key \"solver\"")), "{errs:?}");
    }

    #[test]
    fn non_monotonic_attempts_are_reported() {
        let mut report = sample_report();
        report.functions[0].attempts[1].start_us = 50; // before attempt 1
        let doc = Json::parse(&report.to_json()).expect("parses");
        let errs = validate(&doc).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("non-monotonic span timestamps")), "{errs:?}");
    }

    #[test]
    fn inverted_span_is_reported() {
        let mut report = sample_report();
        report.functions[1].attempts[0].end_us = 10;
        let doc = Json::parse(&report.to_json()).expect("parses");
        let errs = validate(&doc).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("span inverted")), "{errs:?}");
    }

    #[test]
    fn cache_hit_miss_sum_must_match_obligations() {
        let mut report = sample_report();
        report.cache.obligations = report.cache.hits + report.cache.misses + 1;
        let doc = Json::parse(&report.to_json()).expect("parses");
        let errs = validate(&doc).expect_err("must fail");
        assert!(
            errs.iter().any(|e| e.contains("disagree with obligations")),
            "{errs:?}"
        );
    }

    #[test]
    fn missing_cache_section_is_reported() {
        let text = sample_report().to_json();
        let mut doc = Json::parse(&text).expect("parses");
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "cache");
        }
        let errs = validate(&doc).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("missing key \"cache\"")), "{errs:?}");
    }

    #[test]
    fn inconsistent_outcome_total_is_reported() {
        let mut report = sample_report();
        report.outcome.total = 99;
        let doc = Json::parse(&report.to_json()).expect("parses");
        let errs = validate(&doc).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("categories sum to")), "{errs:?}");
    }

    #[test]
    fn coverage_gap_is_reported() {
        let mut report = sample_report();
        report.functions[0].attempts[1].phase_us = vec![(Phase::Isel, 10)];
        let doc = Json::parse(&report.to_json()).expect("parses");
        let errs = check_phase_coverage(&doc, 0.10, 2_000, 5_000).expect_err("must fail");
        assert!(errs[0].contains("f0"), "{errs:?}");
    }

    #[test]
    fn abandoned_and_tiny_functions_are_exempt_from_coverage() {
        let mut report = sample_report();
        // Huge gap, but the attempt was abandoned: exempt.
        report.functions[0].attempts[1].phase_us.clear();
        report.functions[0].attempts[1].abandoned = true;
        let doc = Json::parse(&report.to_json()).expect("parses");
        check_phase_coverage(&doc, 0.10, 2_000, 5_000).expect("abandoned rows are skipped");
    }

    #[test]
    fn missing_resume_section_is_reported() {
        let text = sample_report().to_json();
        let mut doc = Json::parse(&text).expect("parses");
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "resume");
        }
        let errs = validate(&doc).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("missing key \"resume\"")), "{errs:?}");
    }

    #[test]
    fn missing_server_section_is_reported() {
        let text = sample_report().to_json();
        let mut doc = Json::parse(&text).expect("parses");
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "server");
        }
        let errs = validate(&doc).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("missing key \"server\"")), "{errs:?}");
    }

    #[test]
    fn server_completed_cannot_exceed_requests() {
        let mut report = sample_report();
        report.server.completed = report.server.requests + 1;
        let doc = Json::parse(&report.to_json()).expect("parses");
        let errs = validate(&doc).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("exceeds accepted requests")), "{errs:?}");
    }

    #[test]
    fn batch_reports_carry_the_zero_server_section() {
        let mut report = sample_report();
        report.server = ServerSection::default();
        let doc = Json::parse(&report.to_json()).expect("parses");
        validate(&doc).expect("all-zero server section validates");
        assert_eq!(doc.get("server").and_then(|s| s.get("enabled")).and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn missing_telemetry_section_is_reported() {
        let text = sample_report().to_json();
        let mut doc = Json::parse(&text).expect("parses");
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "telemetry");
        }
        let errs = validate(&doc).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("missing key \"telemetry\"")), "{errs:?}");
    }

    #[test]
    fn unsorted_slow_table_is_reported() {
        let mut report = sample_report();
        let mut second = report.telemetry.slow[0].clone();
        second.wall_us = report.telemetry.slow[0].wall_us + 1;
        report.telemetry.slow.push(second);
        let doc = Json::parse(&report.to_json()).expect("parses");
        let errs = validate(&doc).expect_err("must fail");
        assert!(
            errs.iter().any(|e| e.contains("sorted by descending wall_us")),
            "{errs:?}"
        );
    }

    #[test]
    fn metrics_disabled_reports_carry_the_zero_telemetry_section() {
        let mut report = sample_report();
        report.telemetry = TelemetrySection::default();
        let doc = Json::parse(&report.to_json()).expect("parses");
        validate(&doc).expect("all-default telemetry section validates");
        assert_eq!(
            doc.get("telemetry").and_then(|t| t.get("enabled")).and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn quarantined_counts_toward_outcome_total() {
        let mut report = sample_report();
        report.outcome.crashed = 0;
        report.outcome.quarantined = 1;
        let doc = Json::parse(&report.to_json()).expect("parses");
        validate(&doc).expect("quarantined is a first-class category");
    }

    #[test]
    fn recovered_functions_are_exempt_from_coverage() {
        let mut report = sample_report();
        // A resumed row: journal-recorded wall time, no observed attempts.
        report.functions[0].recovered = true;
        report.functions[0].attempts.clear();
        report.resume = ResumeSection { enabled: true, skipped: 1, recovered: 1, corrupt: 0 };
        let doc = Json::parse(&report.to_json()).expect("parses");
        validate(&doc).expect("validates");
        check_phase_coverage(&doc, 0.10, 2_000, 5_000).expect("recovered rows are skipped");
    }

    #[test]
    fn phase_summaries_aggregate_spans() {
        let events = vec![
            TraceEvent {
                t_us: 10,
                func: Some(0),
                attempt: Some(1),
                event: Event::Span { phase: Phase::Isel, start_us: 0, dur_us: 10 },
            },
            TraceEvent {
                t_us: 30,
                func: Some(0),
                attempt: Some(1),
                event: Event::Span { phase: Phase::Isel, start_us: 15, dur_us: 15 },
            },
            TraceEvent {
                t_us: 60,
                func: Some(0),
                attempt: Some(1),
                event: Event::Span { phase: Phase::Check, start_us: 30, dur_us: 30 },
            },
        ];
        let phases = phase_summaries(&events);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].phase, Phase::Isel);
        assert_eq!(phases[0].count, 2);
        assert_eq!(phases[0].total_us, 25);
        assert_eq!(phases[1].phase, Phase::Check);
        assert_eq!(phases[1].total_us, 30);
    }
}
