//! A minimal hand-rolled JSON tree, parser, and writer.
//!
//! The workspace is dependency-free (DESIGN.md §5), so the trace sinks
//! cannot lean on `serde`. This module is the single JSON implementation
//! shared by the JSONL event stream, the aggregated `RUN_REPORT.json`
//! writer, and the report schema checker: whatever one side emits, the
//! other side must parse back, which is exactly what the round-trip tests
//! pin down.
//!
//! Numbers are stored as `f64`; the writer renders integral values without
//! a fractional part so counter fields round-trip textually. That bounds
//! exactly representable integers at 2^53 — far beyond any per-run counter
//! this pipeline produces.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (unescaped form).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved so writing is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when it is a non-negative
    /// integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes the value compactly (no whitespace).
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes the value with two-space indentation.
    pub fn write_pretty(&self, out: &mut String) {
        self.write_pretty_at(out, 0);
        out.push('\n');
    }

    fn write_pretty_at(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    v.write_pretty_at(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty_at(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax error, with its
    /// byte offset.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser { src: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes `s` as a JSON string literal, escaping quotes, backslashes, and
/// control characters (`\n`, `\r`, `\t` named; the rest as `\u00XX`).
pub fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), at: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.src.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, text: &str, v: Json) -> Result<Json, JsonError> {
        if self.src[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = &self.src[self.pos..];
                    let ch_len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..ch_len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        // Surrogate pair handling for completeness.
        if (0xd800..0xdc00).contains(&hi) {
            if self.src[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xdc00..0xe000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

/// Convenience builder: an object from `(key, value)` pairs (used by the
/// report writer and the `keq-server` wire protocol).
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience builder: an unsigned counter as a JSON number.
pub fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

pub(crate) fn opt_str(s: &Option<String>) -> Json {
    match s {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "hi"}"#;
        let v = Json::parse(doc).expect("parses");
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("hi"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1} π 🦀";
        let mut out = String::new();
        write_str(original, &mut out);
        let parsed = Json::parse(&out).expect("escaped string parses");
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_parse() {
        let v = Json::parse(r#""🦀""#).expect("parses");
        assert_eq!(v.as_str(), Some("🦀"));
    }

    #[test]
    fn integers_write_without_fraction() {
        let mut out = String::new();
        Json::Num(42.0).write_compact(&mut out);
        assert_eq!(out, "42");
        out.clear();
        Json::Num(0.5).write_compact(&mut out);
        assert_eq!(out, "0.5");
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let doc = r#"{"x": [1, {"y": "z\n"}], "w": []}"#;
        let v = Json::parse(doc).expect("parses");
        let mut pretty = String::new();
        v.write_pretty(&mut pretty);
        assert_eq!(Json::parse(&pretty).expect("pretty reparses"), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
