//! Live fleet telemetry: a metrics registry, a time-series collector, and
//! a Prometheus-text renderer.
//!
//! Three layers, mirroring the recorder design one module over:
//!
//! 1. **Registry** — a fixed vocabulary of counters, gauges, and
//!    log-bucketed histograms ([`CounterId`] / [`GaugeId`] / [`HistId`]),
//!    all plain `AtomicU64`s, so the enabled hot path is one relaxed
//!    atomic RMW with no lock and no allocation. Like tracing, a registry
//!    is *installed per thread* ([`install_metrics`]) and every probe
//!    funnels through [`counter_add`] / [`observe_us`]; when nothing is
//!    installed the probes cost one thread-local flag read and a branch —
//!    the same 0-allocation disabled-path contract the counting-allocator
//!    test pins for tracing, pinned for metrics by its own test binary.
//! 2. **Collector** — samples a registry into fixed-capacity per-metric
//!    ring buffers ([`Series`]), turning lifetime totals into
//!    rate-over-time and percentile-over-time data. Histogram quantiles
//!    are *windowed*: each sample diffs the cumulative buckets against the
//!    previous sample and computes p50/p90/p99 of just that window. The
//!    scheduler hosts one collector and samples it on its watchdog tick.
//! 3. **Exposition** — [`render_prometheus`] renders [`PromMetric`] rows
//!    as Prometheus text (`# HELP` / `# TYPE` plus samples, label values
//!    escaped per the exposition format), hand-rolled in the same
//!    std-only spirit as the JSON module; [`prom_from_registry`] covers
//!    the whole registry, and callers append extra rows (per-shard cache
//!    occupancy, the slow-obligation table) before rendering.
//!
//! Phase timing rides the existing [`span`](crate::span) probes: when
//! metrics are installed, every completed span also adds its duration to a
//! per-thread per-[`Phase`] accumulator, which the harness drains once per
//! attempt ([`take_phase_totals`]) to build the slow-obligation profile —
//! so the Lower/Blast/CDCL breakdown needs no second set of probes.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::Phase;
use crate::histogram::Histogram;
use crate::json::{self, Json};

// ---------------------------------------------------------------------------
// Metric vocabulary
// ---------------------------------------------------------------------------

/// Monotonic counters. Names follow the Prometheus `*_total` convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Validation submissions admitted by the scheduler.
    Requests,
    /// Submissions finalized (replied or abandoned-with-verdict).
    Completed,
    /// Submissions rejected because the global queue was full.
    RejectedQueueFull,
    /// Submissions rejected by a per-client quota.
    RejectedQuota,
    /// Submissions rejected because the scheduler was draining.
    RejectedDraining,
    /// Finalized submissions whose reply channel was gone.
    Disconnects,
    /// Validation attempts started (retries included).
    Attempts,
    /// Attempts beyond the first for their submission.
    Retries,
    /// CDCL conflicts, summed from per-attempt solver deltas.
    CdclConflicts,
    /// CDCL restarts, summed from per-attempt solver deltas.
    CdclRestarts,
    /// Solver queries issued.
    SolverQueries,
    /// Shared obligation-cache hits.
    ObligationCacheHits,
    /// Shared obligation-cache misses.
    ObligationCacheMisses,
    /// Verdicts stored into the shared obligation cache.
    ObligationCacheStores,
    /// Verdict-journal records appended.
    JournalAppends,
    /// Verdict-journal appends that failed.
    JournalAppendFailures,
    /// Obligation-store incremental flushes that succeeded.
    StoreFlushes,
    /// Obligation-store flushes that failed.
    StoreFlushFailures,
    /// Startable synchronization points checked (keq-core).
    SyncPoints,
    /// Proof obligations discharged or refuted (keq-core).
    Obligations,
    /// Rewrite rules fired: constant folding beyond constructor reach.
    RewriteConstFold,
    /// Rewrite rules fired: identity/absorption/annihilator laws.
    RewriteAlgebraic,
    /// Rewrite rules fired: cancellation through one level of structure.
    RewriteCancel,
    /// Rewrite rules fired: extension/extraction/concat collapsing.
    RewriteWidth,
    /// Rewrite rules fired: store-chain collapsing.
    RewriteMemory,
    /// Rewrite rules fired: ite condition/branch simplification.
    RewriteIte,
    /// Normalization passes run over obligation roots.
    RewritePasses,
    /// Term-DAG nodes eliminated by obligation normalization.
    RewriteNodesSaved,
    /// Learnt clauses exempted from DB reduction for glue (LBD <= 2).
    LbdKept,
}

impl CounterId {
    /// Every counter, in exposition order.
    pub const ALL: [CounterId; 29] = [
        CounterId::Requests,
        CounterId::Completed,
        CounterId::RejectedQueueFull,
        CounterId::RejectedQuota,
        CounterId::RejectedDraining,
        CounterId::Disconnects,
        CounterId::Attempts,
        CounterId::Retries,
        CounterId::CdclConflicts,
        CounterId::CdclRestarts,
        CounterId::SolverQueries,
        CounterId::ObligationCacheHits,
        CounterId::ObligationCacheMisses,
        CounterId::ObligationCacheStores,
        CounterId::JournalAppends,
        CounterId::JournalAppendFailures,
        CounterId::StoreFlushes,
        CounterId::StoreFlushFailures,
        CounterId::SyncPoints,
        CounterId::Obligations,
        CounterId::RewriteConstFold,
        CounterId::RewriteAlgebraic,
        CounterId::RewriteCancel,
        CounterId::RewriteWidth,
        CounterId::RewriteMemory,
        CounterId::RewriteIte,
        CounterId::RewritePasses,
        CounterId::RewriteNodesSaved,
        CounterId::LbdKept,
    ];

    /// Stable exposition name.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::Requests => "keq_requests_total",
            CounterId::Completed => "keq_requests_completed_total",
            CounterId::RejectedQueueFull => "keq_rejected_queue_full_total",
            CounterId::RejectedQuota => "keq_rejected_quota_total",
            CounterId::RejectedDraining => "keq_rejected_draining_total",
            CounterId::Disconnects => "keq_disconnects_total",
            CounterId::Attempts => "keq_attempts_total",
            CounterId::Retries => "keq_retries_total",
            CounterId::CdclConflicts => "keq_cdcl_conflicts_total",
            CounterId::CdclRestarts => "keq_cdcl_restarts_total",
            CounterId::SolverQueries => "keq_solver_queries_total",
            CounterId::ObligationCacheHits => "keq_obcache_hits_total",
            CounterId::ObligationCacheMisses => "keq_obcache_misses_total",
            CounterId::ObligationCacheStores => "keq_obcache_stores_total",
            CounterId::JournalAppends => "keq_journal_appends_total",
            CounterId::JournalAppendFailures => "keq_journal_append_failures_total",
            CounterId::StoreFlushes => "keq_store_flushes_total",
            CounterId::StoreFlushFailures => "keq_store_flush_failures_total",
            CounterId::SyncPoints => "keq_check_sync_points_total",
            CounterId::Obligations => "keq_check_obligations_total",
            CounterId::RewriteConstFold => "keq_rewrite_const_fold_total",
            CounterId::RewriteAlgebraic => "keq_rewrite_algebraic_total",
            CounterId::RewriteCancel => "keq_rewrite_cancel_total",
            CounterId::RewriteWidth => "keq_rewrite_width_total",
            CounterId::RewriteMemory => "keq_rewrite_memory_total",
            CounterId::RewriteIte => "keq_rewrite_ite_total",
            CounterId::RewritePasses => "keq_rewrite_passes_total",
            CounterId::RewriteNodesSaved => "keq_rewrite_nodes_saved_total",
            CounterId::LbdKept => "keq_sat_lbd_kept_total",
        }
    }

    /// One-line `# HELP` text.
    pub fn help(self) -> &'static str {
        match self {
            CounterId::Requests => "Validation submissions admitted by the scheduler",
            CounterId::Completed => "Submissions finalized",
            CounterId::RejectedQueueFull => "Submissions rejected: queue full",
            CounterId::RejectedQuota => "Submissions rejected: client quota",
            CounterId::RejectedDraining => "Submissions rejected: draining",
            CounterId::Disconnects => "Finalized submissions whose reply channel was gone",
            CounterId::Attempts => "Validation attempts started (retries included)",
            CounterId::Retries => "Attempts beyond the first for their submission",
            CounterId::CdclConflicts => "CDCL conflicts",
            CounterId::CdclRestarts => "CDCL restarts",
            CounterId::SolverQueries => "Solver queries issued",
            CounterId::ObligationCacheHits => "Shared obligation-cache hits",
            CounterId::ObligationCacheMisses => "Shared obligation-cache misses",
            CounterId::ObligationCacheStores => "Verdicts stored into the obligation cache",
            CounterId::JournalAppends => "Verdict-journal records appended",
            CounterId::JournalAppendFailures => "Verdict-journal appends that failed",
            CounterId::StoreFlushes => "Obligation-store flushes that succeeded",
            CounterId::StoreFlushFailures => "Obligation-store flushes that failed",
            CounterId::SyncPoints => "Startable synchronization points checked",
            CounterId::Obligations => "Proof obligations discharged or refuted",
            CounterId::RewriteConstFold => "Rewrite rules fired: constant folding",
            CounterId::RewriteAlgebraic => "Rewrite rules fired: algebraic laws",
            CounterId::RewriteCancel => "Rewrite rules fired: cancellation",
            CounterId::RewriteWidth => "Rewrite rules fired: width collapsing",
            CounterId::RewriteMemory => "Rewrite rules fired: store collapsing",
            CounterId::RewriteIte => "Rewrite rules fired: ite simplification",
            CounterId::RewritePasses => "Obligation normalization passes run",
            CounterId::RewriteNodesSaved => "Term-DAG nodes eliminated by normalization",
            CounterId::LbdKept => "Learnt clauses kept through DB reduction for glue",
        }
    }
}

/// Point-in-time gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// Admitted-but-unfinished submissions.
    QueueDepth,
    /// Workers currently running an attempt.
    WorkersBusy,
    /// Workers currently idle.
    WorkersIdle,
    /// 1 when the store breaker has degraded persistence to memory-only.
    StoreDegraded,
    /// Live shared obligation-cache entries.
    ObcacheEntries,
    /// Approximate shared obligation-cache bytes.
    ObcacheBytes,
}

impl GaugeId {
    /// Every gauge, in exposition order.
    pub const ALL: [GaugeId; 6] = [
        GaugeId::QueueDepth,
        GaugeId::WorkersBusy,
        GaugeId::WorkersIdle,
        GaugeId::StoreDegraded,
        GaugeId::ObcacheEntries,
        GaugeId::ObcacheBytes,
    ];

    /// Stable exposition name.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::QueueDepth => "keq_queue_depth",
            GaugeId::WorkersBusy => "keq_workers_busy",
            GaugeId::WorkersIdle => "keq_workers_idle",
            GaugeId::StoreDegraded => "keq_store_degraded",
            GaugeId::ObcacheEntries => "keq_obcache_entries",
            GaugeId::ObcacheBytes => "keq_obcache_bytes",
        }
    }

    /// One-line `# HELP` text.
    pub fn help(self) -> &'static str {
        match self {
            GaugeId::QueueDepth => "Admitted-but-unfinished submissions",
            GaugeId::WorkersBusy => "Workers currently running an attempt",
            GaugeId::WorkersIdle => "Workers currently idle",
            GaugeId::StoreDegraded => "1 when store persistence degraded to memory-only",
            GaugeId::ObcacheEntries => "Live shared obligation-cache entries",
            GaugeId::ObcacheBytes => "Approximate shared obligation-cache bytes",
        }
    }
}

/// Log-bucketed histograms (same powers-of-4 µs buckets as
/// [`Histogram::log_us`], so registry snapshots merge with the rest of the
/// pipeline's latency accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistId {
    /// End-to-end request latency (queue wait included), µs.
    RequestLatencyUs,
    /// Single validation-attempt wall time, µs.
    AttemptWallUs,
}

impl HistId {
    /// Every histogram, in exposition order.
    pub const ALL: [HistId; 2] = [HistId::RequestLatencyUs, HistId::AttemptWallUs];

    /// Stable exposition name.
    pub fn name(self) -> &'static str {
        match self {
            HistId::RequestLatencyUs => "keq_request_latency_us",
            HistId::AttemptWallUs => "keq_attempt_wall_us",
        }
    }

    /// One-line `# HELP` text.
    pub fn help(self) -> &'static str {
        match self {
            HistId::RequestLatencyUs => "End-to-end request latency in microseconds",
            HistId::AttemptWallUs => "Validation attempt wall time in microseconds",
        }
    }
}

// ---------------------------------------------------------------------------
// Atomic histogram
// ---------------------------------------------------------------------------

/// Powers-of-4 µs bucket upper bounds, matching [`Histogram::log_us`].
const BOUNDS: [u64; 13] = [
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
];
/// Bucket count including the overflow bucket.
const BUCKETS: usize = BOUNDS.len() + 1;

/// A histogram whose buckets are independent atomics, so concurrent
/// workers record without a lock. Bucket shape matches
/// [`Histogram::log_us`] exactly; [`AtomicHistogram::snapshot`] converts
/// back for quantile math and merging.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
}

impl AtomicHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        AtomicHistogram { counts: [const { AtomicU64::new(0) }; BUCKETS] }
    }

    /// Records one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = BOUNDS.iter().position(|&b| us <= b).unwrap_or(BUCKETS - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy as the shared [`Histogram`] type.
    pub fn snapshot(&self, label: &'static str) -> Histogram {
        let mut h = Histogram::log_us(label);
        for (i, c) in self.counts.iter().enumerate() {
            h.counts[i] = usize::try_from(c.load(Ordering::Relaxed)).unwrap_or(usize::MAX);
        }
        h
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The metric registry: one atomic slot per [`CounterId`] / [`GaugeId`] /
/// [`HistId`]. One registry belongs to one scheduler (never a process
/// global, so parallel tests and back-to-back benches cannot bleed into
/// each other); worker threads reach it through [`install_metrics`], the
/// supervisor and server front end through their `Arc`.
#[derive(Debug)]
pub struct Registry {
    counters: [AtomicU64; CounterId::ALL.len()],
    gauges: [AtomicU64; GaugeId::ALL.len()],
    hists: [AtomicHistogram; HistId::ALL.len()],
}

impl Registry {
    /// A zeroed registry.
    pub fn new() -> Self {
        Registry {
            counters: [const { AtomicU64::new(0) }; CounterId::ALL.len()],
            gauges: [const { AtomicU64::new(0) }; GaugeId::ALL.len()],
            hists: [const { AtomicHistogram::new() }; HistId::ALL.len()],
        }
    }

    /// Adds `n` to a counter.
    pub fn counter_add(&self, id: CounterId, n: u64) {
        if n > 0 {
            self.counters[id as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current counter value.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, id: GaugeId, v: u64) {
        self.gauges[id as usize].store(v, Ordering::Relaxed);
    }

    /// Current gauge value.
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id as usize].load(Ordering::Relaxed)
    }

    /// Records one histogram observation.
    pub fn observe_us(&self, id: HistId, us: u64) {
        self.hists[id as usize].observe_us(us);
    }

    /// A point-in-time [`Histogram`] copy (labelled with the metric name).
    pub fn histogram(&self, id: HistId) -> Histogram {
        self.hists[id as usize].snapshot(id.name())
    }

    /// Zeroes every metric (a fresh scheduler lifetime).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
        for h in &self.hists {
            h.reset();
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

// ---------------------------------------------------------------------------
// Per-thread installation (mirrors the recorder)
// ---------------------------------------------------------------------------

thread_local! {
    /// Fast-path flag mirroring `M_ACTIVE.is_some()`; the only thing probe
    /// sites touch when metrics are disabled.
    static M_ENABLED: Cell<bool> = const { Cell::new(false) };
    static M_ACTIVE: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
    /// Per-phase µs accumulated by completed spans since the last
    /// [`take_phase_totals`]; drained once per validation attempt.
    static PHASE_ACC: Cell<[u64; Phase::ALL.len()]> =
        const { Cell::new([0; Phase::ALL.len()]) };
}

/// Installs `registry` as this thread's metric sink, returning a guard
/// that restores the previous state on drop (including across panics, so
/// a crashed worker attempt cannot leak its registry onto the next job).
#[must_use]
pub fn install_metrics(registry: &Arc<Registry>) -> MetricsGuard {
    let prev = M_ACTIVE.with(|a| a.borrow_mut().replace(Arc::clone(registry)));
    let prev_enabled = M_ENABLED.with(|e| e.replace(true));
    MetricsGuard { prev, prev_enabled }
}

/// Restores the previous metric sink on drop.
pub struct MetricsGuard {
    prev: Option<Arc<Registry>>,
    prev_enabled: bool,
}

impl Drop for MetricsGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        M_ACTIVE.with(|a| *a.borrow_mut() = prev);
        M_ENABLED.with(|e| e.set(self.prev_enabled));
    }
}

/// Whether a registry is installed on this thread — the ~1-branch
/// disabled-path check every metric probe performs first.
#[inline]
pub fn metrics_enabled() -> bool {
    M_ENABLED.with(Cell::get)
}

/// Adds `n` to `id` on this thread's registry; one flag read when metrics
/// are disabled.
#[inline]
pub fn counter_add(id: CounterId, n: u64) {
    if !metrics_enabled() {
        return;
    }
    counter_add_slow(id, n);
}

#[cold]
fn counter_add_slow(id: CounterId, n: u64) {
    M_ACTIVE.with(|a| {
        if let Some(reg) = a.borrow().as_ref() {
            reg.counter_add(id, n);
        }
    });
}

/// Records a histogram observation on this thread's registry; one flag
/// read when metrics are disabled.
#[inline]
pub fn observe_us(id: HistId, us: u64) {
    if !metrics_enabled() {
        return;
    }
    observe_us_slow(id, us);
}

#[cold]
fn observe_us_slow(id: HistId, us: u64) {
    M_ACTIVE.with(|a| {
        if let Some(reg) = a.borrow().as_ref() {
            reg.observe_us(id, us);
        }
    });
}

/// Whether spans should read the clock for the per-phase accumulator even
/// without a trace recorder installed.
#[inline]
pub(crate) fn phase_timing_enabled() -> bool {
    metrics_enabled()
}

/// Adds a completed span's duration to this thread's per-phase
/// accumulator. Called by the span guard, never directly.
pub(crate) fn record_phase(phase: Phase, dur_us: u64) {
    PHASE_ACC.with(|c| {
        let mut acc = c.get();
        acc[phase as usize] = acc[phase as usize].saturating_add(dur_us);
        c.set(acc);
    });
}

/// Drains this thread's per-phase µs accumulator (one slot per
/// [`Phase::ALL`] entry, indexed by discriminant). The harness calls this
/// around each validation attempt to attribute phase time to it.
pub fn take_phase_totals() -> [u64; Phase::ALL.len()] {
    PHASE_ACC.with(|c| c.replace([0; Phase::ALL.len()]))
}

// ---------------------------------------------------------------------------
// Time-series collector
// ---------------------------------------------------------------------------

/// A fixed-capacity time series: `(t_ms, value)` points, oldest dropped
/// beyond capacity.
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    cap: usize,
    points: VecDeque<(u64, f64)>,
}

impl Series {
    /// An empty series holding at most `cap` points.
    pub fn new(name: impl Into<String>, cap: usize) -> Self {
        Series { name: name.into(), cap: cap.max(2), points: VecDeque::new() }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point, dropping the oldest beyond capacity.
    pub fn push(&mut self, t_ms: u64, value: f64) {
        if self.points.len() == self.cap {
            self.points.pop_front();
        }
        self.points.push_back((t_ms, value));
    }

    /// The retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The most recent point.
    pub fn latest(&self) -> Option<(u64, f64)> {
        self.points.back().copied()
    }

    /// `{"name": ..., "points": [[t_ms, v], ...]}`.
    pub fn to_json(&self) -> Json {
        json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            (
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|&(t, v)| Json::Arr(vec![json::num(t), Json::Num(v)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Average per-second rate of a cumulative series over the trailing
    /// `window_ms` (clamped to the points actually retained).
    pub fn rate_per_sec(&self, window_ms: u64) -> f64 {
        let Some(&(t1, v1)) = self.points.back() else { return 0.0 };
        let cutoff = t1.saturating_sub(window_ms);
        let Some(&(t0, v0)) = self
            .points
            .iter()
            .find(|&&(t, _)| t >= cutoff)
            .filter(|&&(t, _)| t < t1)
        else {
            return 0.0;
        };
        (v1 - v0).max(0.0) * 1000.0 / (t1 - t0) as f64
    }
}

/// Samples a [`Registry`] into per-metric ring buffers: cumulative series
/// for counters, instantaneous for gauges, and *windowed* p50/p90/p99
/// series per histogram (quantiles of the observations between two
/// consecutive samples; an empty window carries the previous value
/// forward so the series never gaps).
#[derive(Debug)]
pub struct Collector {
    samples: u64,
    counter_series: Vec<Series>,
    gauge_series: Vec<Series>,
    quantile_series: Vec<[Series; 3]>,
    last_hist: Vec<Histogram>,
    last_quantiles: Vec<[f64; 3]>,
}

/// The quantile suffixes of a histogram's derived series, in
/// [`Collector::quantiles`] order.
pub const QUANTILE_SUFFIXES: [&str; 3] = ["p50", "p90", "p99"];

impl Collector {
    /// A collector retaining `cap` points per series.
    pub fn new(cap: usize) -> Self {
        Collector {
            samples: 0,
            counter_series: CounterId::ALL
                .iter()
                .map(|c| Series::new(c.name(), cap))
                .collect(),
            gauge_series: GaugeId::ALL.iter().map(|g| Series::new(g.name(), cap)).collect(),
            quantile_series: HistId::ALL
                .iter()
                .map(|h| {
                    QUANTILE_SUFFIXES
                        .map(|q| Series::new(format!("{}_{q}", h.name()), cap))
                })
                .collect(),
            last_hist: HistId::ALL.iter().map(|h| Histogram::log_us(h.name())).collect(),
            last_quantiles: vec![[0.0; 3]; HistId::ALL.len()],
        }
    }

    /// Takes one sample of `reg` at `t_ms` (milliseconds since the
    /// collector's owner started).
    pub fn sample(&mut self, reg: &Registry, t_ms: u64) {
        self.samples += 1;
        for (i, id) in CounterId::ALL.iter().enumerate() {
            self.counter_series[i].push(t_ms, reg.counter(*id) as f64);
        }
        for (i, id) in GaugeId::ALL.iter().enumerate() {
            self.gauge_series[i].push(t_ms, reg.gauge(*id) as f64);
        }
        for (i, id) in HistId::ALL.iter().enumerate() {
            let cur = reg.histogram(*id);
            let mut window = cur.clone();
            for (w, prev) in window.counts.iter_mut().zip(&self.last_hist[i].counts) {
                *w = w.saturating_sub(*prev);
            }
            if window.total() > 0 {
                self.last_quantiles[i] = [
                    window.p50().unwrap_or(0.0),
                    window.p90().unwrap_or(0.0),
                    window.p99().unwrap_or(0.0),
                ];
            }
            let qs = self.last_quantiles[i];
            for (s, q) in self.quantile_series[i].iter_mut().zip(qs) {
                s.push(t_ms, q);
            }
            self.last_hist[i] = cur;
        }
    }

    /// Samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The cumulative series of one counter.
    pub fn counter(&self, id: CounterId) -> &Series {
        &self.counter_series[id as usize]
    }

    /// The series of one gauge.
    pub fn gauge(&self, id: GaugeId) -> &Series {
        &self.gauge_series[id as usize]
    }

    /// The windowed `[p50, p90, p99]` series of one histogram.
    pub fn quantiles(&self, id: HistId) -> &[Series; 3] {
        &self.quantile_series[id as usize]
    }

    /// Every series, for exposition.
    pub fn all_series(&self) -> impl Iterator<Item = &Series> {
        self.counter_series
            .iter()
            .chain(&self.gauge_series)
            .chain(self.quantile_series.iter().flatten())
    }

    /// The full series set as a JSON array.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.all_series().map(Series::to_json).collect())
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Prometheus metric type for the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

impl PromKind {
    fn name(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Histogram => "histogram",
        }
    }
}

/// One sample line of a [`PromMetric`]: rendered as
/// `name<suffix>{labels} value`.
#[derive(Debug, Clone)]
pub struct PromSample {
    /// Appended to the metric name (`"_bucket"`, `"_count"`, or `""`).
    pub suffix: &'static str,
    /// Label pairs; values are escaped by the renderer.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl PromSample {
    /// An unlabelled plain sample.
    pub fn plain(value: f64) -> Self {
        PromSample { suffix: "", labels: Vec::new(), value }
    }
}

/// One metric family: a `# HELP` line, a `# TYPE` line, and its samples.
#[derive(Debug, Clone)]
pub struct PromMetric {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Help text; the renderer escapes backslashes and newlines.
    pub help: String,
    /// Metric type.
    pub kind: PromKind,
    /// Sample lines.
    pub samples: Vec<PromSample>,
}

/// Escapes a `# HELP` payload (`\` and newline, per the exposition
/// format).
fn escape_help(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escapes a label value (`\`, `"`, and newline).
fn escape_label_value(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn write_prom_value(v: f64, out: &mut String) {
    if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Renders metric families as Prometheus text exposition format. Output is
/// deterministic in the input order, so the golden test can pin it byte
/// for byte.
pub fn render_prometheus(metrics: &[PromMetric]) -> String {
    let mut out = String::new();
    for m in metrics {
        out.push_str("# HELP ");
        out.push_str(&m.name);
        out.push(' ');
        escape_help(&m.help, &mut out);
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&m.name);
        out.push(' ');
        out.push_str(m.kind.name());
        out.push('\n');
        for s in &m.samples {
            out.push_str(&m.name);
            out.push_str(s.suffix);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    escape_label_value(v, &mut out);
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            write_prom_value(s.value, &mut out);
            out.push('\n');
        }
    }
    out
}

/// A histogram as one Prometheus family: cumulative `_bucket{le=...}`
/// samples (including `le="+Inf"`) plus `_count`.
pub fn prom_histogram(name: &str, help: &str, hist: &Histogram) -> PromMetric {
    let mut samples = Vec::with_capacity(hist.bounds.len() + 2);
    let mut running = 0u64;
    for (i, bound) in hist.bounds.iter().enumerate() {
        running += hist.counts.get(i).copied().unwrap_or(0) as u64;
        let mut le = String::new();
        write_prom_value(*bound, &mut le);
        samples.push(PromSample {
            suffix: "_bucket",
            labels: vec![("le".to_string(), le)],
            value: running as f64,
        });
    }
    let total = hist.total() as u64;
    samples.push(PromSample {
        suffix: "_bucket",
        labels: vec![("le".to_string(), "+Inf".to_string())],
        value: total as f64,
    });
    samples.push(PromSample { suffix: "_count", labels: Vec::new(), value: total as f64 });
    PromMetric {
        name: name.to_string(),
        help: help.to_string(),
        kind: PromKind::Histogram,
        samples,
    }
}

/// The whole registry as Prometheus families, in vocabulary order.
pub fn prom_from_registry(reg: &Registry) -> Vec<PromMetric> {
    let mut out = Vec::with_capacity(CounterId::ALL.len() + GaugeId::ALL.len() + 2);
    for id in CounterId::ALL {
        out.push(PromMetric {
            name: id.name().to_string(),
            help: id.help().to_string(),
            kind: PromKind::Counter,
            samples: vec![PromSample::plain(reg.counter(id) as f64)],
        });
    }
    for id in GaugeId::ALL {
        out.push(PromMetric {
            name: id.name().to_string(),
            help: id.help().to_string(),
            kind: PromKind::Gauge,
            samples: vec![PromSample::plain(reg.gauge(id) as f64)],
        });
    }
    for id in HistId::ALL {
        out.push(prom_histogram(id.name(), id.help(), &reg.histogram(id)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_buckets_match_histogram_add() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::log_us("ref");
        for us in [0u64, 1, 2, 4, 5, 100, 1_000, 70_000, 20_000_000] {
            ah.observe_us(us);
            h.add(us as f64);
        }
        let snap = ah.snapshot("snap");
        assert_eq!(snap.counts, h.counts, "atomic buckets must mirror Histogram::add");
        assert_eq!(snap.p50(), h.p50());
        assert_eq!(snap.p99(), h.p99());
    }

    #[test]
    fn registry_counts_and_resets() {
        let reg = Registry::new();
        reg.counter_add(CounterId::Requests, 3);
        reg.counter_add(CounterId::Requests, 2);
        reg.gauge_set(GaugeId::QueueDepth, 7);
        reg.observe_us(HistId::RequestLatencyUs, 500);
        assert_eq!(reg.counter(CounterId::Requests), 5);
        assert_eq!(reg.gauge(GaugeId::QueueDepth), 7);
        assert_eq!(reg.histogram(HistId::RequestLatencyUs).total(), 1);
        reg.reset();
        assert_eq!(reg.counter(CounterId::Requests), 0);
        assert_eq!(reg.gauge(GaugeId::QueueDepth), 0);
        assert_eq!(reg.histogram(HistId::RequestLatencyUs).total(), 0);
    }

    #[test]
    fn disabled_probes_do_nothing_and_guard_restores() {
        assert!(!metrics_enabled());
        counter_add(CounterId::Requests, 1);
        observe_us(HistId::RequestLatencyUs, 10);
        let reg = Arc::new(Registry::new());
        {
            let _g = install_metrics(&reg);
            assert!(metrics_enabled());
            counter_add(CounterId::Requests, 2);
            observe_us(HistId::RequestLatencyUs, 10);
        }
        assert!(!metrics_enabled(), "guard must disable metrics again");
        counter_add(CounterId::Requests, 100);
        assert_eq!(reg.counter(CounterId::Requests), 2);
        assert_eq!(reg.histogram(HistId::RequestLatencyUs).total(), 1);
    }

    #[test]
    fn phase_accumulator_drains_per_attempt() {
        let reg = Arc::new(Registry::new());
        let _g = install_metrics(&reg);
        let _ = take_phase_totals();
        record_phase(Phase::Cdcl, 40);
        record_phase(Phase::Cdcl, 2);
        record_phase(Phase::Lower, 7);
        let totals = take_phase_totals();
        assert_eq!(totals[Phase::Cdcl as usize], 42);
        assert_eq!(totals[Phase::Lower as usize], 7);
        assert!(take_phase_totals().iter().all(|&v| v == 0), "drained");
    }

    #[test]
    fn series_ring_drops_oldest_and_rates() {
        let mut s = Series::new("keq_requests_total", 3);
        for (t, v) in [(0u64, 0.0), (1000, 10.0), (2000, 20.0), (3000, 40.0)] {
            s.push(t, v);
        }
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1000, 10.0));
        // 30 requests over the 2 retained seconds.
        assert!((s.rate_per_sec(10_000) - 15.0).abs() < 1e-9);
        // Trailing 1s window: 20 req/s.
        assert!((s.rate_per_sec(1_000) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn collector_windows_quantiles_and_carries_empty_windows() {
        let reg = Registry::new();
        let mut col = Collector::new(16);
        for _ in 0..100 {
            reg.observe_us(HistId::RequestLatencyUs, 100);
        }
        col.sample(&reg, 0);
        let p50 = col.quantiles(HistId::RequestLatencyUs)[0].latest().unwrap().1;
        assert!(p50 > 0.0, "first window has observations");
        // Second window: much slower observations dominate the *window*
        // quantile even though the lifetime histogram is mostly fast.
        for _ in 0..10 {
            reg.observe_us(HistId::RequestLatencyUs, 1_000_000);
        }
        col.sample(&reg, 250);
        let p50_slow = col.quantiles(HistId::RequestLatencyUs)[0].latest().unwrap().1;
        assert!(
            p50_slow > 100_000.0,
            "windowed p50 must reflect only the new observations, got {p50_slow}"
        );
        // Empty window: carry the previous value, never gap to zero.
        col.sample(&reg, 500);
        let p50_carry = col.quantiles(HistId::RequestLatencyUs)[0].latest().unwrap().1;
        assert_eq!(p50_carry, p50_slow);
        assert_eq!(col.samples(), 3);
    }

    #[test]
    fn prometheus_rendering_escapes_and_shapes() {
        let mut h = Histogram::log_us("lat");
        h.add(3.0);
        h.add(1e9);
        let metrics = vec![
            PromMetric {
                name: "keq_requests_total".to_string(),
                help: "Back\\slash and\nnewline".to_string(),
                kind: PromKind::Counter,
                samples: vec![PromSample::plain(42.0)],
            },
            PromMetric {
                name: "keq_slow_obligation_wall_us".to_string(),
                help: "slow table".to_string(),
                kind: PromKind::Gauge,
                samples: vec![PromSample {
                    suffix: "",
                    labels: vec![
                        ("fp".to_string(), "0xdead".to_string()),
                        ("result".to_string(), "quote\" back\\ nl\n".to_string()),
                    ],
                    value: 1.5,
                }],
            },
            prom_histogram("keq_request_latency_us", "lat", &h),
        ];
        let text = render_prometheus(&metrics);
        assert!(text.contains("# HELP keq_requests_total Back\\\\slash and\\nnewline\n"));
        assert!(text.contains("# TYPE keq_requests_total counter\n"));
        assert!(text.contains("keq_requests_total 42\n"));
        assert!(text.contains(
            "keq_slow_obligation_wall_us{fp=\"0xdead\",result=\"quote\\\" back\\\\ nl\\n\"} 1.5\n"
        ));
        assert!(text.contains("keq_request_latency_us_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("keq_request_latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("keq_request_latency_us_count 2\n"));
        // Every non-comment line is `name{...} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(!name.is_empty());
            assert!(value == "+Inf" || value.parse::<f64>().is_ok(), "bad value {value:?}");
        }
    }

    #[test]
    fn registry_exposition_covers_the_whole_vocabulary() {
        let reg = Registry::new();
        reg.counter_add(CounterId::CdclRestarts, 9);
        let text = render_prometheus(&prom_from_registry(&reg));
        for id in CounterId::ALL {
            assert!(text.contains(id.name()), "missing counter {}", id.name());
        }
        for id in GaugeId::ALL {
            assert!(text.contains(id.name()), "missing gauge {}", id.name());
        }
        for id in HistId::ALL {
            assert!(text.contains(&format!("{}_count", id.name())), "missing {}", id.name());
        }
        assert!(text.contains("keq_cdcl_restarts_total 9\n"));
    }
}
