//! Fixed-bucket histograms: the Fig. 7 text plots and the report's
//! log-bucketed latency distributions.
//!
//! (Moved here from `keq-bench` so the bench targets and the run report
//! share one histogram type; `keq-bench` re-exports it.)

/// A fixed-bucket histogram rendered as rows of `#` bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Counts per bucket (one more than `bounds` for the overflow bucket).
    pub counts: Vec<usize>,
    label: String,
}

impl Histogram {
    /// Creates a histogram with the given bucket upper bounds.
    pub fn new(label: impl Into<String>, bounds: Vec<f64>) -> Self {
        let counts = vec![0; bounds.len() + 1];
        Histogram { bounds, counts, label: label.into() }
    }

    /// A log-bucketed latency histogram over microseconds: powers of four
    /// from 1 µs to ~17 s (`4^0 .. 4^12`), the report's span-time shape.
    pub fn log_us(label: impl Into<String>) -> Self {
        let bounds = (0..=12).map(|i| 4f64.powi(i)).collect();
        Histogram::new(label, bounds)
    }

    /// The label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Renders the histogram.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let _ = writeln!(s, "{}:", self.label);
        let mut lo = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let label = if i < self.bounds.len() {
                format!("{:>9.2}..{:<9.2}", lo, self.bounds[i])
            } else {
                format!("{:>9.2}..{:<9}", lo, "inf")
            };
            let bar = "#".repeat(c * 50 / max);
            let _ = writeln!(s, "  {label} | {bar} {c}");
            if i < self.bounds.len() {
                lo = self.bounds[i];
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_fill_correctly() {
        let mut h = Histogram::new("t", vec![1.0, 10.0]);
        h.add(0.5);
        h.add(5.0);
        h.add(50.0);
        h.add(0.9);
        assert_eq!(h.counts, vec![2, 1, 1]);
        let r = h.render();
        assert!(r.contains("t:"));
    }

    #[test]
    fn log_buckets_cover_micro_to_seconds() {
        let mut h = Histogram::log_us("lat");
        h.add(0.5); // sub-µs
        h.add(100.0); // 100 µs
        h.add(5_000_000.0); // 5 s
        h.add(1e12); // overflow
        assert_eq!(h.total(), 4);
        assert_eq!(*h.counts.last().expect("overflow bucket"), 1);
    }
}
