//! Fixed-bucket histograms: the Fig. 7 text plots and the report's
//! log-bucketed latency distributions.
//!
//! (Moved here from `keq-bench` so the bench targets and the run report
//! share one histogram type; `keq-bench` re-exports it.)

/// A fixed-bucket histogram rendered as rows of `#` bars.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Counts per bucket (one more than `bounds` for the overflow bucket).
    pub counts: Vec<usize>,
    label: String,
}

impl Histogram {
    /// Creates a histogram with the given bucket upper bounds.
    pub fn new(label: impl Into<String>, bounds: Vec<f64>) -> Self {
        let counts = vec![0; bounds.len() + 1];
        Histogram { bounds, counts, label: label.into() }
    }

    /// A log-bucketed latency histogram over microseconds: powers of four
    /// from 1 µs to ~17 s (`4^0 .. 4^12`), the report's span-time shape.
    pub fn log_us(label: impl Into<String>) -> Self {
        let bounds = (0..=12).map(|i| 4f64.powi(i)).collect();
        Histogram::new(label, bounds)
    }

    /// The label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Adds every bucket of `other` into `self` (per-connection tallies →
    /// one distribution).
    ///
    /// # Panics
    ///
    /// Panics when the bucket bounds differ — merging histograms of
    /// different shapes has no meaningful result.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "merging histograms of different shapes");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) estimated from the buckets:
    /// rank-based, linearly interpolated within the bucket that holds the
    /// rank. Samples in the overflow bucket clamp to the last bound (the
    /// histogram cannot see past it). `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 || self.bounds.is_empty() {
            return None;
        }
        // 1-based rank of the sample that answers the quantile.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as usize).clamp(1, total);
        let mut seen = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let Some(&hi) = self.bounds.get(i) else {
                    // Overflow bucket: unbounded above, clamp to the edge.
                    return self.bounds.last().copied();
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let within = (rank - seen) as f64 / c as f64;
                return Some(lo + (hi - lo) * within);
            }
            seen += c;
        }
        self.bounds.last().copied()
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Renders the histogram.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let _ = writeln!(s, "{}:", self.label);
        let mut lo = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let label = if i < self.bounds.len() {
                format!("{:>9.2}..{:<9.2}", lo, self.bounds[i])
            } else {
                format!("{:>9.2}..{:<9}", lo, "inf")
            };
            let bar = "#".repeat(c * 50 / max);
            let _ = writeln!(s, "  {label} | {bar} {c}");
            if i < self.bounds.len() {
                lo = self.bounds[i];
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_fill_correctly() {
        let mut h = Histogram::new("t", vec![1.0, 10.0]);
        h.add(0.5);
        h.add(5.0);
        h.add(50.0);
        h.add(0.9);
        assert_eq!(h.counts, vec![2, 1, 1]);
        let r = h.render();
        assert!(r.contains("t:"));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new("q", vec![10.0, 20.0, 40.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for _ in 0..8 {
            h.add(5.0); // bucket 0..10
        }
        h.add(15.0); // bucket 10..20
        h.add(30.0); // bucket 20..40
        // Rank 5 of 10 lands mid-bucket-0: 0 + 10 * (5/8).
        assert_eq!(h.p50(), Some(6.25));
        // Rank 9 is the single sample of bucket 1: 10 + 10 * (1/1).
        assert_eq!(h.p90(), Some(20.0));
        // Rank 10 is the single sample of bucket 2.
        assert_eq!(h.p99(), Some(40.0));
        assert_eq!(h.quantile(0.0), Some(1.25), "rank clamps to the first sample");
        assert_eq!(h.quantile(1.0), Some(40.0));
    }

    #[test]
    fn overflow_samples_clamp_to_the_last_bound() {
        let mut h = Histogram::new("o", vec![1.0, 2.0]);
        h.add(0.5);
        h.add(1e9);
        h.add(2e9);
        assert_eq!(h.p99(), Some(2.0), "overflow clamps to the histogram's edge");
        // All-overflow histograms still answer with the edge.
        let mut all_over = Histogram::new("o2", vec![1.0]);
        all_over.add(7.0);
        assert_eq!(all_over.p50(), Some(1.0));
    }

    #[test]
    fn log_bucket_quantiles_are_monotone() {
        let mut h = Histogram::log_us("lat");
        for i in 0..1000 {
            h.add(f64::from(i));
        }
        let (p50, p90, p99) = (h.p50().unwrap(), h.p90().unwrap(), h.p99().unwrap());
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p50 > 256.0 && p99 <= 1024.0, "{p50} {p99}");
    }

    #[test]
    fn merge_adds_per_bucket() {
        let mut a = Histogram::new("a", vec![1.0, 10.0]);
        let mut b = Histogram::new("b", vec![1.0, 10.0]);
        a.add(0.5);
        b.add(5.0);
        b.add(50.0);
        a.merge(&b);
        assert_eq!(a.counts, vec![1, 1, 1]);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn log_buckets_cover_micro_to_seconds() {
        let mut h = Histogram::log_us("lat");
        h.add(0.5); // sub-µs
        h.add(100.0); // 100 µs
        h.add(5_000_000.0); // 5 s
        h.add(1e12); // overflow
        assert_eq!(h.total(), 4);
        assert_eq!(*h.counts.last().expect("overflow bucket"), 1);
    }
}
