//! Flattening IMP to an internal CFG and compiling it to the stack machine.

use crate::ast::{Expr, ImpProgram, Stmt};

/// Flat IMP operations (one per control location).
#[derive(Debug, Clone, PartialEq)]
pub enum ImpOp {
    /// `x := e; goto next`.
    Assign(String, Expr),
    /// `if e != 0 goto then else goto els`.
    Branch(Expr, usize, usize),
    /// `goto target`.
    Jump(usize),
    /// Return `e`.
    Ret(Expr),
}

/// Flattened IMP program.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpFlat {
    /// Operations; control locations are indices.
    pub ops: Vec<ImpOp>,
    /// Loop-head locations, in AST order.
    pub loop_heads: Vec<usize>,
    /// All variables.
    pub vars: Vec<String>,
    /// Input variables.
    pub inputs: Vec<String>,
}

/// Stack-machine instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackOp {
    /// Push a constant.
    Push(i32),
    /// Push a variable's value.
    Load(String),
    /// Pop into a variable.
    Store(String),
    /// Pop two, push sum.
    Add,
    /// Pop two, push difference.
    Sub,
    /// Pop two, push product.
    Mul,
    /// Pop two, push unsigned less-than (0/1).
    Lt,
    /// Pop; jump if zero.
    Jz(usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Pop and return the top of stack.
    Ret,
}

/// A compiled stack-machine function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackFn {
    /// Instructions; control locations are indices.
    pub ops: Vec<StackOp>,
    /// Loop-head locations, in AST order (pairs with
    /// [`ImpFlat::loop_heads`]).
    pub loop_heads: Vec<usize>,
    /// All variables.
    pub vars: Vec<String>,
    /// Stack depth before each instruction.
    pub depth: Vec<u32>,
}

/// Flattens an IMP program to its CFG form.
pub fn flatten(p: &ImpProgram) -> ImpFlat {
    let mut ops = Vec::new();
    let mut loop_heads = Vec::new();
    flatten_stmts(&p.body, &mut ops, &mut loop_heads);
    ops.push(ImpOp::Ret(p.result.clone()));
    ImpFlat { ops, loop_heads, vars: p.all_vars(), inputs: p.inputs.clone() }
}

fn flatten_stmts(stmts: &[Stmt], ops: &mut Vec<ImpOp>, heads: &mut Vec<usize>) {
    for s in stmts {
        match s {
            Stmt::Assign(x, e) => ops.push(ImpOp::Assign(x.clone(), e.clone())),
            Stmt::If(c, t, f) => {
                let branch_at = ops.len();
                ops.push(ImpOp::Jump(0)); // placeholder
                flatten_stmts(t, ops, heads);
                let jump_end_at = ops.len();
                ops.push(ImpOp::Jump(0)); // placeholder
                let else_start = ops.len();
                flatten_stmts(f, ops, heads);
                let end = ops.len();
                ops[branch_at] = ImpOp::Branch(c.clone(), branch_at + 1, else_start);
                ops[jump_end_at] = ImpOp::Jump(end);
            }
            Stmt::While(c, body) => {
                let head = ops.len();
                heads.push(head);
                ops.push(ImpOp::Jump(0)); // placeholder branch
                flatten_stmts(body, ops, heads);
                ops.push(ImpOp::Jump(head));
                let after = ops.len();
                ops[head] = ImpOp::Branch(c.clone(), head + 1, after);
            }
        }
    }
}

/// Compiles an IMP program to the stack machine.
pub fn compile(p: &ImpProgram) -> StackFn {
    let mut ops = Vec::new();
    let mut heads = Vec::new();
    compile_stmts(&p.body, &mut ops, &mut heads);
    compile_expr(&p.result, &mut ops);
    ops.push(StackOp::Ret);
    let depth = compute_depths(&ops);
    StackFn { ops, loop_heads: heads, vars: p.all_vars(), depth }
}

fn compile_expr(e: &Expr, ops: &mut Vec<StackOp>) {
    match e {
        Expr::Var(v) => ops.push(StackOp::Load(v.clone())),
        Expr::Const(c) => ops.push(StackOp::Push(*c)),
        Expr::Add(a, b) => {
            compile_expr(a, ops);
            compile_expr(b, ops);
            ops.push(StackOp::Add);
        }
        Expr::Sub(a, b) => {
            compile_expr(a, ops);
            compile_expr(b, ops);
            ops.push(StackOp::Sub);
        }
        Expr::Mul(a, b) => {
            compile_expr(a, ops);
            compile_expr(b, ops);
            ops.push(StackOp::Mul);
        }
        Expr::Lt(a, b) => {
            compile_expr(a, ops);
            compile_expr(b, ops);
            ops.push(StackOp::Lt);
        }
    }
}

fn compile_stmts(stmts: &[Stmt], ops: &mut Vec<StackOp>, heads: &mut Vec<usize>) {
    for s in stmts {
        match s {
            Stmt::Assign(x, e) => {
                compile_expr(e, ops);
                ops.push(StackOp::Store(x.clone()));
            }
            Stmt::If(c, t, f) => {
                compile_expr(c, ops);
                let jz_at = ops.len();
                ops.push(StackOp::Jz(0)); // placeholder
                compile_stmts(t, ops, heads);
                let jmp_at = ops.len();
                ops.push(StackOp::Jmp(0)); // placeholder
                let else_start = ops.len();
                compile_stmts(f, ops, heads);
                let end = ops.len();
                ops[jz_at] = StackOp::Jz(else_start);
                ops[jmp_at] = StackOp::Jmp(end);
            }
            Stmt::While(c, body) => {
                let head = ops.len();
                heads.push(head);
                compile_expr(c, ops);
                let jz_at = ops.len();
                ops.push(StackOp::Jz(0)); // placeholder
                compile_stmts(body, ops, heads);
                ops.push(StackOp::Jmp(head));
                let after = ops.len();
                ops[jz_at] = StackOp::Jz(after);
            }
        }
    }
}

/// Static stack depth before each instruction (well-defined because the
/// compiler only joins control flow at equal depths).
fn compute_depths(ops: &[StackOp]) -> Vec<u32> {
    let mut depth = vec![u32::MAX; ops.len() + 1];
    depth[0] = 0;
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        if pc >= ops.len() {
            continue;
        }
        let d = depth[pc];
        let (next_d, targets): (u32, Vec<usize>) = match &ops[pc] {
            StackOp::Push(_) | StackOp::Load(_) => (d + 1, vec![pc + 1]),
            StackOp::Store(_) => (d - 1, vec![pc + 1]),
            StackOp::Add | StackOp::Sub | StackOp::Mul | StackOp::Lt => (d - 1, vec![pc + 1]),
            StackOp::Jz(t) => (d - 1, vec![pc + 1, *t]),
            StackOp::Jmp(t) => (d, vec![*t]),
            StackOp::Ret => (d - 1, vec![]),
        };
        for t in targets {
            if depth[t] == u32::MAX {
                depth[t] = next_d;
                work.push(t);
            } else {
                assert_eq!(depth[t], next_d, "inconsistent stack depth at {t}");
            }
        }
    }
    depth.truncate(ops.len());
    depth
}

/// Concrete stack-machine interpreter (for differential testing).
pub fn run_stack(f: &StackFn, inputs: &[(String, i32)], fuel: &mut u64) -> Option<i32> {
    use std::collections::BTreeMap;
    let mut vars: BTreeMap<String, i32> = f.vars.iter().map(|v| (v.clone(), 0)).collect();
    for (n, v) in inputs {
        vars.insert(n.clone(), *v);
    }
    let mut stack: Vec<i32> = Vec::new();
    let mut pc = 0usize;
    loop {
        if *fuel == 0 {
            return None;
        }
        *fuel -= 1;
        match &f.ops[pc] {
            StackOp::Push(c) => stack.push(*c),
            StackOp::Load(v) => stack.push(vars[v]),
            StackOp::Store(v) => {
                let t = stack.pop().expect("stack underflow");
                vars.insert(v.clone(), t);
            }
            StackOp::Add => bin(&mut stack, i32::wrapping_add),
            StackOp::Sub => bin(&mut stack, i32::wrapping_sub),
            StackOp::Mul => bin(&mut stack, i32::wrapping_mul),
            StackOp::Lt => bin(&mut stack, |a, b| i32::from((a as u32) < (b as u32))),
            StackOp::Jz(t) => {
                let c = stack.pop().expect("stack underflow");
                if c == 0 {
                    pc = *t;
                    continue;
                }
            }
            StackOp::Jmp(t) => {
                pc = *t;
                continue;
            }
            StackOp::Ret => return stack.pop(),
        }
        pc += 1;
    }
}

fn bin(stack: &mut Vec<i32>, f: impl Fn(i32, i32) -> i32) {
    let b = stack.pop().expect("stack underflow");
    let a = stack.pop().expect("stack underflow");
    stack.push(f(a, b));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to_n() -> ImpProgram {
        ImpProgram {
            inputs: vec!["n".into()],
            body: vec![
                Stmt::Assign("sum".into(), Expr::Const(0)),
                Stmt::Assign("i".into(), Expr::Const(0)),
                Stmt::While(
                    Expr::lt(Expr::var("i"), Expr::var("n")),
                    vec![
                        Stmt::Assign("sum".into(), Expr::add(Expr::var("sum"), Expr::var("i"))),
                        Stmt::Assign("i".into(), Expr::add(Expr::var("i"), Expr::Const(1))),
                    ],
                ),
            ],
            result: Expr::var("sum"),
        }
    }

    #[test]
    fn compiled_code_agrees_with_reference() {
        let p = sum_to_n();
        let sf = compile(&p);
        for n in 0..10 {
            let mut fuel = 100_000;
            let want = p.eval(&[n], &mut fuel);
            let mut fuel = 100_000;
            let got = run_stack(&sf, &[("n".into(), n)], &mut fuel);
            assert_eq!(want, got, "n = {n}");
        }
    }

    #[test]
    fn loop_heads_pair_up() {
        let p = sum_to_n();
        let flat = flatten(&p);
        let sf = compile(&p);
        assert_eq!(flat.loop_heads.len(), 1);
        assert_eq!(sf.loop_heads.len(), 1);
        // Depth at the stack loop head is zero (statement boundary).
        assert_eq!(sf.depth[sf.loop_heads[0]], 0);
    }

    #[test]
    fn depths_are_consistent() {
        let p = sum_to_n();
        let sf = compile(&p);
        assert_eq!(sf.depth[0], 0);
        assert!(sf.depth.iter().all(|&d| d != u32::MAX), "all reachable");
    }

    #[test]
    fn if_else_compiles_and_runs() {
        let p = ImpProgram {
            inputs: vec!["x".into()],
            body: vec![Stmt::If(
                Expr::lt(Expr::var("x"), Expr::Const(10)),
                vec![Stmt::Assign("y".into(), Expr::Const(1))],
                vec![Stmt::Assign("y".into(), Expr::Const(2))],
            )],
            result: Expr::var("y"),
        };
        let sf = compile(&p);
        let mut fuel = 1000;
        assert_eq!(run_stack(&sf, &[("x".into(), 5)], &mut fuel), Some(1));
        let mut fuel = 1000;
        assert_eq!(run_stack(&sf, &[("x".into(), 50)], &mut fuel), Some(2));
    }
}
