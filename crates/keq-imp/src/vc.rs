//! Synchronization-point generation for the IMP → stack-machine pair.
//!
//! The strategy is the same as for Instruction Selection (§4.5): entry,
//! exit, and one point per loop head. At loop heads the stack is empty
//! (statement boundary), so the constraints are simply `v = v` for every
//! program variable — both semantics name variables identically, making the
//! cross-language correspondence transparent.

use keq_core::sync::{SideSpec, SyncPoint, SyncSet, ValueExpr};
use keq_semantics::{CtrlLoc, LocPattern};

use crate::compile::{ImpFlat, StackFn};
use crate::sem::{ImpSemantics, StackSemantics};

/// Generates the sync set for a flattened IMP program and its compiled
/// stack-machine form.
pub fn imp_sync_points(flat: &ImpFlat, sf: &StackFn) -> SyncSet {
    let mut set = SyncSet::new();
    let var_havocs: Vec<(String, u32)> = flat.vars.iter().map(|v| (v.clone(), 32)).collect();
    let var_eqs: Vec<(ValueExpr, ValueExpr)> = flat
        .vars
        .iter()
        .map(|v| (ValueExpr::Reg(v.clone()), ValueExpr::Reg(v.clone())))
        .collect();

    set.push(SyncPoint {
        name: "entry".into(),
        left: SideSpec::startable(
            LocPattern::Entry,
            CtrlLoc::entry(ImpSemantics::loc_name(0)),
            var_havocs.clone(),
        ),
        right: SideSpec::startable(
            LocPattern::Entry,
            CtrlLoc::entry(StackSemantics::loc_name(0)),
            var_havocs.clone(),
        ),
        equalities: var_eqs.clone(),
        mem_equal: true,
    });

    set.push(SyncPoint {
        name: "exit".into(),
        left: SideSpec::arrival(LocPattern::Exit),
        right: SideSpec::arrival(LocPattern::Exit),
        equalities: vec![(ValueExpr::Ret, ValueExpr::Ret)],
        mem_equal: true,
    });

    for (k, (&ih, &sh)) in flat.loop_heads.iter().zip(&sf.loop_heads).enumerate() {
        set.push(SyncPoint {
            name: format!("loop{k}"),
            left: SideSpec::startable(
                LocPattern::BlockEntry { block: ImpSemantics::loc_name(ih), prev: None },
                CtrlLoc::block_start(ImpSemantics::loc_name(ih), None),
                var_havocs.clone(),
            ),
            right: SideSpec::startable(
                LocPattern::BlockEntry { block: StackSemantics::loc_name(sh), prev: None },
                CtrlLoc::block_start(StackSemantics::loc_name(sh), None),
                var_havocs.clone(),
            ),
            equalities: var_eqs.clone(),
            mem_equal: true,
        });
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, ImpProgram, Stmt};
    use crate::compile::{compile, flatten};
    use keq_core::{Keq, Verdict};
    use keq_smt::TermBank;

    fn sum_to_n() -> ImpProgram {
        ImpProgram {
            inputs: vec!["n".into()],
            body: vec![
                Stmt::Assign("sum".into(), Expr::Const(0)),
                Stmt::Assign("i".into(), Expr::Const(0)),
                Stmt::While(
                    Expr::lt(Expr::var("i"), Expr::var("n")),
                    vec![
                        Stmt::Assign("sum".into(), Expr::add(Expr::var("sum"), Expr::var("i"))),
                        Stmt::Assign("i".into(), Expr::add(Expr::var("i"), Expr::Const(1))),
                    ],
                ),
            ],
            result: Expr::var("sum"),
        }
    }

    #[test]
    fn sum_to_n_compilation_is_equivalent() {
        let p = sum_to_n();
        let flat = flatten(&p);
        let sf = compile(&p);
        let sync = imp_sync_points(&flat, &sf);
        let left = ImpSemantics::new(flat);
        let right = StackSemantics::new(sf);
        let keq = Keq::new(&left, &right);
        let mut bank = TermBank::new();
        let report = keq.check(&mut bank, &sync);
        assert_eq!(report.verdict, Verdict::Equivalent, "{}", report.verdict);
    }

    #[test]
    fn miscompiled_stack_code_is_rejected() {
        let p = sum_to_n();
        let flat = flatten(&p);
        let mut sf = compile(&p);
        // Sabotage: swap an Add for a Sub.
        let pos = sf
            .ops
            .iter()
            .position(|o| matches!(o, crate::compile::StackOp::Add))
            .expect("has an add");
        sf.ops[pos] = crate::compile::StackOp::Sub;
        let sync = imp_sync_points(&flat, &sf);
        let left = ImpSemantics::new(flat);
        let right = StackSemantics::new(sf);
        let keq = Keq::new(&left, &right);
        let mut bank = TermBank::new();
        let report = keq.check(&mut bank, &sync);
        assert!(
            !report.verdict.is_validated(),
            "sabotaged compilation must not validate: {}",
            report.verdict
        );
    }
}
