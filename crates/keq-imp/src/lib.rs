//! # keq-imp — a second language pair for the same checker
//!
//! The paper's headline claim is that KEQ is *language-parametric*: the
//! checker takes operational semantics as parameters and contains no
//! hard-coded language. This crate substantiates the claim with a language
//! pair that has nothing to do with LLVM: **IMP**, a small structured
//! while-language, compiled to a **stack machine** — and validated by the
//! exact same `keq_core::Keq` used for Instruction Selection.

pub mod ast;
pub mod compile;
pub mod sem;
pub mod vc;

pub use ast::{Expr, ImpProgram, Stmt};
pub use compile::{compile, StackFn, StackOp};
pub use sem::{ImpSemantics, StackSemantics};
pub use vc::imp_sync_points;
