//! IMP: a minimal structured while-language over 32-bit integers.

use std::fmt;

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A variable.
    Var(String),
    /// A constant.
    Const(i32),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Unsigned less-than (1 or 0).
    Lt(Box<Expr>, Box<Expr>),
}

// The builders are associated constructors, not operator overloads.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `Var` helper.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// `Add` helper.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `Sub` helper.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// `Mul` helper.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `Lt` helper.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::Lt(Box::new(a), Box::new(b))
    }

    /// All variables mentioned.
    pub fn vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Lt(a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `x := e`.
    Assign(String, Expr),
    /// `if e != 0 { then } else { els }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while e != 0 { body }`.
    While(Expr, Vec<Stmt>),
}

/// A program: named inputs, a body, and a result expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImpProgram {
    /// Input variable names.
    pub inputs: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Result expression.
    pub result: Expr,
}

impl ImpProgram {
    /// All variables assigned or read anywhere.
    pub fn all_vars(&self) -> Vec<String> {
        let mut vars = self.inputs.clone();
        fn walk(stmts: &[Stmt], vars: &mut Vec<String>) {
            for s in stmts {
                match s {
                    Stmt::Assign(x, e) => {
                        if !vars.contains(x) {
                            vars.push(x.clone());
                        }
                        e.vars(vars);
                    }
                    Stmt::If(c, t, f) => {
                        c.vars(vars);
                        walk(t, vars);
                        walk(f, vars);
                    }
                    Stmt::While(c, b) => {
                        c.vars(vars);
                        walk(b, vars);
                    }
                }
            }
        }
        walk(&self.body, &mut vars);
        self.result.vars(&mut vars);
        vars
    }

    /// Concrete reference semantics (for differential testing).
    pub fn eval(&self, inputs: &[i32], fuel: &mut u64) -> Option<i32> {
        use std::collections::BTreeMap;
        let mut env: BTreeMap<String, i32> = BTreeMap::new();
        for v in self.all_vars() {
            env.insert(v, 0);
        }
        for (n, v) in self.inputs.iter().zip(inputs) {
            env.insert(n.clone(), *v);
        }
        fn eexpr(e: &Expr, env: &std::collections::BTreeMap<String, i32>) -> i32 {
            match e {
                Expr::Var(v) => env[v],
                Expr::Const(c) => *c,
                Expr::Add(a, b) => eexpr(a, env).wrapping_add(eexpr(b, env)),
                Expr::Sub(a, b) => eexpr(a, env).wrapping_sub(eexpr(b, env)),
                Expr::Mul(a, b) => eexpr(a, env).wrapping_mul(eexpr(b, env)),
                Expr::Lt(a, b) => {
                    i32::from((eexpr(a, env) as u32) < (eexpr(b, env) as u32))
                }
            }
        }
        fn estmts(
            stmts: &[Stmt],
            env: &mut std::collections::BTreeMap<String, i32>,
            fuel: &mut u64,
        ) -> Option<()> {
            for s in stmts {
                if *fuel == 0 {
                    return None;
                }
                *fuel -= 1;
                match s {
                    Stmt::Assign(x, e) => {
                        let v = eexpr(e, env);
                        env.insert(x.clone(), v);
                    }
                    Stmt::If(c, t, f) => {
                        if eexpr(c, env) != 0 {
                            estmts(t, env, fuel)?;
                        } else {
                            estmts(f, env, fuel)?;
                        }
                    }
                    Stmt::While(c, b) => {
                        while eexpr(c, env) != 0 {
                            if *fuel == 0 {
                                return None;
                            }
                            *fuel -= 1;
                            estmts(b, env, fuel)?;
                        }
                    }
                }
            }
            Some(())
        }
        estmts(&self.body, &mut env, fuel)?;
        Some(eexpr(&self.result, &env))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Lt(a, b) => write!(f, "({a} < {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `sum = 0; i = 0; while (i < n) { sum = sum + i; i = i + 1 }; sum`.
    pub fn sum_to_n() -> ImpProgram {
        ImpProgram {
            inputs: vec!["n".into()],
            body: vec![
                Stmt::Assign("sum".into(), Expr::Const(0)),
                Stmt::Assign("i".into(), Expr::Const(0)),
                Stmt::While(
                    Expr::lt(Expr::var("i"), Expr::var("n")),
                    vec![
                        Stmt::Assign("sum".into(), Expr::add(Expr::var("sum"), Expr::var("i"))),
                        Stmt::Assign("i".into(), Expr::add(Expr::var("i"), Expr::Const(1))),
                    ],
                ),
            ],
            result: Expr::var("sum"),
        }
    }

    #[test]
    fn reference_semantics() {
        let p = sum_to_n();
        let mut fuel = 10_000;
        assert_eq!(p.eval(&[5], &mut fuel), Some(10));
        let mut fuel = 10_000;
        assert_eq!(p.eval(&[0], &mut fuel), Some(0));
    }

    #[test]
    fn all_vars_collects() {
        let p = sum_to_n();
        let vars = p.all_vars();
        assert!(vars.contains(&"n".to_string()));
        assert!(vars.contains(&"sum".to_string()));
        assert!(vars.contains(&"i".to_string()));
    }
}
