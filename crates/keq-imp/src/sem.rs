//! Symbolic operational semantics for IMP and the stack machine.
//!
//! Both implement `keq_semantics::Language`, which is all
//! `keq_core::Keq` needs — no change to the checker is required to validate
//! this language pair.

use keq_semantics::{CtrlLoc, Language, SemanticsError, Status, SymConfig};
use keq_smt::{TermBank, TermId};

use crate::ast::Expr;
use crate::compile::{ImpFlat, ImpOp, StackFn, StackOp};

/// Symbolic semantics of flattened IMP. Control locations are `L{pc}`.
#[derive(Debug)]
pub struct ImpSemantics {
    flat: ImpFlat,
}

impl ImpSemantics {
    /// Wraps a flattened program.
    pub fn new(flat: ImpFlat) -> Self {
        ImpSemantics { flat }
    }

    /// The flattened program.
    pub fn flat(&self) -> &ImpFlat {
        &self.flat
    }

    /// Control-location name of `pc`.
    pub fn loc_name(pc: usize) -> String {
        format!("L{pc}")
    }

    fn eval(
        &self,
        bank: &mut TermBank,
        cfg: &SymConfig,
        e: &Expr,
    ) -> Result<TermId, SemanticsError> {
        Ok(match e {
            Expr::Var(v) => cfg.reg(v)?,
            Expr::Const(c) => bank.mk_bv(32, *c as u128),
            Expr::Add(a, b) => {
                let (a, b) = (self.eval(bank, cfg, a)?, self.eval(bank, cfg, b)?);
                bank.mk_bvadd(a, b)
            }
            Expr::Sub(a, b) => {
                let (a, b) = (self.eval(bank, cfg, a)?, self.eval(bank, cfg, b)?);
                bank.mk_bvsub(a, b)
            }
            Expr::Mul(a, b) => {
                let (a, b) = (self.eval(bank, cfg, a)?, self.eval(bank, cfg, b)?);
                bank.mk_bvmul(a, b)
            }
            Expr::Lt(a, b) => {
                let (a, b) = (self.eval(bank, cfg, a)?, self.eval(bank, cfg, b)?);
                let c = bank.mk_bvult(a, b);
                let one = bank.mk_bv(32, 1);
                let zero = bank.mk_bv(32, 0);
                bank.mk_ite(c, one, zero)
            }
        })
    }
}

fn pc_of(loc: &CtrlLoc, prefix: char) -> Result<usize, SemanticsError> {
    loc.block
        .strip_prefix(prefix)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| SemanticsError::UnknownBlock { name: loc.block.clone() })
}

fn goto(cfg: &SymConfig, prefix: char, pc: usize) -> SymConfig {
    let mut next = cfg.clone();
    next.loc = CtrlLoc::block_start(format!("{prefix}{pc}"), Some(cfg.loc.block.clone()));
    next
}

impl Language for ImpSemantics {
    fn name(&self) -> &str {
        "imp"
    }

    fn step(
        &self,
        cfg: &SymConfig,
        bank: &mut TermBank,
    ) -> Result<Vec<SymConfig>, SemanticsError> {
        let pc = pc_of(&cfg.loc, 'L')?;
        let op = self.flat.ops.get(pc).ok_or_else(|| SemanticsError::UnknownBlock {
            name: cfg.loc.block.clone(),
        })?;
        Ok(match op {
            ImpOp::Assign(x, e) => {
                let v = self.eval(bank, cfg, e)?;
                let mut next = goto(cfg, 'L', pc + 1);
                next.set_reg(x.clone(), v);
                vec![next]
            }
            ImpOp::Branch(c, then_, else_) => {
                let v = self.eval(bank, cfg, c)?;
                let zero = bank.mk_bv(32, 0);
                let is_zero = bank.mk_eq(v, zero);
                let taken_cond = bank.mk_not(is_zero);
                let mut taken = goto(cfg, 'L', *then_);
                taken.assume(bank, taken_cond);
                let mut fall = goto(cfg, 'L', *else_);
                fall.assume(bank, is_zero);
                vec![taken, fall]
            }
            ImpOp::Jump(t) => vec![goto(cfg, 'L', *t)],
            ImpOp::Ret(e) => {
                let v = self.eval(bank, cfg, e)?;
                let mut done = cfg.clone();
                done.status = Status::Exited { ret: Some(v) };
                vec![done]
            }
        })
    }
}

/// Symbolic semantics of the stack machine. Control locations are `S{pc}`;
/// stack cells are registers `stk{depth}`.
#[derive(Debug)]
pub struct StackSemantics {
    func: StackFn,
}

impl StackSemantics {
    /// Wraps a compiled function.
    pub fn new(func: StackFn) -> Self {
        StackSemantics { func }
    }

    /// The compiled function.
    pub fn func(&self) -> &StackFn {
        &self.func
    }

    /// Control-location name of `pc`.
    pub fn loc_name(pc: usize) -> String {
        format!("S{pc}")
    }
}

fn stk(i: u32) -> String {
    format!("stk{i}")
}

impl Language for StackSemantics {
    fn name(&self) -> &str {
        "stack"
    }

    fn step(
        &self,
        cfg: &SymConfig,
        bank: &mut TermBank,
    ) -> Result<Vec<SymConfig>, SemanticsError> {
        let pc = pc_of(&cfg.loc, 'S')?;
        let op = self.func.ops.get(pc).ok_or_else(|| SemanticsError::UnknownBlock {
            name: cfg.loc.block.clone(),
        })?;
        let d = self.func.depth[pc];
        Ok(match op {
            StackOp::Push(c) => {
                let mut next = goto(cfg, 'S', pc + 1);
                let v = bank.mk_bv(32, *c as u128);
                next.set_reg(stk(d), v);
                vec![next]
            }
            StackOp::Load(x) => {
                let v = cfg.reg(x)?;
                let mut next = goto(cfg, 'S', pc + 1);
                next.set_reg(stk(d), v);
                vec![next]
            }
            StackOp::Store(x) => {
                let v = cfg.reg(&stk(d - 1))?;
                let mut next = goto(cfg, 'S', pc + 1);
                next.set_reg(x.clone(), v);
                next.regs.remove(&stk(d - 1));
                vec![next]
            }
            StackOp::Add | StackOp::Sub | StackOp::Mul | StackOp::Lt => {
                let a = cfg.reg(&stk(d - 2))?;
                let b = cfg.reg(&stk(d - 1))?;
                let v = match op {
                    StackOp::Add => bank.mk_bvadd(a, b),
                    StackOp::Sub => bank.mk_bvsub(a, b),
                    StackOp::Mul => bank.mk_bvmul(a, b),
                    StackOp::Lt => {
                        let c = bank.mk_bvult(a, b);
                        let one = bank.mk_bv(32, 1);
                        let zero = bank.mk_bv(32, 0);
                        bank.mk_ite(c, one, zero)
                    }
                    _ => unreachable!(),
                };
                let mut next = goto(cfg, 'S', pc + 1);
                next.set_reg(stk(d - 2), v);
                next.regs.remove(&stk(d - 1));
                vec![next]
            }
            StackOp::Jz(t) => {
                let c = cfg.reg(&stk(d - 1))?;
                let zero = bank.mk_bv(32, 0);
                let is_zero = bank.mk_eq(c, zero);
                let mut taken = goto(cfg, 'S', *t);
                taken.assume(bank, is_zero);
                taken.regs.remove(&stk(d - 1));
                let not_zero = bank.mk_not(is_zero);
                let mut fall = goto(cfg, 'S', pc + 1);
                fall.assume(bank, not_zero);
                fall.regs.remove(&stk(d - 1));
                vec![taken, fall]
            }
            StackOp::Jmp(t) => vec![goto(cfg, 'S', *t)],
            StackOp::Ret => {
                let v = cfg.reg(&stk(d - 1))?;
                let mut done = cfg.clone();
                done.status = Status::Exited { ret: Some(v) };
                vec![done]
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ImpProgram, Stmt};
    use crate::compile::{compile, flatten};
    use keq_smt::Sort;

    #[test]
    fn imp_step_assign_and_ret() {
        let p = ImpProgram {
            inputs: vec!["x".into()],
            body: vec![Stmt::Assign(
                "y".into(),
                Expr::add(Expr::var("x"), Expr::Const(1)),
            )],
            result: Expr::var("y"),
        };
        let sem = ImpSemantics::new(flatten(&p));
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let x = bank.mk_var("x", Sort::BitVec(32));
        let zero = bank.mk_bv(32, 0);
        let mut cfg = SymConfig::new(CtrlLoc::entry("L0"), mem);
        cfg.set_reg("x", x);
        cfg.set_reg("y", zero);
        let s1 = sem.step(&cfg, &mut bank).expect("assign");
        let one = bank.mk_bv(32, 1);
        let want = bank.mk_bvadd(x, one);
        assert_eq!(s1[0].reg("y"), Ok(want));
        let s2 = sem.step(&s1[0], &mut bank).expect("ret");
        assert!(matches!(s2[0].status, Status::Exited { ret: Some(r) } if r == want));
    }

    #[test]
    fn stack_push_add_store() {
        let p = ImpProgram {
            inputs: vec!["x".into()],
            body: vec![Stmt::Assign(
                "y".into(),
                Expr::add(Expr::var("x"), Expr::Const(1)),
            )],
            result: Expr::var("y"),
        };
        let sem = StackSemantics::new(compile(&p));
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let x = bank.mk_var("x", Sort::BitVec(32));
        let mut cfg = SymConfig::new(CtrlLoc::entry("S0"), mem);
        cfg.set_reg("x", x);
        // Step through Load x; Push 1; Add; Store y.
        let mut c = cfg;
        for _ in 0..4 {
            let mut s = sem.step(&c, &mut bank).expect("steps");
            c = s.pop().expect("one successor");
        }
        let one = bank.mk_bv(32, 1);
        let want = bank.mk_bvadd(x, one);
        assert_eq!(c.reg("y"), Ok(want));
        assert!(c.reg("stk0").is_err(), "stack empty again");
    }
}
