//! # keq-vx86 — the "Virtual x86" Machine IR of the paper's §4.3
//!
//! The output language of LLVM Instruction Selection when targeting x86-64:
//! Machine IR with SSA virtual registers, `COPY`/`PHI` pseudo-instructions,
//! x86-64 opcodes, the general-purpose physical register file with proper
//! sub-register aliasing (a 32-bit write zeroes the upper half), and the
//! `eflags` condition bits.
//!
//! [`sem::VxSemantics`] implements [`keq_semantics::Language`] — it is the
//! "output semantics" parameter handed to KEQ.

pub mod ast;
pub mod interp;
pub mod printer;
pub mod sem;

pub use ast::{
    Addr, AluOp, Cond, PhysReg, Reg, RegImm, VxBlock, VxFunction, VxInstr, VxTerm,
};
pub use interp::{run_vx_function, VxState, VxTrap};
pub use sem::{init_flags, reg_key, VxSemantics};
