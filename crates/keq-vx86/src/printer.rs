//! Textual rendering of Virtual x86 functions, in the style of the paper's
//! Fig. 2(b).

use std::fmt;

use crate::ast::{VxBlock, VxFunction, VxInstr, VxTerm};

impl fmt::Display for VxFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for b in &self.blocks {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl fmt::Display for VxBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".{}:", self.name)?;
        for i in &self.instrs {
            writeln!(f, "  {i}")?;
        }
        write!(f, "{}", self.term)
    }
}

impl fmt::Display for VxInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VxInstr::Copy { dst, src } => write!(f, "{dst} = COPY {src}"),
            VxInstr::Phi { dst, incomings } => {
                write!(f, "{dst} = PHI ")?;
                for (i, (r, bb)) in incomings.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}, .{bb}")?;
                }
                Ok(())
            }
            VxInstr::MovRI { dst, imm } => write!(f, "{dst} = mov {imm}"),
            VxInstr::Load { dst, width, addr, zext } => {
                let m = if *zext && dst.width() > *width { "movzx" } else { "mov" };
                write!(f, "{dst} = {m}{} [{addr}]", width_suffix(*width))
            }
            VxInstr::Store { width, addr, src } => {
                write!(f, "mov{} [{addr}], {src}", width_suffix(*width))
            }
            VxInstr::Alu { op, dst, lhs, rhs } => {
                write!(f, "{dst} = {} {lhs}, {rhs}", op.mnemonic())
            }
            VxInstr::Cmp { width, lhs, rhs } => {
                write!(f, "cmp{} {lhs}, {rhs}", width_suffix(*width))
            }
            VxInstr::Inc { dst, src } => write!(f, "{dst} = inc {src}"),
            VxInstr::Lea { dst, addr } => write!(f, "{dst} = lea [{addr}]"),
            VxInstr::Ext { dst, src, signed } => {
                write!(f, "{dst} = {} {src}", if *signed { "movsx" } else { "movzx" })
            }
            VxInstr::SetCc { cc, dst } => write!(f, "{dst} = set{} ", cc.mnemonic()),
            VxInstr::Div { signed, rem, dst, lhs, rhs } => {
                let m = match (signed, rem) {
                    (false, false) => "udiv",
                    (false, true) => "urem",
                    (true, false) => "idiv",
                    (true, true) => "irem",
                };
                write!(f, "{dst} = {m} {lhs}, {rhs}")
            }
            VxInstr::Call { callee, arg_widths, .. } => {
                write!(f, "call {callee} ({} args)", arg_widths.len())
            }
        }
    }
}

impl fmt::Display for VxTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VxTerm::Jmp { target } => writeln!(f, "  jmp .{target}"),
            VxTerm::CondJmp { cc, then_, else_ } => {
                writeln!(f, "  j{} .{then_}", cc.mnemonic())?;
                writeln!(f, "  jmp .{else_}")
            }
            VxTerm::Ret => writeln!(f, "  ret"),
            VxTerm::Ud2 => writeln!(f, "  ud2"),
        }
    }
}

fn width_suffix(width: u32) -> &'static str {
    match width {
        8 => "b",
        16 => "w",
        32 => "l",
        64 => "q",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Addr, AluOp, Cond, PhysReg, Reg, RegImm};

    #[test]
    fn renders_fig2b_style() {
        let f = VxFunction {
            name: "arithm_seq_sum".into(),
            num_params: 3,
            param_widths: vec![32, 32, 32],
            ret_width: Some(32),
            blocks: vec![VxBlock {
                name: "LBB0".into(),
                instrs: vec![
                    VxInstr::Copy { dst: Reg::vr32(8), src: Reg::Phys(PhysReg::Rdx, 32) },
                    VxInstr::MovRI { dst: Reg::vr32(9), imm: 1 },
                ],
                term: VxTerm::Jmp { target: "LBB1".into() },
            }],
        };
        let s = f.to_string();
        assert!(s.contains("%vr8_32 = COPY edx"), "{s}");
        assert!(s.contains("%vr9_32 = mov 1"), "{s}");
        assert!(s.contains("jmp .LBB1"), "{s}");
    }

    #[test]
    fn renders_memory_and_branches() {
        let b = VxBlock {
            name: "LBB2".into(),
            instrs: vec![
                VxInstr::Store { width: 16, addr: Addr::global("b", 2), src: RegImm::Imm(0) },
                VxInstr::Alu {
                    op: AluOp::Sub,
                    dst: Reg::vr32(10),
                    lhs: RegImm::Reg(Reg::vr32(2)),
                    rhs: RegImm::Reg(Reg::vr32(8)),
                },
            ],
            term: VxTerm::CondJmp { cc: Cond::Ae, then_: "LBB4".into(), else_: "LBB3".into() },
        };
        let s = b.to_string();
        assert!(s.contains("movw [b+2(%rip)], $0"), "{s}");
        assert!(s.contains("%vr10_32 = sub %vr2_32, %vr8_32"), "{s}");
        assert!(s.contains("jae .LBB4"), "{s}");
    }
}
