//! Symbolic operational semantics of Virtual x86 — the right-hand
//! `Language` parameter handed to KEQ (the paper's §4.3 K definition).
//!
//! Physical registers are modelled at their full 64-bit width under their
//! canonical names (`rax`, `rdi`, …); narrower views read low bits and
//! 32-bit writes zero the upper half, which is exactly the x86-64 rule the
//! paper's Fig. 11 correct translation relies on. The four `eflags` bits
//! that conditional jumps consume (`zf`, `sf`, `cf`, `of`) are tracked as
//! boolean registers.
//!
//! Flag fidelity notes: `imul` leaves `zf`/`sf` undefined on real hardware
//! and shifts leave `cf`/`of` undefined for some counts; this semantics
//! pins them (result-derived / false) — ISel-generated code never branches
//! on flags that are undefined at that point, and a deterministic choice is
//! required for the §3 determinism-based query optimization.

use std::collections::BTreeMap;

use keq_semantics::{
    read_bytes, write_bytes, CtrlLoc, ErrorKind, Language, MemLayout, SemanticsError, Status,
    SymConfig,
};
use keq_smt::{TermBank, TermId};

use crate::ast::{Addr, AluOp, Cond, PhysReg, Reg, RegImm, VxFunction, VxInstr, VxTerm};

/// The symbolic semantics of one Virtual x86 function.
#[derive(Debug)]
pub struct VxSemantics<'f> {
    func: &'f VxFunction,
    mem_layout: MemLayout,
    globals: BTreeMap<String, u64>,
    call_ordinals: BTreeMap<(String, usize), usize>,
}

impl<'f> VxSemantics<'f> {
    /// Builds the semantics with the shared memory layout and global
    /// addresses (both must match the LLVM side's, per the common memory
    /// model of §4.4).
    pub fn new(
        func: &'f VxFunction,
        mem_layout: MemLayout,
        globals: BTreeMap<String, u64>,
    ) -> Self {
        let mut per_callee: BTreeMap<&str, usize> = BTreeMap::new();
        let mut call_ordinals = BTreeMap::new();
        for b in &func.blocks {
            for (i, instr) in b.instrs.iter().enumerate() {
                if let VxInstr::Call { callee, .. } = instr {
                    let n = per_callee.entry(callee.as_str()).or_insert(0);
                    call_ordinals.insert((b.name.clone(), i), *n);
                    *n += 1;
                }
            }
        }
        VxSemantics { func, mem_layout, globals, call_ordinals }
    }

    /// The function under execution.
    pub fn function(&self) -> &VxFunction {
        self.func
    }

    /// The initial configuration with arguments placed in the SysV
    /// argument registers.
    ///
    /// # Panics
    ///
    /// Panics if more than six integer arguments are supplied (stack
    /// arguments are outside the supported fragment).
    pub fn initial_config(&self, bank: &mut TermBank, args: &[TermId], mem: TermId) -> SymConfig {
        assert!(args.len() <= 6, "stack arguments unsupported");
        let mut cfg = SymConfig::new(CtrlLoc::entry(self.func.entry().name.clone()), mem);
        for (i, &a) in args.iter().enumerate() {
            let full = bank.mk_zext(a, 64);
            cfg.set_reg(PhysReg::args()[i].name64(), full);
        }
        init_flags(bank, &mut cfg);
        cfg
    }

    fn read_reg(
        &self,
        bank: &mut TermBank,
        cfg: &SymConfig,
        reg: Reg,
    ) -> Result<TermId, SemanticsError> {
        match reg {
            Reg::Virt(id, w) => cfg.reg(&format!("%vr{id}_{w}")),
            Reg::Phys(p, w) => {
                let full = cfg.reg(p.name64())?;
                Ok(if w == 64 { full } else { bank.mk_trunc(full, w) })
            }
        }
    }

    fn write_reg(
        &self,
        bank: &mut TermBank,
        cfg: &mut SymConfig,
        reg: Reg,
        val: TermId,
    ) -> Result<(), SemanticsError> {
        debug_assert_eq!(bank.width(val), reg.width());
        match reg {
            Reg::Virt(id, w) => {
                cfg.set_reg(format!("%vr{id}_{w}"), val);
                let _ = w;
            }
            Reg::Phys(p, w) => {
                let full = match w {
                    64 => val,
                    // 32-bit writes zero the upper half (x86-64 rule).
                    32 => bank.mk_zext(val, 64),
                    // 8/16-bit writes merge into the old value.
                    _ => {
                        let old = cfg.reg(p.name64())?;
                        let hi = bank.mk_extract(old, 63, w);
                        bank.mk_concat(hi, val)
                    }
                };
                cfg.set_reg(p.name64(), full);
            }
        }
        Ok(())
    }

    fn read_ri(
        &self,
        bank: &mut TermBank,
        cfg: &SymConfig,
        ri: RegImm,
        width: u32,
    ) -> Result<TermId, SemanticsError> {
        match ri {
            RegImm::Reg(r) => {
                let v = self.read_reg(bank, cfg, r)?;
                let w = bank.width(v);
                Ok(match w.cmp(&width) {
                    std::cmp::Ordering::Equal => v,
                    std::cmp::Ordering::Less => bank.mk_zext(v, width),
                    std::cmp::Ordering::Greater => bank.mk_trunc(v, width),
                })
            }
            RegImm::Imm(i) => Ok(bank.mk_bv(width, i as u128)),
        }
    }

    fn addr_term(
        &self,
        bank: &mut TermBank,
        cfg: &SymConfig,
        addr: &Addr,
    ) -> Result<TermId, SemanticsError> {
        let mut t = if let Some(g) = &addr.global {
            let base = self.globals.get(g).copied().ok_or_else(|| {
                SemanticsError::UnknownRegister { name: format!("@{g}") }
            })?;
            bank.mk_bv(64, u128::from(base.wrapping_add(addr.disp as u64)))
        } else {
            bank.mk_bv(64, addr.disp as u64 as u128)
        };
        if let Some(b) = addr.base {
            let bv = self.read_reg(bank, cfg, b)?;
            let bv64 = widen64(bank, bv);
            t = bank.mk_bvadd(t, bv64);
        }
        if let Some((i, s)) = addr.index {
            let iv = self.read_reg(bank, cfg, i)?;
            let iv64 = widen64(bank, iv);
            let sc = bank.mk_bv(64, u128::from(s));
            let scaled = bank.mk_bvmul(iv64, sc);
            t = bank.mk_bvadd(t, scaled);
        }
        Ok(t)
    }

    fn cond_term(
        &self,
        bank: &mut TermBank,
        cfg: &SymConfig,
        cc: Cond,
    ) -> Result<TermId, SemanticsError> {
        let zf = cfg.reg("zf")?;
        let sf = cfg.reg("sf")?;
        let cf = cfg.reg("cf")?;
        let of = cfg.reg("of")?;
        Ok(match cc {
            Cond::E => zf,
            Cond::Ne => bank.mk_not(zf),
            Cond::B => cf,
            Cond::Ae => bank.mk_not(cf),
            Cond::Be => bank.mk_or([cf, zf]),
            Cond::A => {
                let o = bank.mk_or([cf, zf]);
                bank.mk_not(o)
            }
            Cond::L => bank.mk_xor(sf, of),
            Cond::Ge => {
                let x = bank.mk_xor(sf, of);
                bank.mk_not(x)
            }
            Cond::Le => {
                let x = bank.mk_xor(sf, of);
                bank.mk_or([x, zf])
            }
            Cond::G => {
                let x = bank.mk_xor(sf, of);
                let o = bank.mk_or([x, zf]);
                bank.mk_not(o)
            }
            Cond::S => sf,
            Cond::Ns => bank.mk_not(sf),
        })
    }

    /// Sets `zf`/`sf` from `res` and `cf`/`of` explicitly.
    fn set_flags(
        bank: &mut TermBank,
        cfg: &mut SymConfig,
        res: TermId,
        cf: TermId,
        of: TermId,
    ) {
        let w = bank.width(res);
        let zero = bank.mk_bv(w, 0);
        let zf = bank.mk_eq(res, zero);
        let sf = {
            let msb = bank.mk_extract(res, w - 1, w - 1);
            let one = bank.mk_bv(1, 1);
            bank.mk_eq(msb, one)
        };
        cfg.set_reg("zf", zf);
        cfg.set_reg("sf", sf);
        cfg.set_reg("cf", cf);
        cfg.set_reg("of", of);
    }
}

/// Initializes the flags to a defined (false) state.
pub fn init_flags(bank: &mut TermBank, cfg: &mut SymConfig) {
    let f = bank.mk_false();
    for flag in ["zf", "sf", "cf", "of"] {
        if cfg.reg(flag).is_err() {
            cfg.set_reg(flag, f);
        }
    }
}

fn widen64(bank: &mut TermBank, v: TermId) -> TermId {
    let w = bank.width(v);
    if w < 64 {
        bank.mk_zext(v, 64)
    } else {
        v
    }
}

/// `(carry, signed-overflow)` of `l + r` at width `w`.
fn add_flags(bank: &mut TermBank, l: TermId, r: TermId, res: TermId, w: u32) -> (TermId, TermId) {
    let lx = bank.mk_zext(l, w + 1);
    let rx = bank.mk_zext(r, w + 1);
    let wide = bank.mk_bvadd(lx, rx);
    let cf = {
        let top = bank.mk_extract(wide, w, w);
        let one = bank.mk_bv(1, 1);
        bank.mk_eq(top, one)
    };
    let of = {
        let ls = bank.mk_sext(l, w + 1);
        let rs = bank.mk_sext(r, w + 1);
        let wide_s = bank.mk_bvadd(ls, rs);
        let res_s = bank.mk_sext(res, w + 1);
        bank.mk_ne(wide_s, res_s)
    };
    (cf, of)
}

/// `(borrow, signed-overflow)` of `l - r` at width `w`.
fn sub_flags(bank: &mut TermBank, l: TermId, r: TermId, res: TermId, w: u32) -> (TermId, TermId) {
    let cf = bank.mk_bvult(l, r);
    let of = {
        let ls = bank.mk_sext(l, w + 1);
        let rs = bank.mk_sext(r, w + 1);
        let wide_s = bank.mk_bvsub(ls, rs);
        let res_s = bank.mk_sext(res, w + 1);
        bank.mk_ne(wide_s, res_s)
    };
    (cf, of)
}

impl Language for VxSemantics<'_> {
    fn name(&self) -> &str {
        "vx86"
    }

    fn step(
        &self,
        cfg: &SymConfig,
        bank: &mut TermBank,
    ) -> Result<Vec<SymConfig>, SemanticsError> {
        debug_assert!(cfg.status.is_running(), "step on non-running config");
        let block = self
            .func
            .block(&cfg.loc.block)
            .ok_or_else(|| SemanticsError::UnknownBlock { name: cfg.loc.block.clone() })?;
        if cfg.loc.index < block.instrs.len() {
            if cfg.loc.index == 0 {
                let phis: Vec<(Reg, &[(Reg, String)])> = block
                    .instrs
                    .iter()
                    .map_while(|i| match i {
                        VxInstr::Phi { dst, incomings } => Some((*dst, incomings.as_slice())),
                        _ => None,
                    })
                    .collect();
                if !phis.is_empty() {
                    return Ok(vec![self.step_phis(bank, cfg, &phis)?]);
                }
            }
            self.step_instr(bank, cfg, block, &block.instrs[cfg.loc.index])
        } else {
            self.step_term(bank, cfg, &block.term)
        }
    }
}

impl VxSemantics<'_> {
    fn step_phis(
        &self,
        bank: &mut TermBank,
        cfg: &SymConfig,
        phis: &[(Reg, &[(Reg, String)])],
    ) -> Result<SymConfig, SemanticsError> {
        let prev = cfg.loc.prev.clone().ok_or_else(|| SemanticsError::Internal {
            what: format!("PHI at {} with no predecessor", cfg.loc),
        })?;
        let mut values = Vec::with_capacity(phis.len());
        for (dst, incomings) in phis {
            let (src, _) = incomings.iter().find(|(_, bb)| *bb == prev).ok_or_else(|| {
                SemanticsError::Internal { what: format!("PHI {dst} missing incoming {prev}") }
            })?;
            values.push((*dst, self.read_reg(bank, cfg, *src)?));
        }
        let mut next = cfg.clone();
        for (dst, v) in values {
            self.write_reg(bank, &mut next, dst, v)?;
        }
        next.loc.index += phis.len();
        Ok(next)
    }

    fn step_instr(
        &self,
        bank: &mut TermBank,
        cfg: &SymConfig,
        block: &crate::ast::VxBlock,
        instr: &VxInstr,
    ) -> Result<Vec<SymConfig>, SemanticsError> {
        let mut succs = Vec::new();
        let mut next = cfg.clone();
        next.loc.index += 1;
        match instr {
            VxInstr::Copy { dst, src } => {
                let v = self.read_reg(bank, cfg, *src)?;
                let v = fit(bank, v, dst.width());
                self.write_reg(bank, &mut next, *dst, v)?;
                succs.push(next);
            }
            VxInstr::Phi { dst, .. } => {
                return Err(SemanticsError::Internal {
                    what: format!("PHI {dst} not at block start"),
                })
            }
            VxInstr::MovRI { dst, imm } => {
                let v = bank.mk_bv(dst.width(), *imm as u128);
                self.write_reg(bank, &mut next, *dst, v)?;
                succs.push(next);
            }
            VxInstr::Load { dst, width, addr, zext } => {
                let a = self.addr_term(bank, cfg, addr)?;
                let nbytes = u64::from(width / 8);
                let ok = self.mem_layout.in_bounds(bank, a, nbytes);
                let oob = bank.mk_not(ok);
                succs.push(cfg.to_error(bank, ErrorKind::OutOfBounds, oob));
                next.assume(bank, ok);
                let raw = read_bytes(bank, cfg.mem, a, width / 8);
                let v = if *zext && dst.width() > *width {
                    bank.mk_zext(raw, dst.width())
                } else {
                    raw
                };
                self.write_reg(bank, &mut next, *dst, v)?;
                succs.push(next);
            }
            VxInstr::Store { width, addr, src } => {
                let a = self.addr_term(bank, cfg, addr)?;
                let v = self.read_ri(bank, cfg, *src, *width)?;
                let nbytes = u64::from(width / 8);
                let ok = self.mem_layout.in_bounds(bank, a, nbytes);
                let oob = bank.mk_not(ok);
                succs.push(cfg.to_error(bank, ErrorKind::OutOfBounds, oob));
                next.assume(bank, ok);
                next.mem = write_bytes(bank, cfg.mem, a, v);
                succs.push(next);
            }
            VxInstr::Alu { op, dst, lhs, rhs } => {
                let w = dst.width();
                let l = self.read_ri(bank, cfg, *lhs, w)?;
                let r = self.read_ri(bank, cfg, *rhs, w)?;
                let f = bank.mk_false();
                let (res, cf, of) = match op {
                    AluOp::Add => {
                        let res = bank.mk_bvadd(l, r);
                        let (cf, of) = add_flags(bank, l, r, res, w);
                        (res, cf, of)
                    }
                    AluOp::Sub => {
                        let res = bank.mk_bvsub(l, r);
                        let (cf, of) = sub_flags(bank, l, r, res, w);
                        (res, cf, of)
                    }
                    AluOp::Imul => {
                        let res = bank.mk_bvmul(l, r);
                        let ls = bank.mk_sext(l, 2 * w);
                        let rs = bank.mk_sext(r, 2 * w);
                        let wide = bank.mk_bvmul(ls, rs);
                        let res_s = bank.mk_sext(res, 2 * w);
                        let ovf = bank.mk_ne(wide, res_s);
                        (res, ovf, ovf)
                    }
                    AluOp::And => (bank.mk_bvand(l, r), f, f),
                    AluOp::Or => (bank.mk_bvor(l, r), f, f),
                    AluOp::Xor => (bank.mk_bvxor(l, r), f, f),
                    AluOp::Shl => (bank.mk_bvshl(l, r), f, f),
                    AluOp::Shr => (bank.mk_bvlshr(l, r), f, f),
                    AluOp::Sar => (bank.mk_bvashr(l, r), f, f),
                };
                Self::set_flags(bank, &mut next, res, cf, of);
                self.write_reg(bank, &mut next, *dst, res)?;
                succs.push(next);
            }
            VxInstr::Cmp { width, lhs, rhs } => {
                let l = self.read_ri(bank, cfg, *lhs, *width)?;
                let r = self.read_ri(bank, cfg, *rhs, *width)?;
                let res = bank.mk_bvsub(l, r);
                let (cf, of) = sub_flags(bank, l, r, res, *width);
                Self::set_flags(bank, &mut next, res, cf, of);
                succs.push(next);
            }
            VxInstr::Inc { dst, src } => {
                let w = dst.width();
                let v = self.read_reg(bank, cfg, *src)?;
                let one = bank.mk_bv(w, 1);
                let res = bank.mk_bvadd(v, one);
                let (_, of) = add_flags(bank, v, one, res, w);
                let old_cf = cfg.reg("cf")?;
                Self::set_flags(bank, &mut next, res, old_cf, of);
                self.write_reg(bank, &mut next, *dst, res)?;
                succs.push(next);
            }
            VxInstr::Lea { dst, addr } => {
                let a = self.addr_term(bank, cfg, addr)?;
                let v = fit(bank, a, dst.width());
                self.write_reg(bank, &mut next, *dst, v)?;
                succs.push(next);
            }
            VxInstr::Ext { dst, src, signed } => {
                let v = self.read_reg(bank, cfg, *src)?;
                let r = if *signed {
                    bank.mk_sext(v, dst.width())
                } else {
                    bank.mk_zext(v, dst.width())
                };
                self.write_reg(bank, &mut next, *dst, r)?;
                succs.push(next);
            }
            VxInstr::SetCc { cc, dst } => {
                let c = self.cond_term(bank, cfg, *cc)?;
                let one = bank.mk_bv(dst.width(), 1);
                let zero = bank.mk_bv(dst.width(), 0);
                let v = bank.mk_ite(c, one, zero);
                self.write_reg(bank, &mut next, *dst, v)?;
                succs.push(next);
            }
            VxInstr::Div { signed, rem, dst, lhs, rhs } => {
                let w = dst.width();
                let l = self.read_ri(bank, cfg, *lhs, w)?;
                let r = self.read_ri(bank, cfg, *rhs, w)?;
                // #DE on zero divisor.
                let zero = bank.mk_bv(w, 0);
                let div0 = bank.mk_eq(r, zero);
                succs.push(cfg.to_error(bank, ErrorKind::DivByZero, div0));
                let nz = bank.mk_not(div0);
                next.assume(bank, nz);
                if *signed {
                    // #DE on INT_MIN / -1.
                    let int_min = bank.mk_bv(w, 1u128 << (w - 1));
                    let m1 = bank.mk_bv(w, u128::MAX);
                    let a_min = bank.mk_eq(l, int_min);
                    let b_m1 = bank.mk_eq(r, m1);
                    let ovf = bank.mk_and([a_min, b_m1, nz]);
                    succs.push(cfg.to_error(bank, ErrorKind::SignedOverflow, ovf));
                    let no = bank.mk_not(ovf);
                    next.assume(bank, no);
                }
                let res = match (signed, rem) {
                    (false, false) => bank.mk_bvudiv(l, r),
                    (false, true) => bank.mk_bvurem(l, r),
                    (true, false) => bank.mk_bvsdiv(l, r),
                    (true, true) => bank.mk_bvsrem(l, r),
                };
                // div leaves flags undefined; pin them to false.
                let f = bank.mk_false();
                Self::set_flags(bank, &mut next, res, f, f);
                self.write_reg(bank, &mut next, *dst, res)?;
                succs.push(next);
            }
            VxInstr::Call { callee, arg_widths, .. } => {
                let mut args = Vec::with_capacity(arg_widths.len());
                for (i, &w) in arg_widths.iter().enumerate() {
                    let r = Reg::Phys(PhysReg::args()[i], w);
                    args.push(self.read_reg(bank, cfg, r)?);
                }
                let nth = *self
                    .call_ordinals
                    .get(&(block.name.clone(), cfg.loc.index))
                    .ok_or_else(|| SemanticsError::Internal {
                        what: "call without ordinal".into(),
                    })?;
                let mut stop = cfg.clone();
                stop.status = Status::AtCall { callee: callee.clone(), nth, args };
                succs.push(stop);
            }
        }
        Ok(succs)
    }

    fn step_term(
        &self,
        bank: &mut TermBank,
        cfg: &SymConfig,
        term: &VxTerm,
    ) -> Result<Vec<SymConfig>, SemanticsError> {
        match term {
            VxTerm::Jmp { target } => {
                if self.func.block(target).is_none() {
                    return Err(SemanticsError::UnknownBlock { name: target.clone() });
                }
                let mut next = cfg.clone();
                next.loc = CtrlLoc::block_start(target.clone(), Some(cfg.loc.block.clone()));
                Ok(vec![next])
            }
            VxTerm::CondJmp { cc, then_, else_ } => {
                for t in [then_, else_] {
                    if self.func.block(t).is_none() {
                        return Err(SemanticsError::UnknownBlock { name: t.clone() });
                    }
                }
                let c = self.cond_term(bank, cfg, *cc)?;
                let mut taken = cfg.clone();
                taken.loc = CtrlLoc::block_start(then_.clone(), Some(cfg.loc.block.clone()));
                taken.assume(bank, c);
                let mut fall = cfg.clone();
                fall.loc = CtrlLoc::block_start(else_.clone(), Some(cfg.loc.block.clone()));
                let nc = bank.mk_not(c);
                fall.assume(bank, nc);
                Ok(vec![taken, fall])
            }
            VxTerm::Ud2 => {
                let t = bank.mk_true();
                Ok(vec![cfg.to_error(bank, ErrorKind::Unreachable, t)])
            }
            VxTerm::Ret => {
                let mut done = cfg.clone();
                done.status = Status::Exited {
                    ret: match self.func.ret_width {
                        Some(w) => {
                            let rax = cfg.reg("rax")?;
                            Some(if w == 64 { rax } else { bank.mk_trunc(rax, w) })
                        }
                        None => None,
                    },
                };
                Ok(vec![done])
            }
        }
    }
}

/// Adjusts a term to exactly `width` bits (zero-extending or truncating).
fn fit(bank: &mut TermBank, v: TermId, width: u32) -> TermId {
    let w = bank.width(v);
    match w.cmp(&width) {
        std::cmp::Ordering::Equal => v,
        std::cmp::Ordering::Less => bank.mk_zext(v, width),
        std::cmp::Ordering::Greater => bank.mk_trunc(v, width),
    }
}

/// Helper used by VC generation: the symbolic-state key of a register.
pub fn reg_key(reg: Reg) -> String {
    match reg {
        Reg::Virt(id, w) => format!("%vr{id}_{w}"),
        Reg::Phys(p, _) => p.name64().to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use keq_smt::Sort;

    fn mini_func(blocks: Vec<VxBlock>) -> VxFunction {
        VxFunction {
            name: "f".into(),
            num_params: 1,
            param_widths: vec![32],
            ret_width: Some(32),
            blocks,
        }
    }

    fn setup(f: &VxFunction) -> (VxSemantics<'_>, TermBank, SymConfig) {
        let mut bank = TermBank::new();
        let mem = bank.mk_var("mem", Sort::Memory);
        let x = bank.mk_var("x", Sort::BitVec(32));
        let sem = VxSemantics::new(f, MemLayout::new(), BTreeMap::new());
        let cfg = sem.initial_config(&mut bank, &[x], mem);
        (sem, bank, cfg)
    }

    #[test]
    fn copy_from_edi_reads_low_bits() {
        let f = mini_func(vec![VxBlock {
            name: "BB0".into(),
            instrs: vec![VxInstr::Copy { dst: Reg::vr32(0), src: Reg::Phys(PhysReg::Rdi, 32) }],
            term: VxTerm::Ret,
        }]);
        let (sem, mut bank, cfg) = setup(&f);
        let s = sem.step(&cfg, &mut bank).expect("steps");
        let v = s[0].reg("%vr0_32").expect("written");
        // rdi was zext(x, 64); low 32 bits are x again.
        let x = bank.mk_var("x", Sort::BitVec(32));
        assert_eq!(v, x);
    }

    #[test]
    fn eax_write_zeroes_upper_rax() {
        let f = mini_func(vec![VxBlock {
            name: "BB0".into(),
            instrs: vec![
                VxInstr::MovRI { dst: Reg::Phys(PhysReg::Rax, 64), imm: -1 },
                VxInstr::MovRI { dst: Reg::Phys(PhysReg::Rax, 32), imm: 7 },
            ],
            term: VxTerm::Ret,
        }]);
        let (sem, mut bank, cfg) = setup(&f);
        let s1 = sem.step(&cfg, &mut bank).expect("step 1");
        let s2 = sem.step(&s1[0], &mut bank).expect("step 2");
        let rax = s2[0].reg("rax").expect("rax");
        assert_eq!(bank.as_bv_const(rax), Some((64, 7)), "upper 32 bits zeroed");
    }

    #[test]
    fn ax_write_preserves_upper_rax() {
        let f = mini_func(vec![VxBlock {
            name: "BB0".into(),
            instrs: vec![
                VxInstr::MovRI { dst: Reg::Phys(PhysReg::Rax, 64), imm: 0x1111_2222_3333_4444 },
                VxInstr::MovRI { dst: Reg::Phys(PhysReg::Rax, 16), imm: 0x9999 },
            ],
            term: VxTerm::Ret,
        }]);
        let (sem, mut bank, cfg) = setup(&f);
        let s1 = sem.step(&cfg, &mut bank).expect("step 1");
        let s2 = sem.step(&s1[0], &mut bank).expect("step 2");
        let rax = s2[0].reg("rax").expect("rax");
        assert_eq!(bank.as_bv_const(rax), Some((64, 0x1111_2222_3333_9999)));
    }

    #[test]
    fn sub_then_jae_splits_on_borrow() {
        // The Fig. 2(b) loop-exit pattern: sub; jae.
        let f = mini_func(vec![
            VxBlock {
                name: "BB0".into(),
                instrs: vec![
                    VxInstr::Copy { dst: Reg::vr32(0), src: Reg::Phys(PhysReg::Rdi, 32) },
                    VxInstr::Alu {
                        op: AluOp::Sub,
                        dst: Reg::vr32(1),
                        lhs: RegImm::Reg(Reg::vr32(0)),
                        rhs: RegImm::Imm(10),
                    },
                ],
                term: VxTerm::CondJmp { cc: Cond::Ae, then_: "BB1".into(), else_: "BB2".into() },
            },
            VxBlock { name: "BB1".into(), instrs: vec![], term: VxTerm::Ret },
            VxBlock { name: "BB2".into(), instrs: vec![], term: VxTerm::Ret },
        ]);
        let (sem, mut bank, cfg) = setup(&f);
        let s1 = sem.step(&cfg, &mut bank).expect("copy");
        let s2 = sem.step(&s1[0], &mut bank).expect("sub");
        let s3 = sem.step(&s2[0], &mut bank).expect("condjmp");
        assert_eq!(s3.len(), 2);
        assert_eq!(s3[0].loc.block, "BB1");
        assert_eq!(s3[1].loc.block, "BB2");
        // Path of the taken branch is ¬cf = ¬(x <u 10); prove it matches.
        let x = bank.mk_var("x", Sort::BitVec(32));
        let ten = bank.mk_bv(32, 10);
        let ult = bank.mk_bvult(x, ten);
        let expected = bank.mk_not(ult);
        let mut solver = keq_smt::Solver::new();
        let actual = s3[0].path_term(&mut bank);
        assert!(solver.prove_equiv(&mut bank, &[], actual, expected).is_proved());
    }

    #[test]
    fn ret_truncates_rax_to_ret_width() {
        let f = mini_func(vec![VxBlock {
            name: "BB0".into(),
            instrs: vec![VxInstr::MovRI {
                dst: Reg::Phys(PhysReg::Rax, 64),
                imm: 0xffff_ffff_0000_002a,
            }],
            term: VxTerm::Ret,
        }]);
        let (sem, mut bank, cfg) = setup(&f);
        let s1 = sem.step(&cfg, &mut bank).expect("mov");
        let s2 = sem.step(&s1[0], &mut bank).expect("ret");
        match &s2[0].status {
            Status::Exited { ret: Some(r) } => {
                assert_eq!(bank.as_bv_const(*r), Some((32, 42)));
            }
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn inc_preserves_carry_flag() {
        let f = mini_func(vec![VxBlock {
            name: "BB0".into(),
            instrs: vec![
                // cmp 0, 1 sets cf (borrow).
                VxInstr::Cmp { width: 32, lhs: RegImm::Imm(0), rhs: RegImm::Imm(1) },
                VxInstr::Inc { dst: Reg::vr32(0), src: Reg::Phys(PhysReg::Rdi, 32) },
            ],
            term: VxTerm::Ret,
        }]);
        let (sem, mut bank, cfg) = setup(&f);
        let s1 = sem.step(&cfg, &mut bank).expect("cmp");
        let cf_before = s1[0].reg("cf").expect("cf");
        assert_eq!(bank.as_bool_const(cf_before), Some(true));
        let s2 = sem.step(&s1[0], &mut bank).expect("inc");
        let cf_after = s2[0].reg("cf").expect("cf");
        assert_eq!(bank.as_bool_const(cf_after), Some(true), "inc must not clobber cf");
    }

    #[test]
    fn setcc_materializes_flag() {
        let f = mini_func(vec![VxBlock {
            name: "BB0".into(),
            instrs: vec![
                VxInstr::Cmp { width: 32, lhs: RegImm::Imm(3), rhs: RegImm::Imm(3) },
                VxInstr::SetCc { cc: Cond::E, dst: Reg::Virt(0, 8) },
            ],
            term: VxTerm::Ret,
        }]);
        let (sem, mut bank, cfg) = setup(&f);
        let s1 = sem.step(&cfg, &mut bank).expect("cmp");
        let s2 = sem.step(&s1[0], &mut bank).expect("setcc");
        let v = s2[0].reg("%vr0_8").expect("set");
        assert_eq!(bank.as_bv_const(v), Some((8, 1)));
    }

    #[test]
    fn call_reads_sysv_arg_registers() {
        let f = mini_func(vec![VxBlock {
            name: "BB0".into(),
            instrs: vec![VxInstr::Call {
                callee: "g".into(),
                arg_widths: vec![32],
                ret_width: Some(32),
            }],
            term: VxTerm::Ret,
        }]);
        let (sem, mut bank, cfg) = setup(&f);
        let s = sem.step(&cfg, &mut bank).expect("call");
        match &s[0].status {
            Status::AtCall { callee, nth, args } => {
                assert_eq!(callee, "g");
                assert_eq!(*nth, 0);
                let x = bank.mk_var("x", Sort::BitVec(32));
                assert_eq!(args, &vec![x]);
            }
            other => panic!("expected AtCall, got {other:?}"),
        }
    }
}
