//! Concrete interpreter for Virtual x86 — ground truth for differential
//! testing against the LLVM interpreter across the ISel pass.

use std::collections::{BTreeMap, HashMap};

use keq_semantics::MemLayout;
use keq_smt::sort::{mask, to_signed};
use keq_smt::MemValue;

use crate::ast::{Addr, AluOp, Cond, PhysReg, Reg, RegImm, VxFunction, VxInstr, VxTerm};

/// Concrete machine state.
#[derive(Debug, Clone, Default)]
pub struct VxState {
    /// Physical registers at full width.
    pub phys: HashMap<PhysReg, u64>,
    /// Virtual registers: `(id, width) → value`.
    pub virt: HashMap<(u32, u32), u128>,
    /// Flags.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
}

/// Traps (mirroring [`crate::sem`]'s error states).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VxTrap {
    /// Out-of-bounds access.
    OutOfBounds(u64),
    /// The x86 `#DE` exception on a zero divisor.
    DivByZero,
    /// The x86 `#DE` exception on signed quotient overflow.
    SignedOverflow,
    /// `ud2` executed.
    Ud2,
    /// Fuel exhausted.
    Fuel,
    /// Malformed program.
    Malformed(String),
}

impl std::fmt::Display for VxTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VxTrap::OutOfBounds(a) => write!(f, "out-of-bounds access at {a:#x}"),
            VxTrap::DivByZero => write!(f, "#DE: division by zero"),
            VxTrap::SignedOverflow => write!(f, "#DE: signed quotient overflow"),
            VxTrap::Ud2 => write!(f, "ud2 executed"),
            VxTrap::Fuel => write!(f, "fuel exhausted"),
            VxTrap::Malformed(m) => write!(f, "malformed program: {m}"),
        }
    }
}

impl VxState {
    /// Reads a register operand.
    pub fn read(&self, r: Reg) -> Result<u128, VxTrap> {
        match r {
            Reg::Virt(id, w) => self
                .virt
                .get(&(id, w))
                .copied()
                .ok_or_else(|| VxTrap::Malformed(format!("undefined %vr{id}_{w}"))),
            Reg::Phys(p, w) => {
                let full = self
                    .phys
                    .get(&p)
                    .copied()
                    .ok_or_else(|| VxTrap::Malformed(format!("undefined {}", p.name64())))?;
                Ok(mask(w, u128::from(full)))
            }
        }
    }

    /// Writes a register operand with x86-64 sub-register semantics.
    pub fn write(&mut self, r: Reg, v: u128) -> Result<(), VxTrap> {
        match r {
            Reg::Virt(id, w) => {
                self.virt.insert((id, w), mask(w, v));
            }
            Reg::Phys(p, w) => {
                let new = match w {
                    64 => v as u64,
                    32 => mask(32, v) as u64, // zeroing write
                    _ => {
                        let old = self.phys.get(&p).copied().unwrap_or(0);
                        let m = mask(w, u128::MAX) as u64;
                        (old & !m) | (mask(w, v) as u64)
                    }
                };
                self.phys.insert(p, new);
            }
        }
        Ok(())
    }

    fn read_ri(&self, ri: RegImm, width: u32) -> Result<u128, VxTrap> {
        match ri {
            RegImm::Reg(r) => Ok(mask(width, self.read(r)?)),
            RegImm::Imm(i) => Ok(mask(width, i as u128)),
        }
    }

    fn cond(&self, cc: Cond) -> bool {
        match cc {
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !(self.cf || self.zf),
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => (self.sf != self.of) || self.zf,
            Cond::G => !((self.sf != self.of) || self.zf),
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
        }
    }

    fn set_zs(&mut self, w: u32, res: u128) {
        self.zf = res == 0;
        self.sf = (res >> (w - 1)) & 1 == 1;
    }
}

/// Runs a Virtual x86 function concretely.
///
/// Arguments go to the SysV registers; the result is read from `rax` at the
/// function's return width.
///
/// # Errors
///
/// Returns a [`VxTrap`] on out-of-bounds access, fuel exhaustion, or a
/// malformed program.
pub fn run_vx_function(
    func: &VxFunction,
    layout: &MemLayout,
    globals: &BTreeMap<String, u64>,
    args: &[u128],
    mem: &mut MemValue,
    fuel: u64,
    ext: &dyn Fn(&str, &[u128]) -> u128,
) -> Result<Option<u128>, VxTrap> {
    let mut st = VxState::default();
    for (i, &a) in args.iter().enumerate() {
        st.phys.insert(PhysReg::args()[i], mask(64, a) as u64);
    }
    let mut fuel = fuel;
    let mut block = func.entry();
    let mut prev: Option<&str> = None;
    'blocks: loop {
        // Parallel PHI reads.
        let mut phi_writes: Vec<(Reg, u128)> = Vec::new();
        let mut body_start = 0;
        for (i, instr) in block.instrs.iter().enumerate() {
            if let VxInstr::Phi { dst, incomings } = instr {
                let p = prev
                    .ok_or_else(|| VxTrap::Malformed("PHI in entry block".into()))?;
                let (src, _) = incomings
                    .iter()
                    .find(|(_, bb)| bb == p)
                    .ok_or_else(|| VxTrap::Malformed(format!("PHI missing incoming {p}")))?;
                phi_writes.push((*dst, st.read(*src)?));
                body_start = i + 1;
            } else {
                break;
            }
        }
        for (dst, v) in phi_writes {
            st.write(dst, v)?;
        }
        for instr in &block.instrs[body_start..] {
            if fuel == 0 {
                return Err(VxTrap::Fuel);
            }
            fuel -= 1;
            exec(instr, &mut st, mem, layout, globals, ext)?;
        }
        if fuel == 0 {
            return Err(VxTrap::Fuel);
        }
        fuel -= 1;
        match &block.term {
            VxTerm::Jmp { target } => {
                prev = Some(&block.name);
                block = func
                    .block(target)
                    .ok_or_else(|| VxTrap::Malformed(format!("unknown block {target}")))?;
                continue 'blocks;
            }
            VxTerm::CondJmp { cc, then_, else_ } => {
                let t = if st.cond(*cc) { then_ } else { else_ };
                prev = Some(&block.name);
                block = func
                    .block(t)
                    .ok_or_else(|| VxTrap::Malformed(format!("unknown block {t}")))?;
                continue 'blocks;
            }
            VxTerm::Ud2 => return Err(VxTrap::Ud2),
            VxTerm::Ret => {
                return Ok(func.ret_width.map(|w| {
                    mask(w, u128::from(st.phys.get(&PhysReg::Rax).copied().unwrap_or(0)))
                }));
            }
        }
    }
}

fn addr_of(
    addr: &Addr,
    st: &VxState,
    globals: &BTreeMap<String, u64>,
) -> Result<u64, VxTrap> {
    let mut a: u64 = if let Some(g) = &addr.global {
        globals
            .get(g)
            .copied()
            .ok_or_else(|| VxTrap::Malformed(format!("unknown global {g}")))?
            .wrapping_add(addr.disp as u64)
    } else {
        addr.disp as u64
    };
    if let Some(b) = addr.base {
        a = a.wrapping_add(mask(64, st.read(b)?) as u64);
    }
    if let Some((i, s)) = addr.index {
        a = a.wrapping_add((mask(64, st.read(i)?) as u64).wrapping_mul(u64::from(s)));
    }
    Ok(a)
}

fn check_bounds(layout: &MemLayout, addr: u64, n: u64) -> Result<(), VxTrap> {
    let ok = layout
        .regions
        .iter()
        .any(|r| r.size >= n && addr >= r.base && addr <= r.base + r.size - n);
    if ok {
        Ok(())
    } else {
        Err(VxTrap::OutOfBounds(addr))
    }
}

fn exec(
    instr: &VxInstr,
    st: &mut VxState,
    mem: &mut MemValue,
    layout: &MemLayout,
    globals: &BTreeMap<String, u64>,
    ext: &dyn Fn(&str, &[u128]) -> u128,
) -> Result<(), VxTrap> {
    match instr {
        VxInstr::Copy { dst, src } => {
            let v = st.read(*src)?;
            st.write(*dst, v)?;
        }
        VxInstr::Phi { .. } => {
            return Err(VxTrap::Malformed("PHI not at block start".into()));
        }
        VxInstr::MovRI { dst, imm } => st.write(*dst, *imm as u128)?,
        VxInstr::Load { dst, width, addr, zext: _ } => {
            let a = addr_of(addr, st, globals)?;
            let n = u64::from(width / 8);
            check_bounds(layout, a, n)?;
            let mut v: u128 = 0;
            for k in 0..n {
                v |= u128::from(mem.read(a + k)) << (8 * k);
            }
            st.write(*dst, v)?;
        }
        VxInstr::Store { width, addr, src } => {
            let a = addr_of(addr, st, globals)?;
            let v = st.read_ri(*src, *width)?;
            let n = u64::from(width / 8);
            check_bounds(layout, a, n)?;
            for k in 0..n {
                mem.writes.insert(a + k, (v >> (8 * k)) as u8);
            }
        }
        VxInstr::Alu { op, dst, lhs, rhs } => {
            let w = dst.width();
            let l = st.read_ri(*lhs, w)?;
            let r = st.read_ri(*rhs, w)?;
            let res = match op {
                AluOp::Add => l.wrapping_add(r),
                AluOp::Sub => l.wrapping_sub(r),
                AluOp::Imul => l.wrapping_mul(r),
                AluOp::And => l & r,
                AluOp::Or => l | r,
                AluOp::Xor => l ^ r,
                AluOp::Shl => {
                    if r >= u128::from(w) {
                        0
                    } else {
                        l << r
                    }
                }
                AluOp::Shr => {
                    if r >= u128::from(w) {
                        0
                    } else {
                        l >> r
                    }
                }
                AluOp::Sar => {
                    let k = r.min(u128::from(w - 1)) as u32;
                    (to_signed(w, l) >> k) as u128
                }
            };
            let res = mask(w, res);
            match op {
                AluOp::Add => {
                    st.cf = l.checked_add(r).is_none_or(|s| s > mask(w, u128::MAX));
                    st.of = to_signed(w, l)
                        .checked_add(to_signed(w, r))
                        .is_none_or(|s| s != to_signed(w, res));
                }
                AluOp::Sub => {
                    st.cf = l < r;
                    st.of = to_signed(w, l)
                        .checked_sub(to_signed(w, r))
                        .is_none_or(|s| s != to_signed(w, res));
                }
                AluOp::Imul => {
                    let wide = to_signed(w, l).wrapping_mul(to_signed(w, r));
                    let ovf = wide != to_signed(w, res);
                    st.cf = ovf;
                    st.of = ovf;
                }
                _ => {
                    st.cf = false;
                    st.of = false;
                }
            }
            st.set_zs(w, res);
            st.write(*dst, res)?;
        }
        VxInstr::Cmp { width, lhs, rhs } => {
            let w = *width;
            let l = st.read_ri(*lhs, w)?;
            let r = st.read_ri(*rhs, w)?;
            let res = mask(w, l.wrapping_sub(r));
            st.cf = l < r;
            st.of = to_signed(w, l)
                .checked_sub(to_signed(w, r))
                .is_none_or(|s| s != to_signed(w, res));
            st.set_zs(w, res);
        }
        VxInstr::Inc { dst, src } => {
            let w = dst.width();
            let v = st.read(*src)?;
            let res = mask(w, v.wrapping_add(1));
            st.of = to_signed(w, v)
                .checked_add(1)
                .is_none_or(|s| s != to_signed(w, res));
            st.set_zs(w, res);
            // cf preserved.
            st.write(*dst, res)?;
        }
        VxInstr::Lea { dst, addr } => {
            let a = addr_of(addr, st, globals)?;
            st.write(*dst, u128::from(a))?;
        }
        VxInstr::Ext { dst, src, signed } => {
            let v = st.read(*src)?;
            let w = match *src {
                Reg::Virt(_, w) | Reg::Phys(_, w) => w,
            };
            let r = if *signed { to_signed(w, v) as u128 } else { v };
            st.write(*dst, r)?;
        }
        VxInstr::SetCc { cc, dst } => {
            let v = u128::from(st.cond(*cc));
            st.write(*dst, v)?;
        }
        VxInstr::Div { signed, rem, dst, lhs, rhs } => {
            let w = dst.width();
            let l = st.read_ri(*lhs, w)?;
            let r = st.read_ri(*rhs, w)?;
            if r == 0 {
                return Err(VxTrap::DivByZero);
            }
            let res = if *signed {
                let (x, y) = (to_signed(w, l), to_signed(w, r));
                let int_min = if w == 128 { i128::MIN } else { -(1i128 << (w - 1)) };
                if x == int_min && y == -1 {
                    return Err(VxTrap::SignedOverflow);
                }
                if *rem {
                    x.wrapping_rem(y) as u128
                } else {
                    x.wrapping_div(y) as u128
                }
            } else if *rem {
                l % r
            } else {
                l / r
            };
            let res = mask(w, res);
            st.cf = false;
            st.of = false;
            st.set_zs(w, res);
            st.write(*dst, res)?;
        }
        VxInstr::Call { callee, arg_widths, ret_width } => {
            let mut args = Vec::with_capacity(arg_widths.len());
            for (i, &w) in arg_widths.iter().enumerate() {
                args.push(st.read(Reg::Phys(PhysReg::args()[i], w))?);
            }
            let r = ext(callee, &args);
            if let Some(w) = ret_width {
                st.write(Reg::Phys(PhysReg::Rax, *w), mask(*w, r))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn no_ext(_: &str, _: &[u128]) -> u128 {
        0
    }

    #[test]
    fn add_and_ret() {
        let f = VxFunction {
            name: "f".into(),
            num_params: 2,
            param_widths: vec![32, 32],
            ret_width: Some(32),
            blocks: vec![VxBlock {
                name: "BB0".into(),
                instrs: vec![
                    VxInstr::Copy { dst: Reg::vr32(0), src: Reg::Phys(PhysReg::Rdi, 32) },
                    VxInstr::Copy { dst: Reg::vr32(1), src: Reg::Phys(PhysReg::Rsi, 32) },
                    VxInstr::Alu {
                        op: AluOp::Add,
                        dst: Reg::vr32(2),
                        lhs: RegImm::Reg(Reg::vr32(0)),
                        rhs: RegImm::Reg(Reg::vr32(1)),
                    },
                    VxInstr::Copy { dst: Reg::Phys(PhysReg::Rax, 32), src: Reg::vr32(2) },
                ],
                term: VxTerm::Ret,
            }],
        };
        let mut mem = MemValue::default();
        let r = run_vx_function(
            &f,
            &MemLayout::new(),
            &BTreeMap::new(),
            &[40, 2],
            &mut mem,
            1000,
            &no_ext,
        )
        .expect("runs")
        .expect("value");
        assert_eq!(r, 42);
    }

    #[test]
    fn rip_relative_store_and_bounds() {
        let mut layout = MemLayout::new();
        layout.add_region("@b", 0x1000, 8);
        let mut globals = BTreeMap::new();
        globals.insert("b".to_owned(), 0x1000u64);
        let f = VxFunction {
            name: "foo".into(),
            num_params: 0,
            param_widths: vec![],
            ret_width: None,
            blocks: vec![VxBlock {
                name: "BB0".into(),
                instrs: vec![VxInstr::Store {
                    width: 16,
                    addr: Addr::global("b", 2),
                    src: RegImm::Imm(0x0201),
                }],
                term: VxTerm::Ret,
            }],
        };
        let mut mem = MemValue::default();
        run_vx_function(&f, &layout, &globals, &[], &mut mem, 100, &no_ext).expect("runs");
        assert_eq!(mem.read(0x1002), 0x01);
        assert_eq!(mem.read(0x1003), 0x02);
        // Out-of-bounds store at b+7 (2 bytes) must trap.
        let f2 = VxFunction {
            blocks: vec![VxBlock {
                name: "BB0".into(),
                instrs: vec![VxInstr::Store {
                    width: 16,
                    addr: Addr::global("b", 7),
                    src: RegImm::Imm(0),
                }],
                term: VxTerm::Ret,
            }],
            ..f
        };
        let r = run_vx_function(&f2, &layout, &globals, &[], &mut mem, 100, &no_ext);
        assert_eq!(r, Err(VxTrap::OutOfBounds(0x1007)));
    }

    #[test]
    fn loop_with_phi_and_flags() {
        // Sum 0..n via: BB0: vr0=0 (sum), vr1=0 (i); BB1: phi; cmp i, n;
        // jae exit; body adds.
        let f = VxFunction {
            name: "sum".into(),
            num_params: 1,
            param_widths: vec![32],
            ret_width: Some(32),
            blocks: vec![
                VxBlock {
                    name: "BB0".into(),
                    instrs: vec![
                        VxInstr::MovRI { dst: Reg::vr32(0), imm: 0 },
                        VxInstr::MovRI { dst: Reg::vr32(1), imm: 0 },
                        VxInstr::Copy { dst: Reg::vr32(5), src: Reg::Phys(PhysReg::Rdi, 32) },
                    ],
                    term: VxTerm::Jmp { target: "BB1".into() },
                },
                VxBlock {
                    name: "BB1".into(),
                    instrs: vec![
                        VxInstr::Phi {
                            dst: Reg::vr32(2),
                            incomings: vec![
                                (Reg::vr32(0), "BB0".into()),
                                (Reg::vr32(4), "BB2".into()),
                            ],
                        },
                        VxInstr::Phi {
                            dst: Reg::vr32(3),
                            incomings: vec![
                                (Reg::vr32(1), "BB0".into()),
                                (Reg::vr32(6), "BB2".into()),
                            ],
                        },
                        VxInstr::Cmp {
                            width: 32,
                            lhs: RegImm::Reg(Reg::vr32(3)),
                            rhs: RegImm::Reg(Reg::vr32(5)),
                        },
                    ],
                    term: VxTerm::CondJmp {
                        cc: Cond::Ae,
                        then_: "BB3".into(),
                        else_: "BB2".into(),
                    },
                },
                VxBlock {
                    name: "BB2".into(),
                    instrs: vec![
                        VxInstr::Alu {
                            op: AluOp::Add,
                            dst: Reg::vr32(4),
                            lhs: RegImm::Reg(Reg::vr32(2)),
                            rhs: RegImm::Reg(Reg::vr32(3)),
                        },
                        VxInstr::Inc { dst: Reg::vr32(6), src: Reg::vr32(3) },
                    ],
                    term: VxTerm::Jmp { target: "BB1".into() },
                },
                VxBlock {
                    name: "BB3".into(),
                    instrs: vec![VxInstr::Copy {
                        dst: Reg::Phys(PhysReg::Rax, 32),
                        src: Reg::vr32(2),
                    }],
                    term: VxTerm::Ret,
                },
            ],
        };
        let mut mem = MemValue::default();
        let r = run_vx_function(
            &f,
            &MemLayout::new(),
            &BTreeMap::new(),
            &[5],
            &mut mem,
            10_000,
            &no_ext,
        )
        .expect("runs")
        .expect("value");
        assert_eq!(r, 1 + 2 + 3 + 4);
    }
}
