//! Abstract syntax of "Virtual x86" — the LLVM Machine IR specialized to
//! x86-64 that Instruction Selection emits (paper §4.3).
//!
//! Virtual x86 keeps Machine IR's high-level features: an unlimited supply
//! of SSA virtual registers, the `COPY` and `PHI` pseudo-instructions, and
//! a frame abstraction — combined with x86-64 opcodes, physical registers,
//! and `eflags`.

use std::fmt;

/// The sixteen 64-bit general-purpose registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum PhysReg {
    Rax,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rbp,
    Rsp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl PhysReg {
    /// The canonical 64-bit name (the key used in symbolic configurations).
    pub fn name64(self) -> &'static str {
        match self {
            PhysReg::Rax => "rax",
            PhysReg::Rbx => "rbx",
            PhysReg::Rcx => "rcx",
            PhysReg::Rdx => "rdx",
            PhysReg::Rsi => "rsi",
            PhysReg::Rdi => "rdi",
            PhysReg::Rbp => "rbp",
            PhysReg::Rsp => "rsp",
            PhysReg::R8 => "r8",
            PhysReg::R9 => "r9",
            PhysReg::R10 => "r10",
            PhysReg::R11 => "r11",
            PhysReg::R12 => "r12",
            PhysReg::R13 => "r13",
            PhysReg::R14 => "r14",
            PhysReg::R15 => "r15",
        }
    }

    /// The conventional name of the `width`-bit view (e.g. `eax`, `ax`,
    /// `al`, `r8d`).
    pub fn view_name(self, width: u32) -> String {
        let base = self.name64();
        match self {
            PhysReg::R8
            | PhysReg::R9
            | PhysReg::R10
            | PhysReg::R11
            | PhysReg::R12
            | PhysReg::R13
            | PhysReg::R14
            | PhysReg::R15 => match width {
                64 => base.to_owned(),
                32 => format!("{base}d"),
                16 => format!("{base}w"),
                8 => format!("{base}b"),
                other => panic!("bad register width {other}"),
            },
            _ => {
                let stem = &base[1..]; // "ax", "bx", "si", …
                match width {
                    64 => base.to_owned(),
                    32 => format!("e{stem}"),
                    16 => stem.to_owned(),
                    8 => format!("{}l", &stem[..1]), // al, bl, cl, dl; sil etc. simplified
                    other => panic!("bad register width {other}"),
                }
            }
        }
    }

    /// Parses any view name back to `(reg, width)`.
    pub fn parse(name: &str) -> Option<(PhysReg, u32)> {
        use PhysReg::*;
        let all = [
            Rax, Rbx, Rcx, Rdx, Rsi, Rdi, Rbp, Rsp, R8, R9, R10, R11, R12, R13, R14, R15,
        ];
        for r in all {
            for w in [64, 32, 16, 8] {
                if r.view_name(w) == name {
                    return Some((r, w));
                }
            }
        }
        None
    }

    /// The SysV AMD64 integer-argument registers, in order.
    pub fn args() -> [PhysReg; 6] {
        [PhysReg::Rdi, PhysReg::Rsi, PhysReg::Rdx, PhysReg::Rcx, PhysReg::R8, PhysReg::R9]
    }
}

/// A register operand: a physical view or a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reg {
    /// A physical register viewed at `width` bits.
    Phys(PhysReg, u32),
    /// Virtual register `%vr<id>_<width>`.
    Virt(u32, u32),
}

impl Reg {
    /// The operand width in bits.
    pub fn width(self) -> u32 {
        match self {
            Reg::Phys(_, w) | Reg::Virt(_, w) => w,
        }
    }

    /// 32-bit virtual register shorthand.
    pub fn vr32(id: u32) -> Reg {
        Reg::Virt(id, 32)
    }

    /// 64-bit virtual register shorthand.
    pub fn vr64(id: u32) -> Reg {
        Reg::Virt(id, 64)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Phys(r, w) => write!(f, "{}", r.view_name(*w)),
            Reg::Virt(id, w) => write!(f, "%vr{id}_{w}"),
        }
    }
}

/// A register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegImm {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i128),
}

impl fmt::Display for RegImm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegImm::Reg(r) => write!(f, "{r}"),
            RegImm::Imm(i) => write!(f, "${i}"),
        }
    }
}

/// A memory address: `global + disp` (rip-relative) or `base + index*scale
/// + disp`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Addr {
    /// Rip-relative global symbol.
    pub global: Option<String>,
    /// Base register.
    pub base: Option<Reg>,
    /// `(index register, scale)`.
    pub index: Option<(Reg, u8)>,
    /// Displacement.
    pub disp: i64,
}

impl Addr {
    /// A rip-relative global with displacement (`sym+disp(%rip)`).
    pub fn global(sym: impl Into<String>, disp: i64) -> Addr {
        Addr { global: Some(sym.into()), base: None, index: None, disp }
    }

    /// A plain `disp(base)` address.
    pub fn base_disp(base: Reg, disp: i64) -> Addr {
        Addr { global: None, base: Some(base), index: None, disp }
    }

    /// An absolute address.
    pub fn absolute(disp: i64) -> Addr {
        Addr { global: None, base: None, index: None, disp }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = &self.global {
            if self.disp != 0 {
                write!(f, "{g}+{}(%rip)", self.disp)
            } else {
                write!(f, "{g}(%rip)")
            }
        } else {
            if self.disp != 0 || self.base.is_none() {
                write!(f, "{}", self.disp)?;
            }
            if let Some(b) = &self.base {
                write!(f, "({b}")?;
                if let Some((i, s)) = &self.index {
                    write!(f, ",{i},{s}")?;
                }
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

/// Two-operand ALU operations (three-address in SSA Virtual x86).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Imul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sar,
}

impl AluOp {
    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Imul => "imul",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
        }
    }
}

/// Condition codes over `eflags`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cond {
    E,
    Ne,
    B,
    Ae,
    Be,
    A,
    L,
    Ge,
    Le,
    G,
    S,
    Ns,
}

impl Cond {
    /// Mnemonic suffix (`jae`, `sete`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::S => "s",
            Cond::Ns => "ns",
        }
    }

    /// The condition testing the opposite outcome.
    pub fn negate(self) -> Cond {
        match self {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::L => Cond::Ge,
            Cond::Ge => Cond::L,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
        }
    }
}

/// Virtual x86 instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum VxInstr {
    /// The `COPY` pseudo-instruction.
    Copy {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// The `PHI` pseudo-instruction.
    Phi {
        /// Destination.
        dst: Reg,
        /// `(source register, predecessor block)` pairs.
        incomings: Vec<(Reg, String)>,
    },
    /// `mov` immediate to register.
    MovRI {
        /// Destination.
        dst: Reg,
        /// Immediate.
        imm: i128,
    },
    /// Load: `dst = mov width [addr]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Access width in bits (may differ from `dst` width only for
        /// `movzx`-style widening, expressed by `zext`).
        width: u32,
        /// Address.
        addr: Addr,
        /// Zero-extend a narrower load into the destination.
        zext: bool,
    },
    /// Store: `mov width [addr] = src`.
    Store {
        /// Access width in bits.
        width: u32,
        /// Address.
        addr: Addr,
        /// Value.
        src: RegImm,
    },
    /// Three-address ALU operation; sets flags.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination (defines the width).
        dst: Reg,
        /// Left operand.
        lhs: RegImm,
        /// Right operand.
        rhs: RegImm,
    },
    /// `cmp lhs, rhs` — computes `lhs - rhs` for flags only.
    Cmp {
        /// Operand width.
        width: u32,
        /// Left operand.
        lhs: RegImm,
        /// Right operand.
        rhs: RegImm,
    },
    /// `inc`: `dst = src + 1`; sets all flags except `cf` (x86 quirk).
    Inc {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// `lea dst, [addr]` — address arithmetic, no flags, no access.
    Lea {
        /// Destination.
        dst: Reg,
        /// Address.
        addr: Addr,
    },
    /// `movzx`/`movsx` between registers.
    Ext {
        /// Destination (wider).
        dst: Reg,
        /// Source (narrower).
        src: Reg,
        /// `true` for sign extension.
        signed: bool,
    },
    /// `set<cc> dst` — materializes a condition into an 8-bit register.
    SetCc {
        /// Condition.
        cc: Cond,
        /// Destination (8-bit).
        dst: Reg,
    },
    /// Division (`div`/`idiv` family, simplified to three-address form).
    ///
    /// Raises the x86 `#DE` exception — modelled as error states — on a
    /// zero divisor and on signed `INT_MIN / -1` overflow.
    Div {
        /// `true` for `idiv` (signed).
        signed: bool,
        /// `true` to produce the remainder instead of the quotient.
        rem: bool,
        /// Destination.
        dst: Reg,
        /// Dividend.
        lhs: RegImm,
        /// Divisor.
        rhs: RegImm,
    },
    /// Call to an external function following the SysV convention.
    Call {
        /// Callee symbol.
        callee: String,
        /// Widths of the integer arguments (read from the argument
        /// registers in order).
        arg_widths: Vec<u32>,
        /// Width of the return value placed in `rax` (`None` for void).
        ret_width: Option<u32>,
    },
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum VxTerm {
    /// `jmp target`.
    Jmp {
        /// Target block.
        target: String,
    },
    /// `j<cc> then_; jmp else_`.
    CondJmp {
        /// Condition.
        cc: Cond,
        /// Target when the condition holds.
        then_: String,
        /// Fallthrough target.
        else_: String,
    },
    /// `ret`.
    Ret,
    /// `ud2` — the undefined-instruction trap ISel emits for
    /// `unreachable`.
    Ud2,
}

impl VxTerm {
    /// Successor block names.
    pub fn successors(&self) -> Vec<&str> {
        match self {
            VxTerm::Jmp { target } => vec![target],
            VxTerm::CondJmp { then_, else_, .. } => vec![then_, else_],
            VxTerm::Ret | VxTerm::Ud2 => vec![],
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct VxBlock {
    /// Label.
    pub name: String,
    /// Body.
    pub instrs: Vec<VxInstr>,
    /// Terminator.
    pub term: VxTerm,
}

/// A Virtual x86 function.
#[derive(Debug, Clone, PartialEq)]
pub struct VxFunction {
    /// Symbol name.
    pub name: String,
    /// Number of integer parameters (arriving in the SysV registers).
    pub num_params: usize,
    /// Widths of the parameters.
    pub param_widths: Vec<u32>,
    /// Width of the return value in `rax` (`None` for void).
    pub ret_width: Option<u32>,
    /// Blocks; the first is the entry.
    pub blocks: Vec<VxBlock>,
}

impl VxFunction {
    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks.
    pub fn entry(&self) -> &VxBlock {
        self.blocks.first().expect("function has no blocks")
    }

    /// Looks up a block by name.
    pub fn block(&self, name: &str) -> Option<&VxBlock> {
        self.blocks.iter().find(|b| b.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_reg_views() {
        assert_eq!(PhysReg::Rax.view_name(64), "rax");
        assert_eq!(PhysReg::Rax.view_name(32), "eax");
        assert_eq!(PhysReg::Rax.view_name(16), "ax");
        assert_eq!(PhysReg::Rax.view_name(8), "al");
        assert_eq!(PhysReg::R8.view_name(32), "r8d");
        assert_eq!(PhysReg::Rdi.view_name(32), "edi");
    }

    #[test]
    fn phys_reg_parse_roundtrip() {
        for name in ["rax", "eax", "edi", "r9d", "dl", "sp", "r15b"] {
            let (r, w) = PhysReg::parse(name).unwrap_or_else(|| panic!("{name} parses"));
            assert_eq!(r.view_name(w), name);
        }
        assert_eq!(PhysReg::parse("xyz"), None);
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::vr32(7).to_string(), "%vr7_32");
        assert_eq!(Reg::Phys(PhysReg::Rdi, 32).to_string(), "edi");
    }

    #[test]
    fn addr_display() {
        assert_eq!(Addr::global("b", 2).to_string(), "b+2(%rip)");
        assert_eq!(Addr::global("b", 0).to_string(), "b(%rip)");
        assert_eq!(Addr::base_disp(Reg::vr64(3), 8).to_string(), "8(%vr3_64)");
        assert_eq!(Addr::absolute(0x1000).to_string(), "4096");
    }

    #[test]
    fn cond_negation_is_involutive() {
        for c in [
            Cond::E,
            Cond::Ne,
            Cond::B,
            Cond::Ae,
            Cond::Be,
            Cond::A,
            Cond::L,
            Cond::Ge,
            Cond::Le,
            Cond::G,
            Cond::S,
            Cond::Ns,
        ] {
            assert_eq!(c.negate().negate(), c);
        }
    }
}
