//! Facade crate re-exporting the full KEQ reproduction API.
pub use keq_core as core;
pub use keq_harness as harness;
pub use keq_imp as imp;
pub use keq_isel as isel;
pub use keq_llvm as llvm;
pub use keq_semantics as semantics;
pub use keq_smt as smt;
pub use keq_trace as trace;
pub use keq_vx86 as vx86;
pub use keq_workload as workload;
