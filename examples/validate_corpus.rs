//! Mini version of the paper's §5.1 experiment: generate a corpus of
//! structured functions, compile each with ISel, and validate every
//! translation, printing per-function results and the Fig. 6-style summary.
//!
//! Run with: `cargo run --release --example validate_corpus [N]`

use std::time::Duration;

use keq_repro::core::KeqOptions;
use keq_repro::smt::Budget;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let opts = KeqOptions {
        time_limit: Some(Duration::from_secs(20)),
        solver_budget: Budget {
            max_conflicts: 500_000,
            max_terms: 2_000_000,
            max_time: Some(Duration::from_secs(5)),
        },
        ..KeqOptions::default()
    };
    println!("validating {n} generated functions...");
    let (_module, summary) = keq_bench::run_corpus(2021, n, opts);
    for row in &summary.rows {
        println!(
            "  {:<8} {:>4} instrs  {:>9.2?}  {:?}",
            row.name, row.size, row.time, row.result
        );
    }
    println!(
        "\nvalidated {}/{} ({:.1}%) — the paper reports 4331/4732 (91.52%)",
        summary.count(keq_bench::ResultKind::Succeeded),
        summary.total(),
        summary.success_rate() * 100.0
    );
}
