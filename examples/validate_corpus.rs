//! Mini version of the paper's §5.1 experiment: generate a corpus of
//! structured functions, compile each with ISel, and validate every
//! translation, printing per-function results and the Fig. 6-style summary.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example validate_corpus -- [N] [--seed S] \
//!     [--report RUN_REPORT.json] [--trace-jsonl trace.jsonl] \
//!     [--cache obligations.keqcache]
//! ```
//!
//! `--report` turns on tracing, collects the run's event journal, and
//! writes the aggregated machine-readable report (schema
//! `keq-run-report/v2`; see DESIGN.md §Observability). `--trace-jsonl`
//! additionally streams every raw event as one JSON line. `--cache`
//! persists the shared obligation cache across runs: proved obligations
//! are written back at the end and warm-start the next invocation.

use std::sync::Arc;
use std::time::Duration;

use keq_repro::core::KeqOptions;
use keq_repro::harness::{build_report, HarnessOptions};
use keq_repro::smt::Budget;
use keq_repro::trace::{Fanout, Journal, JsonlSink, TraceSink};

struct Cli {
    n: usize,
    seed: u64,
    report: Option<String>,
    trace_jsonl: Option<String>,
    cache: Option<String>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli { n: 20, seed: 2021, report: None, trace_jsonl: None, cache: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                cli.seed = args.next().and_then(|s| s.parse().ok()).expect("--seed <u64>");
            }
            "--report" => cli.report = Some(args.next().expect("--report <path>")),
            "--trace-jsonl" => {
                cli.trace_jsonl = Some(args.next().expect("--trace-jsonl <path>"));
            }
            "--cache" => cli.cache = Some(args.next().expect("--cache <path>")),
            other => match other.parse() {
                Ok(n) => cli.n = n,
                Err(_) => {
                    eprintln!(
                        "usage: validate_corpus [N] [--seed S] [--report PATH] \
                         [--trace-jsonl PATH] [--cache PATH]"
                    );
                    std::process::exit(2);
                }
            },
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let keq = KeqOptions {
        time_limit: Some(Duration::from_secs(20)),
        solver_budget: Budget {
            max_conflicts: 500_000,
            max_terms: 2_000_000,
            max_time: Some(Duration::from_secs(5)),
        },
        ..KeqOptions::default()
    };

    // Tracing is opt-in: without --report/--trace-jsonl every probe site
    // in the pipeline stays on its one-branch disabled path.
    let tracing = cli.report.is_some() || cli.trace_jsonl.is_some();
    let journal = Arc::new(Journal::with_default_capacity());
    let trace = if tracing {
        let mut sinks = vec![TraceSink::from(Arc::clone(&journal))];
        if let Some(path) = &cli.trace_jsonl {
            let file = std::fs::File::create(path).expect("create --trace-jsonl file");
            sinks.push(TraceSink::from(Arc::new(JsonlSink::new(file))));
        }
        Some(TraceSink::from(Arc::new(Fanout::new(sinks))))
    } else {
        None
    };
    let cache_path = cli.cache.as_ref().map(std::path::PathBuf::from);
    let opts = HarnessOptions { keq, trace, cache_path, ..HarnessOptions::default() };

    println!("validating {} generated functions (seed {})...", cli.n, cli.seed);
    let (_module, summary) = keq_bench::run_corpus_with(cli.seed, cli.n, &opts);
    for row in &summary.rows {
        println!(
            "  {:<8} {:>4} instrs  {:>9.2?}  {:?}",
            row.name, row.size, row.time, row.result
        );
    }
    println!(
        "\nvalidated {}/{} ({:.1}%) — the paper reports 4331/4732 (91.52%)",
        summary.count(keq_bench::ResultKind::Succeeded),
        summary.total(),
        summary.success_rate() * 100.0
    );
    println!("{}", summary.summary_line());
    if let Some(path) = &cli.cache {
        println!(
            "obligation store {path}: loaded {} rejected {} persisted {} ({} bytes)",
            summary.cache.disk_loaded,
            summary.cache.disk_rejected,
            summary.cache.disk_persisted,
            summary.cache.disk_bytes,
        );
    }

    if let Some(path) = &cli.report {
        let report = build_report(&summary, Some(&journal), cli.seed);
        std::fs::write(path, report.to_json()).expect("write --report file");
        eprintln!("wrote {path}");
    }
}
