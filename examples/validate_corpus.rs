//! Mini version of the paper's §5.1 experiment: generate a corpus of
//! structured functions, compile each with ISel, and validate every
//! translation, printing per-function results and the Fig. 6-style summary.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example validate_corpus -- [N] [--seed S] \
//!     [--pass isel,regalloc,gvn] [--pressure K] \
//!     [--report RUN_REPORT.json] [--trace-jsonl trace.jsonl] \
//!     [--cache obligations.keqcache] [--journal run.keqwal] [--resume] \
//!     [--chaos CYCLES] [--metrics]
//! ```
//!
//! `--pass` selects which validated passes run over the corpus (default
//! `isel`); a comma list fans every function out across all of them, and
//! each printed row names its pass. `--pressure K` switches the generator
//! to its high-register-pressure profile (K extra whole-body-live
//! temporaries), which forces the spilling register allocator onto its
//! spill path when combined with `--pass regalloc`.
//!
//! `--report` turns on tracing, collects the run's event journal, and
//! writes the aggregated machine-readable report (schema
//! `keq-run-report/v3`; see DESIGN.md §Observability). `--trace-jsonl`
//! additionally streams every raw event as one JSON line. `--cache`
//! persists the shared obligation cache across runs: proved obligations
//! are flushed incrementally and warm-start the next invocation.
//!
//! `--metrics` turns on the live telemetry registry: the run then prints
//! its slowest obligations with per-phase breakdowns, and the telemetry
//! section (collector samples + slow table) lands in `--report` output.
//!
//! `--journal` appends every finalized verdict to a write-ahead journal;
//! `--resume` recovers a killed run from it, skipping already-decided
//! functions. `--chaos CYCLES` runs the crash-safety campaign: one clean
//! in-process reference run, then up to CYCLES re-executions of this
//! binary that are killed (`abort`) at seeded offsets mid-run and resumed,
//! then a final resumed run — asserting the merged verdict table is
//! identical to the uninterrupted one (exit 1 on divergence). The chaos
//! runs inject deterministic pipeline faults (panics, forced budget
//! exhaustion) plus storage faults (torn journal writes, short reads), so
//! the campaign exercises recovery, not just the happy path.

use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use keq_repro::core::KeqOptions;
use keq_repro::harness::{build_report, HarnessOptions, RetryPolicy};
use keq_repro::isel::PassId;
use keq_repro::smt::{mix64, Budget, FaultPlan, Rate};
use keq_repro::trace::{Fanout, Journal, JsonlSink, TraceSink};

struct Cli {
    n: usize,
    seed: u64,
    passes: Vec<PassId>,
    pressure: usize,
    report: Option<String>,
    trace_jsonl: Option<String>,
    cache: Option<String>,
    journal: Option<String>,
    resume: bool,
    metrics: bool,
    chaos: Option<u32>,
    /// Internal (chaos children): arm an abort timer this many ms in.
    kill_after_ms: Option<u64>,
    /// Internal (chaos children + reference): install the chaos fault plan.
    chaos_run: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        n: 20,
        seed: 2021,
        passes: Vec::new(),
        pressure: 0,
        report: None,
        trace_jsonl: None,
        cache: None,
        journal: None,
        resume: false,
        metrics: false,
        chaos: None,
        kill_after_ms: None,
        chaos_run: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                cli.seed = args.next().and_then(|s| s.parse().ok()).expect("--seed <u64>");
            }
            "--pass" => {
                let spec = args.next().expect("--pass isel|regalloc|gvn[,...]");
                for name in spec.split(',') {
                    match PassId::parse(name) {
                        Some(p) => cli.passes.push(p),
                        None => {
                            eprintln!("--pass: unknown pass \"{name}\" (isel|regalloc|gvn)");
                            std::process::exit(2);
                        }
                    }
                }
            }
            "--pressure" => {
                cli.pressure =
                    args.next().and_then(|s| s.parse().ok()).expect("--pressure <count>");
            }
            "--report" => cli.report = Some(args.next().expect("--report <path>")),
            "--trace-jsonl" => {
                cli.trace_jsonl = Some(args.next().expect("--trace-jsonl <path>"));
            }
            "--cache" => cli.cache = Some(args.next().expect("--cache <path>")),
            "--journal" => cli.journal = Some(args.next().expect("--journal <path>")),
            "--resume" => cli.resume = true,
            "--metrics" => cli.metrics = true,
            "--chaos" => {
                cli.chaos =
                    Some(args.next().and_then(|s| s.parse().ok()).expect("--chaos <cycles>"));
            }
            "--kill-after-ms" => {
                cli.kill_after_ms =
                    Some(args.next().and_then(|s| s.parse().ok()).expect("--kill-after-ms <ms>"));
            }
            "--chaos-run" => cli.chaos_run = true,
            other => match other.parse() {
                Ok(n) => cli.n = n,
                Err(_) => {
                    eprintln!(
                        "usage: validate_corpus [N] [--seed S] [--pass isel,regalloc,gvn] \
                         [--pressure K] [--report PATH] [--trace-jsonl PATH] [--cache PATH] \
                         [--journal PATH] [--resume] [--chaos CYCLES] [--metrics]"
                    );
                    std::process::exit(2);
                }
            },
        }
    }
    cli
}

fn base_keq_options() -> KeqOptions {
    KeqOptions {
        time_limit: Some(Duration::from_secs(20)),
        solver_budget: Budget {
            max_conflicts: 500_000,
            max_terms: 2_000_000,
            max_time: Some(Duration::from_secs(5)),
        },
        ..KeqOptions::default()
    }
}

/// The chaos campaign's deterministic fault surface: pipeline faults that
/// classify reproducibly per function (no wall-clock deadlines anywhere),
/// plus storage faults that stress the journal's torn-write/short-read
/// recovery without being able to change any verdict.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        panic: Rate { num: 1, den: 8 },
        force_conflicts: Rate { num: 1, den: 8 },
        force_terms: Rate { num: 1, den: 8 },
        torn_write: Rate { num: 1, den: 16 },
        short_read: Rate { num: 1, den: 16 },
        ..FaultPlan::quiet(seed)
    }
}

fn chaos_retry() -> RetryPolicy {
    RetryPolicy { max_attempts: 2, factor: 4, retry_crashes: true, ..RetryPolicy::default() }
}

fn kinds(summary: &keq_bench::CorpusSummary) -> Vec<&'static str> {
    summary.rows.iter().map(|r| r.result.kind().name()).collect()
}

fn gen_config(cli: &Cli) -> keq_bench::GenConfig {
    keq_bench::GenConfig { seed: cli.seed, pressure: cli.pressure, ..Default::default() }
}

fn pass_list(cli: &Cli) -> String {
    cli.passes.iter().map(|p| p.name()).collect::<Vec<_>>().join(",")
}

/// The chaos campaign driver. Exits 1 on verdict divergence or store
/// impurity, 0 on success.
fn run_chaos(cli: &Cli, cycles: u32) {
    let journal_path =
        cli.journal.clone().unwrap_or_else(|| "chaos.keqwal".to_string());
    let base = HarnessOptions {
        keq: base_keq_options(),
        fault_plan: chaos_plan(cli.seed),
        retry: chaos_retry(),
        passes: cli.passes.clone(),
        ..HarnessOptions::default()
    };

    // 1. The uninterrupted reference run, in-process, no journal. Its wall
    //    time calibrates the kill offsets: a kill is only interesting when
    //    it lands after some verdicts are journaled and before the rest.
    println!("chaos: reference run ({} functions, seed {})...", cli.n, cli.seed);
    let ref_start = std::time::Instant::now();
    let (_m, reference) = keq_bench::run_corpus_cfg(gen_config(cli), cli.n, &base);
    let ref_ms = u64::try_from(ref_start.elapsed().as_millis()).unwrap_or(u64::MAX).max(20);
    let want = kinds(&reference);

    // 2. The kill/resume loop: re-exec this binary with an armed abort
    //    timer; each child resumes the journal the previous one left and
    //    dies at a different seeded offset, until one survives to the end
    //    (or the cycle cap is hit — the final run below completes the rest).
    let _ = std::fs::remove_file(&journal_path);
    let exe = std::env::current_exe().expect("current_exe");
    let mut kills = 0u32;
    for cycle in 1..=cycles {
        // Seeded kill offset in [10%, 90%) of the reference wall time.
        let frac = 10 + mix64(cli.seed ^ u64::from(cycle)) % 80;
        let kill_ms = (ref_ms * frac / 100).max(5);
        let mut cmd = Command::new(&exe);
        cmd.arg(cli.n.to_string())
            .args(["--seed", &cli.seed.to_string()])
            .args(["--journal", &journal_path])
            .arg("--resume")
            .arg("--chaos-run")
            .args(["--kill-after-ms", &kill_ms.to_string()])
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(cache) = &cli.cache {
            cmd.args(["--cache", cache]);
        }
        if !cli.passes.is_empty() {
            cmd.args(["--pass", &pass_list(cli)]);
        }
        if cli.pressure > 0 {
            cmd.args(["--pressure", &cli.pressure.to_string()]);
        }
        let status = cmd.status().expect("spawn chaos child");
        if status.success() {
            println!("chaos: cycle {cycle} survived its {kill_ms}ms timer, run complete");
            break;
        }
        kills += 1;
        println!("chaos: cycle {cycle} killed at {kill_ms}ms, resuming...");
    }

    // 3. The final resumed run, in-process, merging whatever the children
    //    decided with a replay of the rest.
    let merged_opts = HarnessOptions {
        journal_path: Some(journal_path.clone().into()),
        resume: true,
        cache_path: cli.cache.as_ref().map(std::path::PathBuf::from),
        ..base
    };
    let (_m, merged) = keq_bench::run_corpus_cfg(gen_config(cli), cli.n, &merged_opts);
    println!("{}", merged.summary_line());

    let got = kinds(&merged);
    if got != want {
        eprintln!("chaos: VERDICT DIVERGENCE after {kills} kills");
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            if w != g {
                eprintln!("  f{i}: clean run says {w}, resumed run says {g}");
            }
        }
        std::process::exit(1);
    }

    // 4. Store purity: a crash-interrupted store may only ever contain
    //    decided verdicts (`Unsat` = byte 1, model-free `Sat` = byte 2 in
    //    the store's wire format) — budget/fault attempt outcomes must
    //    never be persisted, and whatever was torn mid-write must have
    //    been skipped, never reinterpreted.
    if let Some(cache) = &cli.cache {
        if let Ok(bytes) = std::fs::read(cache) {
            let mut at = 20; // header: magic + version + semantics revision
            while at + 4 <= bytes.len() {
                let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
                if len != 17 || at + 4 + len + 4 > bytes.len() {
                    break; // torn tail: the loader skips it too
                }
                let verdict_byte = bytes[at + 4 + 16];
                if verdict_byte != 1 && verdict_byte != 2 {
                    eprintln!("chaos: STORE IMPURITY: persisted verdict byte {verdict_byte}");
                    std::process::exit(1);
                }
                at += 4 + len + 4;
            }
        }
    }

    println!(
        "chaos: OK — {} kills, verdict tables identical ({} units), resume skipped {} \
         recovered {} corrupt {}",
        kills,
        want.len(),
        merged.resume.skipped,
        merged.resume.recovered,
        merged.resume.corrupt
    );
}

fn main() {
    let cli = parse_cli();
    if let Some(cycles) = cli.chaos {
        run_chaos(&cli, cycles);
        return;
    }

    // Chaos children: die unceremoniously (abort, not panic — the point is
    // a process that never got to say goodbye) once the timer fires.
    if let Some(ms) = cli.kill_after_ms {
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(ms));
            std::process::abort();
        });
    }

    // Tracing is opt-in: without --report/--trace-jsonl every probe site
    // in the pipeline stays on its one-branch disabled path.
    let tracing = cli.report.is_some() || cli.trace_jsonl.is_some();
    let journal = Arc::new(Journal::with_default_capacity());
    let trace = if tracing {
        let mut sinks = vec![TraceSink::from(Arc::clone(&journal))];
        if let Some(path) = &cli.trace_jsonl {
            let file = std::fs::File::create(path).expect("create --trace-jsonl file");
            sinks.push(TraceSink::from(Arc::new(JsonlSink::new(file))));
        }
        Some(TraceSink::from(Arc::new(Fanout::new(sinks))))
    } else {
        None
    };
    let opts = HarnessOptions {
        keq: base_keq_options(),
        trace,
        cache_path: cli.cache.as_ref().map(std::path::PathBuf::from),
        journal_path: cli.journal.as_ref().map(std::path::PathBuf::from),
        resume: cli.resume,
        fault_plan: if cli.chaos_run { chaos_plan(cli.seed) } else { FaultPlan::quiet(0) },
        retry: if cli.chaos_run { chaos_retry() } else { RetryPolicy::default() },
        metrics: keq_repro::harness::MetricsConfig {
            enabled: cli.metrics,
            ..keq_repro::harness::MetricsConfig::default()
        },
        passes: cli.passes.clone(),
        ..HarnessOptions::default()
    };

    let pass_names = if cli.passes.is_empty() { "isel".to_string() } else { pass_list(&cli) };
    println!(
        "validating {} generated functions (seed {}, passes: {pass_names})...",
        cli.n, cli.seed
    );
    let (_module, summary) = keq_bench::run_corpus_cfg(gen_config(&cli), cli.n, &opts);
    for row in &summary.rows {
        let recovered = if row.recovered { "  [recovered]" } else { "" };
        println!(
            "  {:<8} {:<8} {:>4} instrs  {:>9.2?}  {:?}{recovered}",
            row.name,
            row.pass.name(),
            row.size,
            row.time,
            row.result
        );
    }
    println!(
        "\nvalidated {}/{} ({:.1}%) — the paper reports 4331/4732 (91.52%)",
        summary.count(keq_bench::ResultKind::Succeeded),
        summary.total(),
        summary.success_rate() * 100.0
    );
    println!("{}", summary.summary_line());
    if let Some(path) = &cli.cache {
        println!(
            "obligation store {path}: loaded {} rejected {} persisted {} ({} bytes, {} flushes)",
            summary.cache.disk_loaded,
            summary.cache.disk_rejected,
            summary.cache.disk_persisted,
            summary.cache.disk_bytes,
            summary.cache.flushes,
        );
    }

    if cli.metrics && !summary.telemetry.slow.is_empty() {
        println!("\nslowest obligations (top {} by wall time):", summary.telemetry.slow.len());
        for row in &summary.telemetry.slow {
            let mut phases: Vec<_> = row.phase_us.clone();
            phases.sort_by_key(|&(_, us)| std::cmp::Reverse(us));
            let breakdown = phases
                .iter()
                .take(3)
                .map(|(p, us)| format!("{} {}µs", p.name(), us))
                .collect::<Vec<_>>()
                .join(", ");
            println!(
                "  {:<16} {:<12} {:>9}µs  {} attempts  [{}]",
                row.label, row.result, row.wall_us, row.attempts, breakdown
            );
        }
    }

    if let Some(path) = &cli.report {
        let report = build_report(&summary, Some(&journal), cli.seed);
        std::fs::write(path, report.to_json()).expect("write --report file");
        eprintln!("wrote {path}");
    }
}
