//! `keq_top`: a live terminal dashboard for a running `keq_serve` daemon.
//!
//! Polls the server's `metrics` op and renders one frame per interval:
//! throughput and queue depth, request-latency quantiles, worker states,
//! obligation-cache hit ratio and shard occupancy, a queue-depth
//! sparkline from the sampled time series, and the slow-obligation table
//! with per-phase breakdowns.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example keq_serve -- --metrics &
//! cargo run --release --example keq_top -- [--addr 127.0.0.1:7411] \
//!     [--interval-ms 1000] [--once]
//! ```
//!
//! `--once` prints a single frame without clearing the screen and exits —
//! what the CI smoke leg and scripts use. `--prom` instead dumps the raw
//! Prometheus text exposition from the same `metrics` op and exits, which
//! is how a scrape collector (or the CI assertion) gets at the wire-format
//! payload without speaking the framed protocol itself. Start the daemon
//! with `--metrics`; without it the dashboard still shows live queue depth
//! and latency quantiles but the series, worker gauges, and slow table
//! stay empty.

use std::time::Duration;

use keq_repro::harness::protocol::{ClientRequest, MetricsReport, ServerResponse};
use keq_repro::harness::connect;
use keq_repro::trace::Json;

struct Cli {
    addr: String,
    interval_ms: u64,
    once: bool,
    prom: bool,
}

fn parse_cli() -> Cli {
    let mut cli =
        Cli { addr: "127.0.0.1:7411".to_string(), interval_ms: 1000, once: false, prom: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cli.addr = args.next().expect("--addr <addr>"),
            "--interval-ms" => {
                cli.interval_ms =
                    args.next().and_then(|s| s.parse().ok()).expect("--interval-ms <ms>");
            }
            "--once" => cli.once = true,
            "--prom" => cli.prom = true,
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: keq_top [--addr A] [--interval-ms MS] \
                     [--once] [--prom]"
                );
                std::process::exit(2);
            }
        }
    }
    cli
}

/// The values of the named time series, oldest first.
fn series_values(series: &Json, name: &str) -> Vec<f64> {
    let Json::Arr(entries) = series else { return Vec::new() };
    for entry in entries {
        if entry.get("name").and_then(Json::as_str) == Some(name) {
            let Some(points) = entry.get("points").and_then(Json::as_arr) else { break };
            return points
                .iter()
                .filter_map(|p| p.as_arr()?.get(1)?.as_f64())
                .collect();
        }
    }
    Vec::new()
}

/// A unicode block-character sparkline of the last `width` values.
fn sparkline(values: &[f64], width: usize) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let tail = &values[values.len().saturating_sub(width)..];
    if tail.is_empty() {
        return "(no samples yet)".to_string();
    }
    let max = tail.iter().cloned().fold(0.0f64, f64::max);
    tail.iter()
        .map(|&v| {
            if max <= 0.0 {
                BLOCKS[0]
            } else {
                let idx = ((v / max) * (BLOCKS.len() - 1) as f64).round() as usize;
                BLOCKS[idx.min(BLOCKS.len() - 1)]
            }
        })
        .collect()
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

fn render(addr: &str, m: &MetricsReport) -> String {
    let mut out = String::new();
    let lookups = m.cache_hits + m.cache_misses;
    let hit_ratio = if lookups == 0 { 0.0 } else { m.cache_hits as f64 / lookups as f64 };
    out.push_str(&format!(
        "keq_top — {addr} — uptime {:.1}s — metrics {} — {} samples\n",
        m.uptime_ms as f64 / 1e3,
        if m.enabled { "ON" } else { "OFF" },
        m.samples,
    ));
    out.push_str(&format!(
        "requests {} ({} done, {} in flight) | {:.1} done/s | workers {} busy / {} idle\n",
        m.requests, m.completed, m.queue_depth, m.rate_per_sec, m.workers_busy, m.workers_idle,
    ));
    out.push_str(&format!(
        "latency  p50 {}  p90 {}  p99 {}\n",
        fmt_us(m.p50_us),
        fmt_us(m.p90_us),
        fmt_us(m.p99_us),
    ));
    let occupied = m.shard_entries.iter().filter(|&&e| e > 0).count();
    out.push_str(&format!(
        "obcache  {} lookups, hit ratio {:.2}, {} entries over {}/{} shards\n",
        lookups,
        hit_ratio,
        m.cache_entries,
        occupied,
        m.shard_entries.len(),
    ));
    out.push_str(&format!(
        "queue    {}\n",
        sparkline(&series_values(&m.series, "keq_queue_depth"), 60),
    ));
    out.push('\n');
    if m.slow.is_empty() {
        out.push_str("slowest obligations: (none yet)\n");
        return out;
    }
    out.push_str("slowest obligations (by wall time)\n");
    out.push_str(&format!(
        "  {:<16} {:<20} {:<11} {:>9} {:>4}  phases\n",
        "FINGERPRINT", "LABEL", "RESULT", "WALL", "ATT"
    ));
    for row in &m.slow {
        let mut phases: Vec<_> = row.phase_us.clone();
        phases.sort_by_key(|&(_, us)| std::cmp::Reverse(us));
        let breakdown = phases
            .iter()
            .take(3)
            .map(|(p, us)| format!("{} {}", p.name(), fmt_us(*us)))
            .collect::<Vec<_>>()
            .join(", ");
        let mut label = row.label.clone();
        if label.len() > 20 {
            label.truncate(19);
            label.push('…');
        }
        out.push_str(&format!(
            "  {:<16} {:<20} {:<11} {:>9} {:>4}  {}\n",
            row.fingerprint,
            label,
            row.result,
            fmt_us(row.wall_us),
            row.attempts,
            breakdown,
        ));
    }
    out
}

fn main() {
    let cli = parse_cli();
    let mut conn = connect(&cli.addr).expect("connect to keq-server");
    loop {
        let report = match conn.roundtrip(&ClientRequest::Metrics) {
            Ok(ServerResponse::Metrics(m)) => m,
            Ok(ServerResponse::ShuttingDown) => {
                println!("server draining; exiting");
                return;
            }
            Ok(other) => {
                eprintln!("unexpected response: {other:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("metrics round trip failed: {e}");
                std::process::exit(1);
            }
        };
        if cli.prom {
            print!("{}", report.prometheus);
            return;
        }
        if cli.once {
            print!("{}", render(&cli.addr, &report));
            return;
        }
        // Clear and home between frames, like top(1).
        print!("\x1b[2J\x1b[H{}", render(&cli.addr, &report));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(cli.interval_ms.max(50)));
    }
}
