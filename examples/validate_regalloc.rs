//! The paper's "ongoing work" (§1), reproduced: validate the register
//! allocation pass with KEQ *unchanged*, using a VC generator that treats
//! the allocator as a black box — it sees only the assignment artifact.
//!
//! Both sides of the check are Virtual x86 (the "input and output languages
//! may be identical" case): the left is ISel's SSA output with virtual
//! registers and PHIs; the right is fully allocated code with PHIs
//! destructed into cycle-safe parallel copies.
//!
//! Run with: `cargo run --release --example validate_regalloc`

use keq_repro::core::KeqOptions;
use keq_repro::isel::{select, validate_regalloc, IselOptions};
use keq_repro::llvm::{parse_module, Layout};

fn main() {
    let m = parse_module(keq_repro::llvm::corpus::ARITHM_SEQ_SUM).expect("parses");
    let f = m.function("arithm_seq_sum").expect("present");
    let layout = Layout::of(&m, f);
    let pre = select(&m, f, &layout, IselOptions::default()).expect("selects").func;
    println!("=== before register allocation (SSA Virtual x86) ===\n{pre}");
    let (report, post) =
        validate_regalloc(&pre, &layout, KeqOptions::default()).expect("colorable");
    println!("=== after register allocation ===\n{post}");
    println!("KEQ verdict: {}", report.verdict);
    assert!(report.verdict.is_validated());

    // And a corpus sweep: validate the allocator on generated functions.
    let module = keq_repro::workload::generate_corpus(
        keq_repro::workload::GenConfig { seed: 5, ..Default::default() },
        15,
    );
    let mut validated = 0;
    let mut spills = 0;
    for f in &module.functions {
        let layout = Layout::of(&module, f);
        let Ok(out) = select(&module, f, &layout, IselOptions::default()) else { continue };
        match validate_regalloc(&out.func, &layout, KeqOptions {
            time_limit: Some(std::time::Duration::from_secs(15)),
            ..Default::default()
        }) {
            Ok((report, _)) => {
                println!("{:<8} {}", f.name, report.verdict);
                if report.verdict.is_validated() {
                    validated += 1;
                }
            }
            Err(e) => {
                println!("{:<8} unsupported: {e}", f.name);
                spills += 1;
            }
        }
    }
    println!("\nregalloc validated {validated} functions ({spills} needed spills — outside the supported fragment)");
}
