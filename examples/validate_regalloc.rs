//! The paper's "ongoing work" (§1), reproduced: validate the register
//! allocation pass with KEQ *unchanged*, using a VC generator that treats
//! the allocator as a black box — it sees only the assignment artifact.
//!
//! Both sides of the check are Virtual x86 (the "input and output languages
//! may be identical" case): the left is ISel's SSA output with virtual
//! registers and PHIs; the right is fully allocated code with PHIs
//! destructed into cycle-safe parallel copies — and, when pressure exceeds
//! the pool, with spill stores and reloads against a right-side-private
//! spill frame that the VC generator masks out of memory equality.
//!
//! Run with: `cargo run --release --example validate_regalloc`

use keq_repro::core::KeqOptions;
use keq_repro::isel::{
    allocate_with_options, select, validate_regalloc, validate_regalloc_with_context,
    IselOptions, RaOptions, ValidationContext,
};
use keq_repro::llvm::{parse_module, Layout};

fn main() {
    let m = parse_module(keq_repro::llvm::corpus::ARITHM_SEQ_SUM).expect("parses");
    let f = m.function("arithm_seq_sum").expect("present");
    let layout = Layout::of(&m, f);
    let pre = select(&m, f, &layout, IselOptions::default()).expect("selects").func;
    println!("=== before register allocation (SSA Virtual x86) ===\n{pre}");
    let (report, post) =
        validate_regalloc(&pre, &layout, KeqOptions::default()).expect("uncancelled");
    println!("=== after register allocation ===\n{post}");
    println!("KEQ verdict: {}", report.verdict);
    assert!(report.verdict.is_validated());

    // The same function through a starved pool: spilling is forced, and the
    // spilled allocation validates with the same unmodified checker.
    let ra = RaOptions { pool_limit: Some(2), ..RaOptions::default() };
    let (spilled_post, map) = allocate_with_options(&pre, ra, None).expect("uncancelled");
    println!(
        "=== same function, pool capped at 2 registers ({} values spilled) ===\n{spilled_post}",
        map.spills.len()
    );
    assert!(!map.spills.is_empty(), "a 2-register pool must force spills");
    let mut ctx = ValidationContext::new();
    let (report, _) =
        validate_regalloc_with_context(&pre, &layout, ra, KeqOptions::default(), None, &mut ctx)
            .expect("uncancelled");
    println!("KEQ verdict (spilled): {}", report.verdict);
    assert!(report.verdict.is_validated());

    // And a corpus sweep under the high-register-pressure generator
    // profile: every function spills, every allocation validates.
    let module = keq_repro::workload::generate_corpus(
        keq_repro::workload::GenConfig {
            seed: 5,
            max_depth: 2,
            base_stmts: 3,
            pressure: 8,
            ..Default::default()
        },
        6,
    );
    let mut validated = 0;
    let mut spilled = 0;
    for f in &module.functions {
        let layout = Layout::of(&module, f);
        let Ok(out) = select(&module, f, &layout, IselOptions::default()) else { continue };
        let (_, map) =
            allocate_with_options(&out.func, RaOptions::default(), None).expect("uncancelled");
        if !map.spills.is_empty() {
            spilled += 1;
        }
        let keq = KeqOptions {
            time_limit: Some(std::time::Duration::from_secs(15)),
            solver_budget: keq_repro::smt::Budget {
                max_conflicts: 500_000,
                max_terms: 2_000_000,
                max_time: Some(std::time::Duration::from_secs(5)),
            },
            ..Default::default()
        };
        let (report, _) =
            validate_regalloc(&out.func, &layout, keq).expect("uncancelled");
        println!("{:<8} {:>2} spills  {}", f.name, map.spills.len(), report.verdict);
        if report.verdict.is_validated() {
            validated += 1;
        }
    }
    println!(
        "\nregalloc validated {validated}/{} functions ({spilled} took the spill path — \
         validated like the rest)",
        module.functions.len()
    );
}
