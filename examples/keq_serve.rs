//! The `keq-server` daemon: a long-lived validation service over one
//! resident scheduler, so the shared obligation cache, warm-start
//! contexts, and write-ahead journal amortize across requests instead of
//! being rebuilt per corpus.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example keq_serve -- [--addr 127.0.0.1:7411] \
//!     [--workers N] [--deadline-ms MS] [--queue-depth N] [--max-inflight N] \
//!     [--cache obligations.keqcache] [--journal server.keqwal] [--resume] \
//!     [--trace-jsonl trace.jsonl] [--metrics] [--metrics-interval-ms MS]
//! ```
//!
//! `--addr` also accepts `unix:/path/to.sock` on Unix. Port 0 picks a free
//! port; the daemon always prints one `listening on ADDR` line first, so a
//! wrapper script can discover the resolved address. `--queue-depth`
//! bounds the whole daemon's accepted-but-unfinished submissions (excess
//! requests are rejected with `queue_full`, never queued without bound);
//! `--max-inflight` bounds one connection. Stop it by sending the
//! `shutdown` op (`keq_client --shutdown`): the daemon drains every
//! admitted submission, flushes the store, and prints its lifetime
//! summary. The wire protocol is length-framed JSON — see
//! `keq_harness::protocol` and DESIGN.md.
//!
//! The daemon is pass-parametric per request: each `validate` op names
//! the validated pass (`"pass": "isel" | "regalloc" | "gvn"`, absent →
//! `isel`), so one resident scheduler serves all three instantiations —
//! `keq_client --pass gvn` drives it from the bundled load generator.
//!
//! `--metrics` turns on the live telemetry registry: the `metrics` op then
//! serves sampled time series, the slow-obligation table, and a Prometheus
//! rendering (watch it live with the `keq_top` example).

use std::sync::Arc;
use std::time::Duration;

use keq_repro::harness::{
    ClientQuota, HarnessOptions, MetricsConfig, RetryPolicy, Server, ServerOptions,
};
use keq_repro::smt::Budget;
use keq_repro::trace::{JsonlSink, TraceSink};

struct Cli {
    addr: String,
    workers: usize,
    deadline_ms: Option<u64>,
    queue_depth: usize,
    max_inflight: usize,
    cache: Option<String>,
    journal: Option<String>,
    resume: bool,
    trace_jsonl: Option<String>,
    metrics: bool,
    metrics_interval_ms: Option<u64>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        addr: "127.0.0.1:7411".to_string(),
        workers: 0,
        deadline_ms: None,
        queue_depth: 0,
        max_inflight: 0,
        cache: None,
        journal: None,
        resume: false,
        trace_jsonl: None,
        metrics: false,
        metrics_interval_ms: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cli.addr = args.next().expect("--addr <addr>"),
            "--workers" => {
                cli.workers = args.next().and_then(|s| s.parse().ok()).expect("--workers <n>");
            }
            "--deadline-ms" => {
                cli.deadline_ms =
                    Some(args.next().and_then(|s| s.parse().ok()).expect("--deadline-ms <ms>"));
            }
            "--queue-depth" => {
                cli.queue_depth =
                    args.next().and_then(|s| s.parse().ok()).expect("--queue-depth <n>");
            }
            "--max-inflight" => {
                cli.max_inflight =
                    args.next().and_then(|s| s.parse().ok()).expect("--max-inflight <n>");
            }
            "--cache" => cli.cache = Some(args.next().expect("--cache <path>")),
            "--journal" => cli.journal = Some(args.next().expect("--journal <path>")),
            "--resume" => cli.resume = true,
            "--trace-jsonl" => {
                cli.trace_jsonl = Some(args.next().expect("--trace-jsonl <path>"));
            }
            "--metrics" => cli.metrics = true,
            "--metrics-interval-ms" => {
                cli.metrics_interval_ms = Some(
                    args.next().and_then(|s| s.parse().ok()).expect("--metrics-interval-ms <ms>"),
                );
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: keq_serve [--addr A] [--workers N] \
                     [--deadline-ms MS] [--queue-depth N] [--max-inflight N] [--cache PATH] \
                     [--journal PATH] [--resume] [--trace-jsonl PATH] [--metrics] \
                     [--metrics-interval-ms MS]"
                );
                std::process::exit(2);
            }
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let trace = cli.trace_jsonl.as_ref().map(|path| {
        let file = std::fs::File::create(path).expect("create --trace-jsonl file");
        TraceSink::from(Arc::new(JsonlSink::new(file)))
    });
    let opts = ServerOptions {
        harness: HarnessOptions {
            keq: keq_repro::core::KeqOptions {
                time_limit: Some(Duration::from_secs(20)),
                solver_budget: Budget {
                    max_conflicts: 500_000,
                    max_terms: 2_000_000,
                    max_time: Some(Duration::from_secs(5)),
                },
                ..keq_repro::core::KeqOptions::default()
            },
            workers: cli.workers,
            deadline: cli.deadline_ms.map(Duration::from_millis),
            retry: RetryPolicy { max_attempts: 2, ..RetryPolicy::default() },
            trace,
            cache_path: cli.cache.as_ref().map(std::path::PathBuf::from),
            journal_path: cli.journal.as_ref().map(std::path::PathBuf::from),
            resume: cli.resume,
            metrics: {
                let mut m = MetricsConfig { enabled: cli.metrics, ..MetricsConfig::default() };
                if let Some(ms) = cli.metrics_interval_ms {
                    m.sample_interval = Duration::from_millis(ms.max(1));
                }
                m
            },
            ..HarnessOptions::default()
        },
        queue_depth: cli.queue_depth,
        quota: ClientQuota {
            max_inflight: cli.max_inflight,
            max_deadline: Some(Duration::from_secs(60)),
            max_attempts: 0,
        },
    };

    let server = Server::bind(&cli.addr, &opts).expect("bind server address");
    println!("listening on {}", server.local_addr());
    let summary = server.run();

    let s = &summary.fin.server;
    println!(
        "keq-server drained: {} connections, {} requests ({} completed, {} disconnected), \
         rejected {} queue-full / {} quota / {} draining",
        summary.connections,
        s.requests,
        s.completed,
        s.disconnects,
        s.rejected_queue_full,
        s.rejected_quota,
        s.rejected_draining,
    );
    let p50 = summary.fin.latency.p50().unwrap_or(0.0);
    let p90 = summary.fin.latency.p90().unwrap_or(0.0);
    let p99 = summary.fin.latency.p99().unwrap_or(0.0);
    println!("request latency: p50 {:.0}µs p90 {:.0}µs p99 {:.0}µs", p50, p90, p99);
    let c = &summary.fin.cache;
    println!(
        "obligation store: {} entries, loaded {}, persisted {} ({} flushes{})",
        c.entries,
        c.disk_loaded,
        c.disk_persisted,
        c.flushes,
        if c.degraded { ", DEGRADED" } else { "" },
    );
}
