//! Quickstart: validate one LLVM → Virtual x86 translation end to end.
//!
//! This walks the paper's running example (Fig. 1–3): parse the LLVM IR of
//! `arithm_seq_sum`, run Instruction Selection, generate synchronization
//! points from the compiler hints, and ask KEQ for a verdict.
//!
//! Run with: `cargo run --release --example quickstart`

use keq_repro::core::KeqOptions;
use keq_repro::isel::{render_sync_table, validate_function, IselOptions, VcOptions};
use keq_repro::llvm::parse_module;

fn main() {
    // 1. The input program (paper Fig. 1/2(a)).
    let module = parse_module(keq_repro::llvm::corpus::ARITHM_SEQ_SUM).expect("valid LLVM IR");
    let func = module.function("arithm_seq_sum").expect("function present");
    println!("LLVM IR input:\n{func}");

    // 2. Compile + generate the verification condition + check.
    let outcome = validate_function(
        &module,
        func,
        IselOptions::default(),
        VcOptions::default(),
        KeqOptions::default(),
    )
    .expect("function is inside the supported fragment");

    // 3. Inspect the artifacts.
    println!("Virtual x86 output (paper Fig. 2(b)):\n{}", outcome.isel.func);
    println!("Synchronization points (paper Fig. 3):\n{}", render_sync_table(&outcome.sync));
    println!("KEQ verdict: {}", outcome.report.verdict);
    println!(
        "({} proof obligations over {} successor pairs, {} SMT queries)",
        outcome.report.stats.obligations_proved,
        outcome.report.stats.pairs_checked,
        outcome.report.stats.solver.queries
    );
    assert!(outcome.report.verdict.is_validated());
}
