//! Load-generating client for the `keq_serve` daemon: generates the same
//! seeded corpus the batch harness validates, streams each function to the
//! server as one `validate` request, and tallies the verdicts.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example keq_client -- [N] [--addr 127.0.0.1:7411] \
//!     [--seed S] [--pass isel|regalloc|gvn] [--repeat R] [--conns C] \
//!     [--stats] [--shutdown]
//! ```
//!
//! Each request wraps one corpus function in a module that carries the
//! corpus globals and external declarations, with `unit` set to the
//! function's corpus index — so the server's fault plan and backoff land
//! on the same logical units a batch run of the same seed would hit, and a
//! batch-vs-server differential comparison is meaningful. `--repeat`
//! streams the corpus again (the second pass should ride the server's
//! resident obligation cache), `--conns` splits the stream over parallel
//! connections, `--stats` prints the server's live counters afterwards,
//! and `--shutdown` asks the daemon to drain and exit.

use keq_repro::harness::protocol::{ClientRequest, ServerResponse};
use keq_repro::harness::{connect, ClientConn};
use keq_repro::llvm::ast::Module;
use keq_repro::workload::{generate_corpus, GenConfig};

use keq_repro::isel::PassId;

struct Cli {
    addr: String,
    n: usize,
    seed: u64,
    pass: PassId,
    repeat: usize,
    conns: usize,
    stats: bool,
    shutdown: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        addr: "127.0.0.1:7411".to_string(),
        n: 20,
        seed: 2021,
        pass: PassId::Isel,
        repeat: 1,
        conns: 1,
        stats: false,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cli.addr = args.next().expect("--addr <addr>"),
            "--seed" => {
                cli.seed = args.next().and_then(|s| s.parse().ok()).expect("--seed <u64>");
            }
            "--pass" => {
                cli.pass = args
                    .next()
                    .as_deref()
                    .and_then(PassId::parse)
                    .expect("--pass isel|regalloc|gvn");
            }
            "--repeat" => {
                cli.repeat = args.next().and_then(|s| s.parse().ok()).expect("--repeat <n>");
            }
            "--conns" => {
                cli.conns = args.next().and_then(|s| s.parse().ok()).expect("--conns <n>");
            }
            "--stats" => cli.stats = true,
            "--shutdown" => cli.shutdown = true,
            other => match other.parse() {
                Ok(n) => cli.n = n,
                Err(_) => {
                    eprintln!(
                        "usage: keq_client [N] [--addr A] [--seed S] [--pass P] [--repeat R] \
                         [--conns C] [--stats] [--shutdown]"
                    );
                    std::process::exit(2);
                }
            },
        }
    }
    cli
}

/// Corpus function `i` as a self-contained request payload: the function
/// plus the corpus globals/declarations it may reference.
fn request_ir(corpus: &Module, i: usize) -> String {
    Module {
        globals: corpus.globals.clone(),
        functions: vec![corpus.functions[i].clone()],
        declarations: corpus.declarations.clone(),
    }
    .to_string()
}

struct Tally {
    results: std::collections::BTreeMap<String, u64>,
    rejected: u64,
    errors: u64,
    latency: keq_repro::trace::Histogram,
}

fn stream_requests(
    addr: &str,
    corpus: &Module,
    units: &[usize],
    pass: PassId,
    repeat: usize,
) -> Tally {
    let mut conn = connect(addr).expect("connect to keq-server");
    let mut tally = Tally {
        results: std::collections::BTreeMap::new(),
        rejected: 0,
        errors: 0,
        latency: keq_repro::trace::Histogram::log_us("request wall time (µs)"),
    };
    for round in 0..repeat {
        for &i in units {
            let req = ClientRequest::Validate {
                tag: (round * corpus.functions.len() + i) as u64,
                unit: i as u64,
                pass,
                ir: request_ir(corpus, i),
                deadline_ms: None,
                max_attempts: None,
            };
            match conn.roundtrip(&req).expect("validate round trip") {
                ServerResponse::Validated { results, .. } => {
                    for v in results {
                        *tally.results.entry(v.result).or_insert(0) += 1;
                        tally.latency.add(v.wall_us as f64);
                    }
                }
                ServerResponse::RejectedRequest { .. } => tally.rejected += 1,
                ServerResponse::Error { detail } => {
                    eprintln!("server error: {detail}");
                    tally.errors += 1;
                }
                other => {
                    eprintln!("unexpected response: {other:?}");
                    tally.errors += 1;
                }
            }
        }
    }
    tally
}

fn main() {
    let cli = parse_cli();
    let corpus = generate_corpus(GenConfig { seed: cli.seed, ..GenConfig::default() }, cli.n);

    println!(
        "streaming {} functions x{} (pass {}) to {} over {} connection(s) (seed {})...",
        cli.n, cli.repeat, cli.pass, cli.addr, cli.conns, cli.seed
    );
    let conns = cli.conns.max(1).min(cli.n.max(1));
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let corpus = &corpus;
        let addr = cli.addr.as_str();
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                // Round-robin split keeps every connection's unit stream
                // deterministic in (seed, conns).
                let units: Vec<usize> = (0..cli.n).filter(|i| i % conns == c).collect();
                scope.spawn(move || stream_requests(addr, corpus, &units, cli.pass, cli.repeat))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client connection thread")).collect()
    });

    let mut results: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let mut rejected = 0u64;
    let mut errors = 0u64;
    let mut latency = keq_repro::trace::Histogram::log_us("request wall time (µs)");
    for t in tallies {
        for (k, v) in t.results {
            *results.entry(k).or_insert(0) += v;
        }
        rejected += t.rejected;
        errors += t.errors;
        latency.merge(&t.latency);
    }
    for (kind, count) in &results {
        println!("  {kind:<12} {count}");
    }
    println!(
        "done: {} verdicts, {} rejected, {} errors; client wall p50 {:.0}µs p90 {:.0}µs \
         p99 {:.0}µs",
        results.values().sum::<u64>(),
        rejected,
        errors,
        latency.p50().unwrap_or(0.0),
        latency.p90().unwrap_or(0.0),
        latency.p99().unwrap_or(0.0),
    );

    let mut conn: ClientConn = connect(&cli.addr).expect("connect to keq-server");
    // The server-observed view of the same load, printed beside the
    // client-observed line above: submit→verdict latency excludes the
    // network/framing overhead the client tally includes, and the hit
    // ratio shows how much of the stream rode the resident cache.
    match conn.roundtrip(&ClientRequest::Metrics).expect("metrics round trip") {
        ServerResponse::Metrics(m) => {
            let lookups = m.cache_hits + m.cache_misses;
            let hit_ratio =
                if lookups == 0 { 0.0 } else { m.cache_hits as f64 / lookups as f64 };
            println!(
                "server wall p50 {}µs p90 {}µs p99 {}µs; obligation-cache hit ratio {:.2} \
                 ({} entries)",
                m.p50_us, m.p90_us, m.p99_us, hit_ratio, m.cache_entries,
            );
        }
        other => eprintln!("unexpected metrics response: {other:?}"),
    }
    if cli.stats {
        match conn.roundtrip(&ClientRequest::Stats).expect("stats round trip") {
            ServerResponse::Stats(s) => {
                println!(
                    "server: {} requests ({} completed, depth {}), rejected {} queue-full / \
                     {} quota; cache {} hits / {} misses ({} entries)",
                    s.requests,
                    s.completed,
                    s.depth,
                    s.rejected_queue_full,
                    s.rejected_quota,
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_entries,
                );
            }
            other => eprintln!("unexpected stats response: {other:?}"),
        }
    }
    if cli.shutdown {
        match conn.roundtrip(&ClientRequest::Shutdown).expect("shutdown round trip") {
            ServerResponse::ShuttingDown => println!("server draining"),
            other => eprintln!("unexpected shutdown response: {other:?}"),
        }
    }
}
