//! Re-introduce the paper's two real ISel bugs (§5.2) and watch the
//! translation-validation system reject exactly the buggy translations.
//!
//! Run with: `cargo run --release --example catch_miscompilations`

use keq_repro::core::KeqOptions;
use keq_repro::isel::{validate_function, BugInjection, IselOptions, VcOptions};
use keq_repro::llvm::parse_module;

fn check(title: &str, src: &str, bug: BugInjection) -> bool {
    let module = parse_module(src).expect("valid LLVM IR");
    let func = &module.functions[0];
    let outcome = validate_function(
        &module,
        func,
        IselOptions { bug, ..IselOptions::default() },
        VcOptions::default(),
        KeqOptions::default(),
    )
    .expect("supported");
    println!("== {title} ==");
    println!("{}", outcome.isel.func);
    println!("verdict: {}\n", outcome.report.verdict);
    outcome.report.verdict.is_validated()
}

fn main() {
    // PR25154-style write-after-write violation in store merging (Fig. 8/9).
    let ok = check("Fig. 9 correct store merging", keq_repro::llvm::corpus::FIG8_WAW, BugInjection::None);
    let bad = check(
        "Fig. 9(b) WAW-violating store merging",
        keq_repro::llvm::corpus::FIG8_WAW,
        BugInjection::WawStoreMerge,
    );
    assert!(ok && !bad, "the WAW bug must be caught");

    // PR4737-style out-of-bounds load narrowing on i96 (Fig. 10/11).
    let ok = check(
        "Fig. 11(a) correct load narrowing",
        keq_repro::llvm::corpus::FIG10_LOAD_NARROW,
        BugInjection::None,
    );
    let bad = check(
        "Fig. 11(b) out-of-bounds load narrowing",
        keq_repro::llvm::corpus::FIG10_LOAD_NARROW,
        BugInjection::LoadNarrowing,
    );
    assert!(ok && !bad, "the load-narrowing bug must be caught");
    println!("both §5.2 miscompilations rejected; both correct translations validated.");
}
