//! Language-parametricity demo: the *same* KEQ checker validating a
//! completely different language pair — IMP (a structured while-language)
//! compiled to a stack machine.
//!
//! Nothing in `keq_core::Keq` is touched: both languages just implement
//! `keq_semantics::Language` and bring their own synchronization points,
//! exactly as the paper's K semantic definitions parameterize KEQ.
//!
//! Run with: `cargo run --release --example cross_language`

use keq_repro::core::{Keq, Verdict};
use keq_repro::imp::{compile, imp_sync_points, Expr, ImpProgram, ImpSemantics, StackSemantics, Stmt};
use keq_repro::smt::TermBank;

fn main() {
    // sum = 0; i = 0; while (i < n) { sum += i*i; i += 1 }; return sum
    let program = ImpProgram {
        inputs: vec!["n".into()],
        body: vec![
            Stmt::Assign("sum".into(), Expr::Const(0)),
            Stmt::Assign("i".into(), Expr::Const(0)),
            Stmt::While(
                Expr::lt(Expr::var("i"), Expr::var("n")),
                vec![
                    Stmt::Assign(
                        "sum".into(),
                        Expr::add(Expr::var("sum"), Expr::mul(Expr::var("i"), Expr::var("i"))),
                    ),
                    Stmt::Assign("i".into(), Expr::add(Expr::var("i"), Expr::Const(1))),
                ],
            ),
        ],
        result: Expr::var("sum"),
    };

    let flat = keq_repro::imp::compile::flatten(&program);
    let stack_fn = compile(&program);
    println!("IMP program flattened to {} ops; stack code has {} ops", flat.ops.len(), stack_fn.ops.len());

    // Differential sanity check first.
    let mut fuel = 100_000;
    let reference = program.eval(&[6], &mut fuel).expect("terminates");
    let mut fuel = 100_000;
    let compiled =
        keq_repro::imp::compile::run_stack(&stack_fn, &[("n".into(), 6)], &mut fuel)
            .expect("terminates");
    println!("n = 6: IMP reference = {reference}, stack machine = {compiled}");
    assert_eq!(reference, compiled);

    // Now the formal proof, with the very same checker used for ISel.
    let sync = imp_sync_points(&flat, &stack_fn);
    let left = ImpSemantics::new(flat);
    let right = StackSemantics::new(stack_fn);
    let keq = Keq::new(&left, &right);
    let mut bank = TermBank::new();
    let report = keq.check(&mut bank, &sync);
    println!("KEQ verdict for ALL inputs: {}", report.verdict);
    assert_eq!(report.verdict, Verdict::Equivalent);
}
