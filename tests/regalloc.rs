//! The paper's §1 "ongoing work": validating register allocation with the
//! same, unchanged KEQ — both Language parameters are Virtual x86, and the
//! VC generator only sees the allocator's output mapping (black box).

use keq_repro::core::{KeqOptions, Verdict};
use keq_repro::isel::{select, validate_regalloc, IselOptions};
use keq_repro::llvm::{parse_module, Layout};
use keq_repro::vx86::{Reg, VxInstr};

fn pre_ra(src: &str) -> (keq_repro::vx86::VxFunction, Layout) {
    let m = parse_module(src).expect("parses");
    let f = &m.functions[0];
    let layout = Layout::of(&m, f);
    let out = select(&m, f, &layout, IselOptions::default()).expect("selects");
    (out.func, layout)
}

#[test]
fn regalloc_of_running_example_validates() {
    let (pre, layout) = pre_ra(keq_repro::llvm::corpus::ARITHM_SEQ_SUM);
    let (report, post) = validate_regalloc(&pre, &layout, KeqOptions::default()).expect("colors");
    // Post-RA code has no virtual registers and no PHIs.
    for b in &post.blocks {
        for i in &b.instrs {
            assert!(!matches!(i, VxInstr::Phi { .. }), "PHIs destructed: {i}");
            let mut has_virt = false;
            keq_repro::isel::regalloc::uses_defs(i).0.iter().for_each(|k| {
                if matches!(k, keq_repro::isel::regalloc::RegKey::Virt(_)) {
                    has_virt = true;
                }
            });
            assert!(!has_virt, "no virtual registers remain: {i}");
        }
    }
    assert_eq!(report.verdict, Verdict::Equivalent, "{}", report.verdict);
}

#[test]
fn regalloc_with_branches_and_calls_validates() {
    let src = r#"
define i32 @f(i32 %x, i32 %y) {
entry:
  %c = icmp slt i32 %x, %y
  br i1 %c, label %a, label %b
a:
  %r1 = call i32 @ext(i32 %x, i32 %y)
  br label %join
b:
  %d = mul i32 %x, %y
  br label %join
join:
  %v = phi i32 [ %r1, %a ], [ %d, %b ]
  %out = add i32 %v, %y
  ret i32 %out
}
"#;
    let (pre, layout) = pre_ra(src);
    let (report, _post) = validate_regalloc(&pre, &layout, KeqOptions::default()).expect("colors");
    assert_eq!(report.verdict, Verdict::Equivalent, "{}", report.verdict);
}

#[test]
fn corrupted_assignment_is_rejected() {
    // Sabotage the allocated code after the fact: swap two physical
    // registers in one copy. The black-box VC generator (driven by the
    // honest map) must catch the mismatch.
    let (pre, layout) = pre_ra(keq_repro::llvm::corpus::ARITHM_SEQ_SUM);
    let (post, map) = keq_repro::isel::allocate(&pre).expect("colors");
    let mut bad = post.clone();
    // Find a Copy between two different physical registers and corrupt the
    // source.
    'outer: for b in &mut bad.blocks {
        for i in &mut b.instrs {
            if let VxInstr::Copy { src, dst } = i {
                if let (Reg::Phys(ps, w), Reg::Phys(pd, _)) = (*src, *dst) {
                    let replacement = keq_repro::isel::regalloc::POOL
                        .iter()
                        .find(|&&r| r != ps && r != pd)
                        .copied()
                        .expect("pool has spares");
                    *src = Reg::Phys(replacement, w);
                    break 'outer;
                }
            }
        }
    }
    let sync = keq_repro::isel::regalloc_sync_points(&pre, &bad, &map);
    let globals: std::collections::BTreeMap<String, u64> =
        layout.globals.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let left = keq_repro::vx86::VxSemantics::new(&pre, layout.mem.clone(), globals.clone());
    let right = keq_repro::vx86::VxSemantics::new(&bad, layout.mem.clone(), globals);
    let keq = keq_repro::core::Keq::new(&left, &right);
    let mut bank = keq_repro::smt::TermBank::new();
    let report = keq.check(&mut bank, &sync);
    assert!(!report.verdict.is_validated(), "sabotage must be caught: {}", report.verdict);
}

#[test]
fn memory_functions_allocate_and_validate() {
    let src = r#"
define i32 @f(i32 %x) {
  %slot = alloca i32
  store i32 %x, i32* %slot
  %v = load i32, i32* %slot
  %r = add i32 %v, 1
  ret i32 %r
}
"#;
    let (pre, layout) = pre_ra(src);
    let (report, _post) = validate_regalloc(&pre, &layout, KeqOptions::default()).expect("colors");
    assert_eq!(report.verdict, Verdict::Equivalent, "{}", report.verdict);
}
