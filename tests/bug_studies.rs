//! The paper's §5.2 evaluation: two real ISel miscompilations
//! re-introduced into the compiler must be rejected, while the correct
//! optimizations validate.

use keq_repro::core::{FailureReason, KeqOptions, Verdict};
use keq_repro::isel::{validate_function, BugInjection, IselOptions, VcOptions};
use keq_repro::llvm::parse_module;

fn validate(src: &str, bug: BugInjection) -> keq_repro::core::KeqReport {
    let m = parse_module(src).expect("parses");
    let f = &m.functions[0];
    validate_function(
        &m,
        f,
        IselOptions { bug, ..IselOptions::default() },
        VcOptions::default(),
        KeqOptions::default(),
    )
    .expect("supported")
    .report
}

#[test]
fn fig8_correct_store_merging_validates() {
    let r = validate(keq_repro::llvm::corpus::FIG8_WAW, BugInjection::None);
    assert_eq!(r.verdict, Verdict::Equivalent, "{}", r.verdict);
}

#[test]
fn fig8_waw_violation_is_rejected_via_memory_contents() {
    // "the symbolic execution of the input and output programs leads to
    // different memory contents for the byte at offset 3, hence not
    // allowing KEQ to prove the constraint for equal memory contents at the
    // exiting synchronization point."
    let r = validate(keq_repro::llvm::corpus::FIG8_WAW, BugInjection::WawStoreMerge);
    match &r.verdict {
        Verdict::NotValidated(fail) => {
            assert!(
                matches!(fail.reason, FailureReason::ConstraintUnproved { ref constraint, .. }
                    if constraint.starts_with("memory")),
                "must fail on a memory-equality constraint, got {fail}"
            );
        }
        other => panic!("buggy translation validated: {other:?}"),
    }
}

#[test]
fn fig8_unoptimized_translation_also_validates() {
    // Fig. 9(a): with store merging disabled, the straightforward
    // translation is correct too.
    let m = parse_module(keq_repro::llvm::corpus::FIG8_WAW).expect("parses");
    let f = &m.functions[0];
    let r = validate_function(
        &m,
        f,
        IselOptions { merge_stores: false, ..IselOptions::default() },
        VcOptions::default(),
        KeqOptions::default(),
    )
    .expect("supported")
    .report;
    assert_eq!(r.verdict, Verdict::Equivalent, "{}", r.verdict);
}

#[test]
fn fig10_correct_load_narrowing_validates() {
    let r = validate(keq_repro::llvm::corpus::FIG10_LOAD_NARROW, BugInjection::None);
    assert_eq!(r.verdict, Verdict::Equivalent, "{}", r.verdict);
}

#[test]
fn fig10_oob_load_narrowing_is_rejected_via_error_state() {
    // "the symbolic execution of the output x86 program branches into an
    // out-of-bounds error state … this error state cannot be matched with
    // any state in the input LLVM program" — and per footnote 7, not even
    // refinement can be proved.
    let r = validate(keq_repro::llvm::corpus::FIG10_LOAD_NARROW, BugInjection::LoadNarrowing);
    match &r.verdict {
        Verdict::NotValidated(fail) => {
            assert!(
                matches!(fail.reason, FailureReason::UnmatchedPair { ref right, .. }
                    if right.contains("out-of-bounds")),
                "must fail on the unmatched x86 error state, got {fail}"
            );
        }
        other => panic!("buggy translation validated: {other:?}"),
    }
}

#[test]
fn buggy_narrowed_load_also_fails_differentially() {
    // Cross-check via the concrete interpreters: the buggy translation
    // traps out-of-bounds where the source runs fine.
    let m = parse_module(keq_repro::llvm::corpus::FIG10_LOAD_NARROW).expect("parses");
    let f = &m.functions[0];
    let layout = keq_repro::llvm::Layout::of(&m, f);
    let good = keq_repro::isel::select(&m, f, &layout, IselOptions::default()).expect("selects");
    let bad = keq_repro::isel::select(
        &m,
        f,
        &layout,
        IselOptions { bug: BugInjection::LoadNarrowing, ..IselOptions::default() },
    )
    .expect("selects");
    let globals: std::collections::BTreeMap<String, u64> =
        layout.globals.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let mut mem = keq_repro::smt::MemValue::default();
    let r_good = keq_repro::vx86::run_vx_function(
        &good.func,
        &layout.mem,
        &globals,
        &[],
        &mut mem,
        10_000,
        &|_, _| 0,
    );
    assert!(r_good.is_ok(), "correct translation runs: {r_good:?}");
    let mut mem = keq_repro::smt::MemValue::default();
    let r_bad = keq_repro::vx86::run_vx_function(
        &bad.func,
        &layout.mem,
        &globals,
        &[],
        &mut mem,
        10_000,
        &|_, _| 0,
    );
    assert!(
        matches!(r_bad, Err(keq_repro::vx86::VxTrap::OutOfBounds(_))),
        "buggy translation must trap: {r_bad:?}"
    );
}

#[test]
fn waw_bug_flips_final_memory_bytes() {
    // Concrete cross-check of the Fig. 8 miscompilation: byte 3 of @b ends
    // up different.
    let m = parse_module(keq_repro::llvm::corpus::FIG8_WAW).expect("parses");
    let f = &m.functions[0];
    let layout = keq_repro::llvm::Layout::of(&m, f);
    let b_base = layout.global_addr("b").expect("placed");
    let globals: std::collections::BTreeMap<String, u64> =
        layout.globals.iter().map(|(k, v)| (k.clone(), *v)).collect();

    // Source semantics.
    let mut src_mem = keq_repro::smt::MemValue::default();
    keq_repro::llvm::run_function(
        &m,
        f,
        &layout,
        &[],
        &mut src_mem,
        10_000,
        &keq_repro::llvm::default_ext_call,
    )
    .expect("runs");

    let run_vx = |bug| {
        let out = keq_repro::isel::select(
            &m,
            f,
            &layout,
            IselOptions { bug, ..IselOptions::default() },
        )
        .expect("selects");
        let mut mem = keq_repro::smt::MemValue::default();
        keq_repro::vx86::run_vx_function(
            &out.func,
            &layout.mem,
            &globals,
            &[],
            &mut mem,
            10_000,
            &|_, _| 0,
        )
        .expect("runs");
        mem
    };
    let good_mem = run_vx(BugInjection::None);
    let bad_mem = run_vx(BugInjection::WawStoreMerge);
    for k in 0..8 {
        assert_eq!(
            good_mem.read(b_base + k),
            src_mem.read(b_base + k),
            "correct translation byte {k}"
        );
    }
    assert_ne!(
        bad_mem.read(b_base + 3),
        src_mem.read(b_base + 3),
        "the WAW bug must corrupt byte 3"
    );
}
