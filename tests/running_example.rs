//! End-to-end validation of the paper's running example (Fig. 1–3):
//! `arithm_seq_sum` translated by ISel and proven equivalent by KEQ.

use keq_repro::core::{KeqOptions, Verdict};
use keq_repro::isel::{validate_function, IselOptions, VcOptions};
use keq_repro::llvm::parse_module;

#[test]
fn arithm_seq_sum_validates_as_equivalent() {
    let m = parse_module(keq_repro::llvm::corpus::ARITHM_SEQ_SUM).expect("parses");
    let f = m.function("arithm_seq_sum").expect("present");
    let out = validate_function(
        &m,
        f,
        IselOptions::default(),
        VcOptions::default(),
        KeqOptions::default(),
    )
    .expect("supported");
    assert_eq!(out.report.verdict, Verdict::Equivalent, "{}", out.report.verdict);
    // The sync set has the paper's shape: entry, exit, and one loop point
    // per predecessor of for.cond (Fig. 3's p0..p3).
    assert_eq!(out.sync.len(), 4);
    let names: Vec<&str> = out.sync.iter().map(|p| p.name.as_str()).collect();
    assert!(names.contains(&"p0"));
    assert!(names.contains(&"p_exit"));
    assert!(names.contains(&"loop:for.cond<-entry"));
    assert!(names.contains(&"loop:for.cond<-for.inc"));
}

#[test]
fn isel_output_matches_fig2_shape() {
    let m = parse_module(keq_repro::llvm::corpus::ARITHM_SEQ_SUM).expect("parses");
    let f = m.function("arithm_seq_sum").expect("present");
    let layout = keq_repro::llvm::Layout::of(&m, f);
    let out = keq_repro::isel::select(&m, f, &layout, IselOptions::default()).expect("selects");
    let text = out.func.to_string();
    // Fig. 2(b): parameter copies, constant materialization for the phi,
    // fused compare-and-branch, and the return-value copy.
    assert!(text.contains("COPY edi"), "{text}");
    assert!(text.contains("COPY esi"), "{text}");
    assert!(text.contains("COPY edx"), "{text}");
    assert!(text.contains("mov 1"), "{text}");
    assert!(text.contains("jae"), "{text}");
    assert!(text.contains("eax = COPY"), "{text}");
    assert_eq!(out.func.blocks.len(), 5);
}

#[test]
fn validation_is_deterministic() {
    let m = parse_module(keq_repro::llvm::corpus::ARITHM_SEQ_SUM).expect("parses");
    let f = m.function("arithm_seq_sum").expect("present");
    let run = || {
        validate_function(
            &m,
            f,
            IselOptions::default(),
            VcOptions::default(),
            KeqOptions::default(),
        )
        .expect("supported")
        .report
        .verdict
    };
    assert_eq!(run(), run());
}

#[test]
fn imprecise_liveness_reproduces_inadequate_sync_points() {
    // The paper's third failure class (Fig. 6, 16 functions): a liveness
    // inaccuracy yields an inadequate set of synchronization points.
    let m = parse_module(keq_repro::llvm::corpus::ARITHM_SEQ_SUM).expect("parses");
    let f = m.function("arithm_seq_sum").expect("present");
    let out = validate_function(
        &m,
        f,
        IselOptions::default(),
        VcOptions { imprecise_liveness: true },
        KeqOptions::default(),
    )
    .expect("supported");
    assert!(
        !out.report.verdict.is_validated(),
        "dropping a live-register relation must break the proof: {}",
        out.report.verdict
    );
}
