//! Corpus-scale checks: (a) the translation-validation success rate on the
//! synthetic corpus has the paper's >90% shape, and (b) differential
//! concrete execution confirms that the (unbugged) ISel pass is actually
//! correct on random functions and inputs — so KEQ's "validated" verdicts
//! are corroborated by an independent oracle.

use std::collections::BTreeMap;

use keq_repro::core::KeqOptions;
use keq_repro::isel::{select, IselOptions};
use keq_repro::llvm::{default_ext_call, run_function, CValue, Layout, Trap};
use keq_repro::smt::{Budget, MemValue};
use keq_repro::vx86::{run_vx_function, VxTrap};
use keq_repro::workload::{generate_corpus, GenConfig};

fn corpus_opts() -> KeqOptions {
    KeqOptions {
        time_limit: Some(std::time::Duration::from_secs(20)),
        solver_budget: Budget {
            max_conflicts: 500_000,
            max_terms: 2_000_000,
            max_time: Some(std::time::Duration::from_secs(5)),
        },
        ..KeqOptions::default()
    }
}

#[test]
fn corpus_validation_rate_matches_paper_shape() {
    let (_m, summary) = keq_bench::run_corpus(7, 25, corpus_opts());
    assert!(
        summary.success_rate() >= 0.9,
        "expected the paper's >90% success shape, got {:.0}% ({:?})",
        summary.success_rate() * 100.0,
        summary
            .rows
            .iter()
            .filter(|r| r.result != keq_bench::CorpusResult::Succeeded)
            .map(|r| (&r.name, &r.result))
            .collect::<Vec<_>>()
    );
}

#[test]
fn differential_execution_agrees_across_isel() {
    let module = generate_corpus(GenConfig { seed: 99, ..GenConfig::default() }, 25);
    let ext_vx = |callee: &str, args: &[u128]| {
        let cvals: Vec<CValue> = args.iter().map(|&a| CValue::new(32, a)).collect();
        default_ext_call(callee, &cvals)
    };
    let mut compared = 0usize;
    for f in &module.functions {
        let layout = Layout::of(&module, f);
        let Ok(out) = select(&module, f, &layout, IselOptions::default()) else {
            continue;
        };
        let globals: BTreeMap<String, u64> =
            layout.globals.iter().map(|(k, v)| (k.clone(), *v)).collect();
        for trial in 0..6u128 {
            let args: Vec<CValue> = f
                .params
                .iter()
                .enumerate()
                .map(|(i, _)| CValue::new(32, trial * 17 + i as u128 * 3 + 1))
                .collect();
            let mut lmem = MemValue::default();
            let lres = run_function(&module, f, &layout, &args, &mut lmem, 200_000, &default_ext_call);
            let raw_args: Vec<u128> = args.iter().map(|a| a.bits).collect();
            let mut rmem = MemValue::default();
            let rres = run_vx_function(
                &out.func,
                &layout.mem,
                &globals,
                &raw_args,
                &mut rmem,
                400_000,
                &ext_vx,
            );
            match (lres, rres) {
                (Ok(lv), Ok(rv)) => {
                    compared += 1;
                    assert_eq!(
                        lv.map(|v| v.bits),
                        rv,
                        "{}({raw_args:?}): return values differ\n{f}\n{}",
                        f.name,
                        out.func
                    );
                    assert_eq!(
                        lmem, rmem,
                        "{}({raw_args:?}): final memories differ",
                        f.name
                    );
                }
                // UB on the source side frees the target; kinds still align
                // in this fragment.
                (Err(Trap::DivByZero), Err(VxTrap::DivByZero)) => compared += 1,
                (Err(Trap::OutOfBounds(_)), Err(VxTrap::OutOfBounds(_))) => compared += 1,
                // Both ran out of fuel (deeply nested generated loops).
                (Err(Trap::Fuel), Err(VxTrap::Fuel)) => {}
                (l, r) => panic!("{}({raw_args:?}): diverged: {l:?} vs {r:?}", f.name),
            }
        }
    }
    assert!(compared > 50, "expected plenty of comparisons, got {compared}");
}

#[test]
fn unsupported_features_are_reported_not_miscompiled() {
    // A function with a wide type outside any narrowing pattern must be
    // rejected by ISel (the paper's unsupported bucket), never silently
    // compiled.
    let src = r#"
@w = external global i128

define void @f() {
  %v = load i128, i128* @w
  store i128 %v, i128* @w
  ret void
}
"#;
    let m = keq_repro::llvm::parse_module(src).expect("parses");
    let f = &m.functions[0];
    let layout = Layout::of(&m, f);
    let err = select(&m, f, &layout, IselOptions::default()).expect_err("unsupported");
    assert!(
        err.message.contains("wide load") || err.message.contains("not supported"),
        "{err}"
    );
}
