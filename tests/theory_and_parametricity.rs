//! Tests of the cut-bisimulation theory itself (paper §2/§7, Fig. 4) and of
//! the language-parametricity claim (the same checker validating the
//! IMP → stack-machine pair), plus the §4.6 refinement fallback.

use keq_repro::core::{
    algorithm1, algorithm1_simulation, fig4_example, is_cut_bisimulation,
    is_strong_bisimulation, Keq, KeqOptions, Verdict,
};
use keq_repro::imp::{compile, imp_sync_points, Expr, ImpProgram, ImpSemantics, StackSemantics, Stmt};
use keq_repro::isel::{validate_function, IselOptions, VcOptions};
use keq_repro::smt::TermBank;

#[test]
fn fig4_cut_bisimulation_vs_strong_bisimulation() {
    // §2: the PRE example is cut-bisimilar via only the black dotted lines,
    // but those lines are NOT a strong bisimulation on the raw systems.
    let (p, q, rel) = fig4_example();
    assert!(p.is_valid_cut());
    assert!(q.is_valid_cut());
    assert!(is_cut_bisimulation(&p, &q, &rel));
    assert!(algorithm1(&p, &q, &rel));
    assert!(!is_strong_bisimulation(&p, &q, &rel));
}

#[test]
fn simulation_mode_accepts_refinement_only_relations() {
    // A target with fewer behaviors refines the source but is not
    // equivalent (the Algorithm 1 footnote about line 11).
    let full = keq_repro::core::CutTs::new(3, &[(0, 1), (0, 2)], 0, [0, 1, 2]);
    let restricted = keq_repro::core::CutTs::new(2, &[(0, 1)], 0, [0, 1]);
    let rel: std::collections::BTreeSet<(usize, usize)> = [(0, 0), (1, 1)].into_iter().collect();
    assert!(algorithm1_simulation(&restricted, &full, &rel));
    assert!(!algorithm1(&restricted, &full, &rel));
}

fn gcd_program() -> ImpProgram {
    // Subtraction-based GCD: a second, loopier IMP workload.
    ImpProgram {
        inputs: vec!["a".into(), "b".into()],
        body: vec![Stmt::While(
            Expr::mul(
                Expr::lt(Expr::Const(0), Expr::var("a")),
                Expr::lt(Expr::Const(0), Expr::var("b")),
            ),
            vec![Stmt::If(
                Expr::lt(Expr::var("a"), Expr::var("b")),
                vec![Stmt::Assign("b".into(), Expr::sub(Expr::var("b"), Expr::var("a")))],
                vec![Stmt::Assign("a".into(), Expr::sub(Expr::var("a"), Expr::var("b")))],
            )],
        )],
        result: Expr::add(Expr::var("a"), Expr::var("b")),
    }
}

#[test]
fn same_checker_validates_the_imp_stack_pair() {
    // Language-parametricity: `Keq` is instantiated here with two languages
    // that share nothing with LLVM or x86.
    let p = gcd_program();
    let flat = keq_repro::imp::compile::flatten(&p);
    let sf = compile(&p);
    let sync = imp_sync_points(&flat, &sf);
    let left = ImpSemantics::new(flat);
    let right = StackSemantics::new(sf);
    let keq = Keq::new(&left, &right);
    let mut bank = TermBank::new();
    let report = keq.check(&mut bank, &sync);
    assert_eq!(report.verdict, Verdict::Equivalent, "{}", report.verdict);
}

#[test]
fn sabotaged_stack_code_is_rejected_by_the_same_checker() {
    let p = gcd_program();
    let flat = keq_repro::imp::compile::flatten(&p);
    let mut sf = compile(&p);
    // Swap the jump polarity of the first conditional: control flow lies.
    let pos = sf
        .ops
        .iter()
        .position(|o| matches!(o, keq_repro::imp::StackOp::Sub))
        .expect("has sub");
    sf.ops[pos] = keq_repro::imp::StackOp::Add;
    let sync = imp_sync_points(&flat, &sf);
    let left = ImpSemantics::new(flat);
    let right = StackSemantics::new(sf);
    let keq = Keq::new(&left, &right);
    let mut bank = TermBank::new();
    let report = keq.check(&mut bank, &sync);
    assert!(!report.verdict.is_validated(), "{}", report.verdict);
}

#[test]
fn source_ub_downgrades_equivalence_to_refinement() {
    // §4.6: an `nsw` add has signed-overflow UB in LLVM that plain x86
    // `add` does not exhibit; the left error state absorbs and KEQ
    // "automatically reverts to checking refinement".
    let src = "define i32 @f(i32 %x) {\n %r = add nsw i32 %x, 1\n ret i32 %r\n}";
    let m = keq_repro::llvm::parse_module(src).expect("parses");
    let f = &m.functions[0];
    let out = validate_function(
        &m,
        f,
        IselOptions::default(),
        VcOptions::default(),
        KeqOptions::default(),
    )
    .expect("supported");
    assert_eq!(out.report.verdict, Verdict::Refines, "{}", out.report.verdict);
    assert!(out.report.stats.absorbed_ub);
}

#[test]
fn division_error_states_match_across_languages() {
    // Both sides trap on a zero divisor (`udiv` UB vs the x86 `#DE`
    // exception); the matched error states keep the verdict at full
    // equivalence.
    let src = "define i32 @f(i32 %x, i32 %y) {\n %r = udiv i32 %x, %y\n ret i32 %r\n}";
    let m = keq_repro::llvm::parse_module(src).expect("parses");
    let f = &m.functions[0];
    let out = validate_function(
        &m,
        f,
        IselOptions::default(),
        VcOptions::default(),
        KeqOptions::default(),
    )
    .expect("supported");
    assert_eq!(out.report.verdict, Verdict::Equivalent, "{}", out.report.verdict);
}

#[test]
fn calls_synchronize_at_call_sites() {
    // §4.5: call sites produce before/after points; live values and the
    // return value are related through the calling convention.
    let src = r#"
define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  %r = call i32 @ext(i32 %a, i32 7)
  %b = add i32 %r, %y
  ret i32 %b
}
"#;
    let m = keq_repro::llvm::parse_module(src).expect("parses");
    let f = &m.functions[0];
    let out = validate_function(
        &m,
        f,
        IselOptions::default(),
        VcOptions::default(),
        KeqOptions::default(),
    )
    .expect("supported");
    assert_eq!(out.report.verdict, Verdict::Equivalent, "{}", out.report.verdict);
    let names: Vec<&str> = out.sync.iter().map(|p| p.name.as_str()).collect();
    assert!(names.contains(&"call:ext#0"), "{names:?}");
    assert!(names.contains(&"ret:ext#0"), "{names:?}");
}
